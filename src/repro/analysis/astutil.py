"""Shared AST utilities for the checkers.

Static resolution here is deliberately humble: it resolves what this
codebase's idioms make resolvable (module aliases, ``from`` imports, local
``name = ClassName(...)`` bindings, parameter annotations) and stays silent
otherwise.  A linter that guesses produces noise; one that resolves the
house idiom precisely produces signal.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origin they were imported as.

    ``import time as t`` -> ``{"t": "time"}``;
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``.
    Function-local imports count too (the codebase imports lazily a lot).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.AST) -> str:
    """The dotted path of a Name/Attribute chain (``a.b.c``), or ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def resolve_call_path(func: ast.AST, aliases: dict[str, str]) -> str:
    """The fully-qualified dotted path of a call target, resolving the
    leading name through the module's import aliases.

    ``t.time()`` with ``import time as t`` resolves to ``time.time``;
    ``sleep()`` with ``from time import sleep`` resolves to ``time.sleep``.
    Unresolvable roots (locals, attributes of objects) return the raw
    dotted path, which callers match conservatively.
    """
    path = dotted_name(func)
    if not path:
        return ""
    root, _, rest = path.partition(".")
    origin = aliases.get(root)
    if origin is None:
        return path
    return f"{origin}.{rest}" if rest else origin


@dataclass
class Signature:
    """A method's operation surface: ordered parameter names (self
    excluded), per-parameter annotation source (or ``""``), and how many
    parameters carry defaults."""

    params: list[str]
    annotations: list[str]
    defaults: int

    @property
    def arity(self) -> int:
        return len(self.params)


def signature_of(func: ast.FunctionDef) -> Signature:
    args = [a for a in func.args.args if a.arg != "self"]
    params = [a.arg for a in args]
    annotations = [
        ast.unparse(a.annotation) if a.annotation is not None else "" for a in args
    ]
    return Signature(
        params=params,
        annotations=annotations,
        defaults=len(func.args.defaults),
    )


def public_methods(node: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    """Directly defined public (non-underscore) methods of a class,
    properties excluded (they are attributes, not operations)."""
    out: dict[str, ast.FunctionDef] = {}
    for item in node.body:
        if not isinstance(item, ast.FunctionDef):
            continue
        if item.name.startswith("_"):
            continue
        if any(
            (isinstance(d, ast.Name) and d.id == "property")
            or (isinstance(d, ast.Attribute) and d.attr in ("setter", "getter"))
            for d in item.decorator_list
        ):
            continue
        out[item.name] = item
    return out


def all_methods(node: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in node.body
        if isinstance(item, ast.FunctionDef)
    }


def base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


@dataclass
class Exposure:
    """One SOAP exposure: a class (resolved by name) and which of its
    methods are dispatchable.  ``methods`` empty means *all public*
    (``expose_object``)."""

    class_name: str
    methods: set[str] = field(default_factory=set)
    expose_all: bool = False
    line: int = 0


def _local_bindings(func: ast.FunctionDef) -> dict[str, str]:
    """``name = ClassName(...)`` bindings plus annotated parameters, giving
    a local variable -> class-name map for exposure resolution."""
    bindings: dict[str, str] = {}
    for arg in list(func.args.args) + list(func.args.kwonlyargs):
        if arg.annotation is not None:
            ann = arg.annotation
            if isinstance(ann, (ast.Name, ast.Attribute)):
                name = dotted_name(ann).split(".")[-1]
                if name:
                    bindings[arg.arg] = name
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            target_cls = dotted_name(node.value.func).split(".")[-1]
            if not target_cls or not target_cls[0].isupper():
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bindings[target.id] = target_cls
    return bindings


def find_exposures(tree: ast.Module) -> list[Exposure]:
    """Every SOAP exposure in the module.

    Recognizes the house idioms::

        soap.expose(impl.method)            # impl = ClassName(...) or impl: ClassName
        soap.expose(impl.method, "name")
        soap.expose_object(impl)            # all public methods
        soap.expose_object(ClassName(...))  # all public methods

    Returns one :class:`Exposure` per receiver class, methods merged.
    """
    by_class: dict[str, Exposure] = {}
    for func in [n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)]:
        bindings = _local_bindings(func)
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            kind = node.func.attr
            if kind not in ("expose", "expose_object") or not node.args:
                continue
            target = node.args[0]
            if kind == "expose":
                if not isinstance(target, ast.Attribute):
                    continue  # module-level function exposure: no class
                receiver = target.value
                if not isinstance(receiver, ast.Name):
                    continue
                cls = bindings.get(receiver.id)
                if cls is None:
                    continue
                exp = by_class.setdefault(
                    cls, Exposure(class_name=cls, line=node.lineno)
                )
                exp.methods.add(target.attr)
            else:
                cls = None
                if isinstance(target, ast.Name):
                    cls = bindings.get(target.id)
                elif isinstance(target, ast.Call):
                    name = dotted_name(target.func).split(".")[-1]
                    if name and name[0].isupper():
                        cls = name
                if cls is None:
                    continue
                exp = by_class.setdefault(
                    cls, Exposure(class_name=cls, line=node.lineno)
                )
                exp.expose_all = True
    return [by_class[name] for name in sorted(by_class)]


def iter_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node
