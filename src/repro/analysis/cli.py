"""The ``python -m repro.analysis`` command line."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, apply_baseline, write_baseline
from repro.analysis.core import all_checkers
from repro.analysis.reporting import (
    exit_code_for,
    list_checkers_text,
    render_json,
    render_text,
    split_without_baseline,
)
from repro.analysis.runner import analyze_paths_cached

DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Contract and determinism linter for the portal reproduction: "
            "checks the invariants that keep independently implemented "
            "services interoperable."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json emits the repro.analysis.report artifact)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the report to FILE (same format as --format)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "capture current findings as the baseline and exit 0 "
            "(ratchet: fixed findings drop out, reasons are preserved)"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated finding codes to keep (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated finding codes to drop",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="print the checker catalog and exit",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the incremental cache (neither read nor written)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="incremental cache directory (default: .analysis-cache)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "fast CI pre-step: re-analyze only files whose content or "
            "import closure changed since the cached run, merging cached "
            "findings for the rest (never writes the cache)"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print cache hit/miss statistics to stderr",
    )
    return parser


def _codes(raw: str | None) -> set[str] | None:
    if not raw:
        return None
    return {code.strip() for code in raw.split(",") if code.strip()}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_checkers:
        print(list_checkers_text(all_checkers()))
        return 0

    paths = [Path(p) for p in args.paths]
    if not paths:
        default = Path("src/repro")
        if not default.is_dir():
            print(
                "error: no paths given and ./src/repro does not exist",
                file=sys.stderr,
            )
            return 2
        paths = [default]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: path(s) do not exist: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    result, cache_stats = analyze_paths_cached(
        paths,
        select=_codes(args.select),
        ignore=_codes(args.ignore),
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        use_cache=not args.no_cache,
        changed_only=args.changed_only,
    )
    if args.stats:
        if cache_stats.enabled:
            for line in cache_stats.lines():
                print(line, file=sys.stderr)
        else:
            print("cache: disabled (--no-cache)", file=sys.stderr)

    baseline: Baseline | None = None
    if not args.no_baseline:
        baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
        if baseline_path.exists():
            baseline = Baseline.load(baseline_path)
        elif args.baseline and not args.write_baseline:
            print(
                f"error: baseline file {baseline_path} does not exist "
                "(use --write-baseline to create it)",
                file=sys.stderr,
            )
            return 2

    if args.write_baseline:
        target = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
        reasons = {
            e.get("fingerprint", ""): e["reason"]
            for e in (baseline.entries if baseline else [])
            if e.get("reason")
        }
        written = write_baseline(result.findings, target, reasons=reasons)
        print(
            f"baseline written: {len(written)} entr(ies) -> {target}",
            file=sys.stderr,
        )
        return 0

    split = (
        apply_baseline(result.findings, baseline)
        if baseline is not None
        else split_without_baseline(result.findings)
    )
    code = exit_code_for(split)

    if args.format == "json":
        rendered = render_json(
            result,
            split,
            baseline,
            paths=[str(p) for p in paths],
            exit_code=code,
        )
    else:
        rendered = render_text(result, split, baseline) + "\n"

    sys.stdout.write(rendered)
    if args.output:
        out = Path(args.output)
        if args.format == "json":
            out.write_text(rendered, encoding="utf-8")
        else:
            out.write_text(
                render_json(
                    result,
                    split,
                    baseline,
                    paths=[str(p) for p in paths],
                    exit_code=code,
                ),
                encoding="utf-8",
            )
    return code
