"""The committed-baseline mechanism: land clean, then ratchet down.

A baseline records accepted findings by line-independent fingerprint so the
analyzer can be introduced to (or extended over) an imperfect tree without
a flag day: baselined findings do not fail the build, *new* findings do,
and re-writing the baseline can only shrink it (fixed findings leave the
file; nothing is ever silently added on a normal run).

Format (JSON, committed)::

    {"version": 1, "tool": "repro.analysis",
     "entries": [{"fingerprint": ..., "code": ..., "path": ...,
                  "message": ..., "reason": "why this one is deliberate"}]}

Entries may carry a ``reason`` — the ISSUE workflow baselines only
deliberate exceptions, with the justification in the file.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """The accepted-findings multiset (a fingerprint may repeat when one
    file legitimately carries identical findings on several lines)."""

    path: Path | None = None
    entries: list[dict] = field(default_factory=list)

    @staticmethod
    def load(path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        return Baseline(path=path, entries=list(data.get("entries", [])))

    def save(self, path: Path | None = None) -> Path:
        target = path or self.path
        if target is None:
            raise ValueError("baseline has no path to save to")
        payload = {
            "version": BASELINE_VERSION,
            "tool": "repro.analysis",
            "entries": sorted(
                self.entries,
                key=lambda e: (e.get("path", ""), e.get("code", ""), e.get("message", "")),
            ),
        }
        target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        self.path = target
        return target

    def fingerprints(self) -> Counter:
        return Counter(e.get("fingerprint", "") for e in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class BaselineResult:
    """The three-way split a baseline induces on a finding list."""

    new: list[Finding]
    baselined: list[Finding]
    #: entries whose finding no longer occurs — fixed code; rewrite the
    #: baseline to drop them (the ratchet)
    stale: list[dict]


def apply_baseline(findings: list[Finding], baseline: Baseline) -> BaselineResult:
    budget = baseline.fingerprints()
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        fp = finding.fingerprint()
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale: list[dict] = []
    remaining = dict(budget)
    for entry in baseline.entries:
        fp = entry.get("fingerprint", "")
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            stale.append(entry)
    return BaselineResult(new=new, baselined=baselined, stale=stale)


def write_baseline(findings: list[Finding], path: Path, *, reasons: dict[str, str] | None = None) -> Baseline:
    """Capture *findings* as the new baseline (the add/ratchet operation:
    the file always reflects exactly the current findings, so fixed ones
    drop out and nothing un-observed survives)."""
    reasons = reasons or {}
    entries = [
        {
            "fingerprint": f.fingerprint(),
            "code": f.code,
            "path": f.path,
            "message": f.message,
            **(
                {"reason": reasons[f.fingerprint()]}
                if f.fingerprint() in reasons
                else {}
            ),
        }
        for f in sorted(findings, key=Finding.sort_key)
    ]
    baseline = Baseline(path=path, entries=entries)
    baseline.save()
    return baseline
