"""Static analysis for the portal reproduction: the contract linter.

The paper's central claim is interoperability through shared contracts: two
independently implemented services stay compatible only because their
interfaces agree (§3, §6).  This package enforces the invariants that keep
the reproduction correct as it grows, as machine-checked rules rather than
convention:

- **determinism** (REP1xx) — everything runs on the shared
  :class:`~repro.transport.clock.SimClock` and seeded ``random.Random``
  instances; wall-clock reads, sleeps, and unseeded randomness are banned,
  as is insertion-order iteration over discovery registries.
- **fault taxonomy** (REP2xx) — every error a SOAP-dispatched method can
  raise must belong to the common ``Portal.*`` vocabulary
  (:mod:`repro.faults`), with an explicit fault code and retryable
  classification.
- **contract drift** (REP3xx) — implementations of the same port type must
  expose the same operation surface, and a statically declared interface
  WSDL must match the classes that implement it.
- **header discipline** (REP4xx) — every SOAP header that crosses the wire
  must be registered in :mod:`repro.headers` with both an encoder
  (sender side) and a decoder (consumer side) beside the declaration.
- **resource hygiene** (REP5xx) — spans, admission tickets, and journals
  are handles; acquiring one without a crash-safe release path is flagged.

Run it as ``python -m repro.analysis [--baseline ...] [--format text|json]
[paths]``.  Findings can be suppressed inline (``# repro: ignore[CODE]``)
or captured in a committed baseline file that may only shrink (ratchet).
"""

from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    Severity,
    SourceModule,
    all_checkers,
    get_checker,
    register_checker,
)
from repro.analysis.runner import AnalysisResult, analyze_paths, analyze_sources

__all__ = [
    "AnalysisResult",
    "Checker",
    "Finding",
    "Project",
    "Severity",
    "SourceModule",
    "all_checkers",
    "analyze_paths",
    "analyze_sources",
    "get_checker",
    "register_checker",
]
