"""Entry point: ``python -m repro.analysis [options] [paths]``."""

import sys

from repro.analysis.cli import main

sys.exit(main())
