"""The module/import graph: which project module imports which.

Two consumers: name resolution (the symbol table needs to know whether
``repro.a.b`` in an import origin is a module or a symbol inside
``repro.a``), and incremental caching (a file's findings can only change
when its own content, something in its transitive import closure, or a
project-wide interface fact changes — see :mod:`repro.analysis.cache`).

Relative imports are resolved against the analyzed module's dotted name
(``from .helpers import x`` inside ``fixtures.demo.svc`` targets
``fixtures.demo.helpers``), so fixture packages analyzed from an
arbitrary root resolve the same way the real tree does.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


def module_import_origins(tree: ast.Module, module_name: str) -> dict[str, str]:
    """Local name -> dotted origin, relative imports resolved.

    Like :func:`repro.analysis.astutil.import_aliases` but aware of the
    importing module's own dotted name, so ``from . import x`` and
    ``from ..pkg import y`` resolve to absolute project paths.
    """
    package = module_name.rsplit(".", 1)[0] if "." in module_name else ""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                aliases[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level > 0:
                hops = node.level - 1
                anchor = package
                for _ in range(hops):
                    anchor = anchor.rsplit(".", 1)[0] if "." in anchor else ""
                base = f"{anchor}.{node.module}" if node.module and anchor else (
                    node.module or anchor
                )
                if not base:
                    continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{base}.{alias.name}"
    return aliases


@dataclass
class ModuleGraph:
    """Project-internal import edges, with closure queries both ways."""

    #: dotted module name -> repo-relative path of the defining file
    modules: dict[str, str] = field(default_factory=dict)
    #: module -> sorted project modules it imports (directly)
    imports: dict[str, list[str]] = field(default_factory=dict)
    #: module -> sorted project modules importing it (directly)
    dependents: dict[str, list[str]] = field(default_factory=dict)

    @staticmethod
    def build(project) -> "ModuleGraph":
        graph = ModuleGraph()
        for module in project.parsed():
            if module.module_name:
                graph.modules.setdefault(module.module_name, module.rel)
        edges: dict[str, set[str]] = {name: set() for name in graph.modules}
        for module in project.parsed():
            name = module.module_name
            if name not in edges:
                continue
            for origin in module_import_origins(module.tree, name).values():
                target = graph.resolve_module(origin)
                if target is not None and target != name:
                    edges[name].add(target)
            # plain ``import a.b.c`` binds only ``a`` locally, but the
            # dependency is on ``a.b.c`` — record the full edge too
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Import):
                    continue
                for alias in node.names:
                    target = graph.resolve_module(alias.name)
                    if target is not None and target != name:
                        edges[name].add(target)
        graph.imports = {name: sorted(edges[name]) for name in sorted(edges)}
        reverse: dict[str, set[str]] = {name: set() for name in graph.modules}
        for name, targets in graph.imports.items():
            for target in targets:
                reverse[target].add(name)
        graph.dependents = {name: sorted(reverse[name]) for name in sorted(reverse)}
        return graph

    def resolve_module(self, origin: str) -> str | None:
        """The longest project module that prefixes *origin* (an import
        origin may point at a symbol inside a module: ``repro.a.b.Name``
        resolves to module ``repro.a.b``)."""
        candidate = origin
        while candidate:
            if candidate in self.modules:
                return candidate
            if "." not in candidate:
                return None
            candidate = candidate.rsplit(".", 1)[0]
        return None

    def _closure(self, roots: list[str], edges: dict[str, list[str]]) -> list[str]:
        seen: set[str] = set()
        queue = sorted(set(roots) & set(self.modules))
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            for nxt in edges.get(current, []):
                if nxt not in seen:
                    queue.append(nxt)
        return sorted(seen)

    def import_closure(self, roots: list[str]) -> list[str]:
        """*roots* plus everything they transitively import (sorted)."""
        return self._closure(roots, self.imports)

    def dependent_closure(self, roots: list[str]) -> list[str]:
        """*roots* plus everything transitively importing them (sorted)."""
        return self._closure(roots, self.dependents)
