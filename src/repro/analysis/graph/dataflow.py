"""A small deterministic worklist framework over the call graph.

Two shapes cover what the propagation checkers need:

- :func:`reachable` — forward reachability from a root set, bounded
  depth, with per-edge filtering (skip guarded call sites, skip
  constructor edges, stay inside one module).  BFS over sorted
  adjacency, so the visit order — and therefore every downstream report
  — is a pure function of the graph.

- :class:`Dataflow` — fixpoint summaries: each function node carries a
  summary value, a transfer function recomputes a node's summary from
  its AST and its callees' summaries, and the worklist re-queues callers
  whenever a callee's summary changes.  Summaries must grow
  monotonically (set union / flag saturation) so the fixpoint
  terminates; the iteration cap is a backstop, not a tuning knob.
"""

from __future__ import annotations

from typing import Callable, Iterable

#: default bound on call-chain depth for reachability passes — deep
#: enough for every real dispatch chain in this tree (the longest is 7
#: hops), shallow enough to stay predictable on adversarial input
MAX_DEPTH = 16

#: backstop on fixpoint sweeps (each sweep touches every dirty node once)
MAX_PASSES = 50


def reachable(
    graph,
    roots: Iterable[str],
    *,
    max_depth: int = MAX_DEPTH,
    follow_guarded: bool = False,
    follow_ctor: bool = False,
    cross_module: bool = True,
    edge_filter: Callable | None = None,
) -> dict[str, int]:
    """Node id -> minimum call depth, for everything reachable from
    *roots* (roots at depth 0), deterministic BFS order."""
    depths: dict[str, int] = {}
    frontier = sorted(set(roots) & set(graph.nodes))
    for node in frontier:
        depths[node] = 0
    depth = 0
    while frontier and depth < max_depth:
        depth += 1
        nxt: list[str] = []
        for node in frontier:
            for edge in graph.edges_from.get(node, []):
                if edge.guarded and not follow_guarded:
                    continue
                if edge.kind == "ctor" and not follow_ctor:
                    continue
                if edge.cross_module and not cross_module:
                    continue
                if edge_filter is not None and not edge_filter(edge):
                    continue
                if edge.callee not in depths:
                    depths[edge.callee] = depth
                    nxt.append(edge.callee)
        frontier = sorted(set(nxt))
    return depths


class Dataflow:
    """Fixpoint summary computation over call-graph nodes.

    ``transfer(node_id, summaries) -> summary`` must be monotone in its
    callees' summaries.  Runs sweeps in sorted node order until no
    summary changes (or the pass cap trips), then exposes ``summaries``.
    """

    def __init__(
        self,
        graph,
        transfer: Callable[[str, dict], object],
        *,
        initial: Callable[[str], object] | None = None,
        max_passes: int = MAX_PASSES,
    ):
        self.graph = graph
        self.transfer = transfer
        self.max_passes = max_passes
        self.summaries: dict[str, object] = {}
        if initial is not None:
            for node_id in sorted(graph.nodes):
                self.summaries[node_id] = initial(node_id)

    def run(self) -> dict[str, object]:
        callers: dict[str, list[str]] = {n: [] for n in self.graph.nodes}
        for caller in sorted(self.graph.edges_from):
            for edge in self.graph.edges_from[caller]:
                callers.setdefault(edge.callee, []).append(caller)
        dirty = sorted(self.graph.nodes)
        passes = 0
        while dirty and passes < self.max_passes:
            passes += 1
            requeue: set[str] = set()
            for node_id in dirty:
                new = self.transfer(node_id, self.summaries)
                if new != self.summaries.get(node_id):
                    self.summaries[node_id] = new
                    requeue.update(callers.get(node_id, []))
            dirty = sorted(requeue)
        return self.summaries
