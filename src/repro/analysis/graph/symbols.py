"""The project symbol table: names resolved to their defining module.

Resolution chases the idioms this codebase actually uses — ``from``
imports, module aliases, re-exports in ``__init__`` modules, and
module-level ``Alias = Original`` assignment aliases — with a visited
set so import cycles terminate.  Anything dynamic resolves to ``None``
and callers stay silent, per the linter's no-guessing policy.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.graph.modgraph import ModuleGraph, module_import_origins


@dataclass(frozen=True)
class Symbol:
    """One resolved project symbol."""

    kind: str  # "class" | "func" | "module"
    module: str  # dotted module name of the *defining* module
    name: str  # symbol name within the module ("" for kind=module)

    @property
    def qualified(self) -> str:
        return f"{self.module}:{self.name}" if self.name else self.module


@dataclass
class SymbolTable:
    graph: ModuleGraph
    #: (module, name) -> ast.ClassDef for every module-level class
    classes: dict[tuple[str, str], ast.ClassDef] = field(default_factory=dict)
    #: (module, name) -> ast.FunctionDef for every module-level function
    functions: dict[tuple[str, str], ast.FunctionDef] = field(default_factory=dict)
    #: module -> {local name -> dotted import origin}
    imports: dict[str, dict[str, str]] = field(default_factory=dict)
    #: (module, alias) -> aliased local name (``Alias = Original``)
    assigns: dict[tuple[str, str], str] = field(default_factory=dict)

    @staticmethod
    def build(project, graph: ModuleGraph) -> "SymbolTable":
        table = SymbolTable(graph=graph)
        for module in project.parsed():
            name = module.module_name
            if not name or graph.modules.get(name) != module.rel:
                continue  # duplicate module name: first definition won
            table.imports[name] = module_import_origins(module.tree, name)
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    table.classes.setdefault((name, node.name), node)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    table.functions.setdefault((name, node.name), node)
                elif isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Name
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            table.assigns.setdefault(
                                (name, target.id), node.value.id
                            )
        return table

    # -- resolution ------------------------------------------------------------

    def resolve(self, module: str, dotted: str) -> Symbol | None:
        """Resolve *dotted* as seen from *module* to its defining symbol.

        Handles ``Name``, ``alias.Name`` (module aliases), re-exports
        (``from impl import Name`` in a package ``__init__``), and
        assignment aliases, to any chase depth, cycle-safe.
        """
        return self._resolve(module, dotted, frozenset())

    def _resolve(
        self, module: str, dotted: str, seen: frozenset[tuple[str, str]]
    ) -> Symbol | None:
        if not dotted or (module, dotted) in seen:
            return None
        seen = seen | {(module, dotted)}
        head, _, rest = dotted.partition(".")

        if not rest:
            if (module, head) in self.classes:
                return Symbol("class", module, head)
            if (module, head) in self.functions:
                return Symbol("func", module, head)
            alias = self.assigns.get((module, head))
            if alias is not None:
                return self._resolve(module, alias, seen)
        origin = self.imports.get(module, {}).get(head)
        if origin is None:
            if not rest and head in self.graph.modules:
                return Symbol("module", head, "")
            return None
        return self._resolve_origin(origin, rest, seen)

    def _resolve_origin(
        self, origin: str, rest: str, seen: frozenset[tuple[str, str]]
    ) -> Symbol | None:
        """Resolve an import origin (``repro.a.b`` or ``repro.a.b.Name``)
        plus a trailing attribute path *rest*."""
        target_module = self.graph.resolve_module(origin)
        if target_module is None:
            return None
        leftover = origin[len(target_module):].lstrip(".")
        path = ".".join(p for p in (leftover, rest) if p)
        if not path:
            return Symbol("module", target_module, "")
        key = (target_module, path.partition(".")[0])
        if (target_module, path) not in seen and (
            key in self.classes
            or key in self.functions
            or key in self.assigns
            or path.partition(".")[0] in self.imports.get(target_module, {})
        ):
            return self._resolve(target_module, path, seen)
        # ``module.sub.Name`` where ``sub`` is a submodule, not a symbol.
        # The fallback must *extend* target_module: longest-prefix
        # resolution would otherwise hand back target_module itself (or a
        # sibling) for an unresolvable path, which reads as a hit.
        deeper = self.graph.resolve_module(f"{target_module}.{path}")
        if deeper is not None and deeper.startswith(f"{target_module}."):
            return Symbol("module", deeper, "")
        head2, _, rest2 = path.partition(".")
        sub = self.graph.resolve_module(f"{target_module}.{head2}")
        if sub is not None and sub.startswith(f"{target_module}.") and rest2:
            return self._resolve(sub, rest2, seen)
        return None

    # -- class hierarchy -------------------------------------------------------

    def class_bases(self, module: str, name: str) -> list[Symbol]:
        """The resolved project base classes of (*module*, *name*)."""
        node = self.classes.get((module, name))
        if node is None:
            return []
        out: list[Symbol] = []
        for base in node.bases:
            dotted = _dotted(base)
            if not dotted:
                continue
            symbol = self._resolve(module, dotted, frozenset())
            if symbol is not None and symbol.kind == "class":
                out.append(symbol)
        return out

    def mro_method(
        self, module: str, cls: str, method: str
    ) -> tuple[str, str, ast.FunctionDef] | None:
        """Resolve *method* on class (*module*, *cls*) walking resolved
        bases breadth-first; returns (module, class, FunctionDef)."""
        queue: list[tuple[str, str]] = [(module, cls)]
        visited: set[tuple[str, str]] = set()
        while queue:
            current = queue.pop(0)
            if current in visited:
                continue
            visited.add(current)
            node = self.classes.get(current)
            if node is None:
                continue
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == method
                ):
                    return current[0], current[1], item
            queue.extend(
                (base.module, base.name)
                for base in self.class_bases(current[0], current[1])
            )
        return None

    def subclasses_of(self, roots: set[tuple[str, str]]) -> set[tuple[str, str]]:
        """Transitive closure of (module, class) keys inheriting from any
        of *roots* through *resolved* bases, roots included."""
        known = set(roots)
        changed = True
        while changed:
            changed = False
            for (module, name) in self.classes:
                if (module, name) in known:
                    continue
                for base in self.class_bases(module, name):
                    if (base.module, base.name) in known:
                        known.add((module, name))
                        changed = True
                        break
        return known


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
