"""The project call graph: who can call whom, across modules.

Nodes are module-level functions and directly-defined methods.  Edges are
resolved from the idioms the codebase uses to wire services together:

- ``self.helper()``                       (through resolved base classes)
- ``helper()`` / ``alias.helper()``       (local, imported, or re-exported)
- ``self._client.call()``                 (instance attributes bound to a
                                          class in any method of the class,
                                          ``self._x = Cls(...)``, including
                                          ``self._x[k] = Cls(...)`` pools)
- ``client.call()``                       (locals bound by construction or
                                          by parameter annotation)

Constructor calls (``ClassName(...)``) become ``ctor`` edges to
``__init__`` so dataflow passes can follow object creation, but
reachability passes exclude them by default: ``__init__``-time validation
raises are deployment-time, not request-time.

Every edge records whether the *call site* is guarded by an enclosing
``try`` with an ``except`` handler — the wrap-at-the-boundary discipline
the interprocedural fault rule (REP901) honours: a guarded call does not
propagate dispatch reachability, because the caller classifies whatever
comes out of it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.astutil import find_exposures
from repro.analysis.graph.symbols import Symbol, SymbolTable, _dotted


@dataclass(frozen=True)
class FunctionNode:
    """One call-graph node: a function or method, identified by
    ``module:Class.method`` / ``module:function``."""

    module: str
    cls: str  # "" for module-level functions
    name: str
    rel: str  # repo-relative path of the defining file

    @property
    def id(self) -> str:
        qual = f"{self.cls}.{self.name}" if self.cls else self.name
        return f"{self.module}:{qual}"


@dataclass(frozen=True)
class CallEdge:
    caller: str
    callee: str
    kind: str  # "self" | "name" | "module" | "attr" | "ctor"
    cross_module: bool
    guarded: bool
    line: int


@dataclass
class CallGraph:
    symbols: SymbolTable
    nodes: dict[str, FunctionNode] = field(default_factory=dict)
    #: node id -> its FunctionDef (kept off the frozen node for hashing)
    funcs: dict[str, ast.FunctionDef] = field(default_factory=dict)
    edges_from: dict[str, list[CallEdge]] = field(default_factory=dict)
    _attr_cache: dict[tuple[str, str], dict[str, Symbol]] = field(
        default_factory=dict
    )

    # -- construction ----------------------------------------------------------

    @staticmethod
    def build(project, symbols: SymbolTable) -> "CallGraph":
        graph = CallGraph(symbols=symbols)
        for module in project.parsed():
            mod = module.module_name
            if not mod or symbols.graph.modules.get(mod) != module.rel:
                continue
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    graph._add_node(mod, "", stmt, module.rel)
                elif isinstance(stmt, ast.ClassDef):
                    for item in stmt.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            graph._add_node(mod, stmt.name, item, module.rel)
        for node_id in sorted(graph.nodes):
            graph.edges_from[node_id] = graph._resolve_edges(node_id)
        return graph

    def _add_node(self, module: str, cls: str, func, rel: str) -> None:
        node = FunctionNode(module=module, cls=cls, name=func.name, rel=rel)
        if node.id not in self.nodes:
            self.nodes[node.id] = node
            self.funcs[node.id] = func

    # -- receiver typing -------------------------------------------------------

    def _attr_classes(self, module: str, cls: str) -> dict[str, Symbol]:
        """``self.<attr>`` -> class symbol, from assignments anywhere in the
        class (``self._x = Cls(...)``, ``self._x[k] = Cls(...)``,
        ``self._x: Cls = ...``, conditional-expression arms included)."""
        cached = self._attr_cache.get((module, cls))
        if cached is not None:
            return cached
        node = self.symbols.classes.get((module, cls))
        if node is None:
            self._attr_cache[(module, cls)] = {}
            return {}
        out: dict[str, Symbol] = {}
        for sub in ast.walk(node):
            target = value = None
            if isinstance(sub, ast.Assign) and len(sub.targets) >= 1:
                target, value = sub.targets[0], sub.value
            elif isinstance(sub, ast.AnnAssign):
                target = sub.target
                ann = self._class_of_annotation(module, sub.annotation)
                if ann is not None and isinstance(target, ast.Attribute):
                    if _is_self(target.value):
                        out.setdefault(target.attr, ann)
                value = sub.value
            if target is None:
                continue
            if isinstance(target, ast.Subscript):
                target = target.value
            if not (isinstance(target, ast.Attribute) and _is_self(target.value)):
                continue
            symbol = self._class_of_value(module, value)
            if symbol is not None:
                out.setdefault(target.attr, symbol)
        self._attr_cache[(module, cls)] = out
        return out

    def _local_classes(self, module: str, func) -> dict[str, Symbol]:
        """Local variable -> class symbol: annotated parameters plus
        ``x = Cls(...)`` bindings."""
        out: dict[str, Symbol] = {}
        for arg in list(func.args.args) + list(func.args.kwonlyargs):
            if arg.annotation is not None:
                symbol = self._class_of_annotation(module, arg.annotation)
                if symbol is not None:
                    out.setdefault(arg.arg, symbol)
        for sub in ast.walk(func):
            if isinstance(sub, ast.Assign):
                symbol = self._class_of_value(module, sub.value)
                if symbol is None:
                    continue
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = symbol
        return out

    def _class_of_value(self, module: str, value) -> Symbol | None:
        if isinstance(value, ast.IfExp):
            return (
                self._class_of_value(module, value.body)
                or self._class_of_value(module, value.orelse)
            )
        if not isinstance(value, ast.Call):
            return None
        dotted = _dotted(value.func)
        if not dotted:
            return None
        symbol = self.symbols.resolve(module, dotted)
        if symbol is not None and symbol.kind == "class":
            return symbol
        return None

    def _class_of_annotation(self, module: str, ann) -> Symbol | None:
        if isinstance(ann, ast.BinOp):  # ``Cls | None``
            return (
                self._class_of_annotation(module, ann.left)
                or self._class_of_annotation(module, ann.right)
            )
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            symbol = self.symbols.resolve(module, ann.value.split("|")[0].strip())
        else:
            dotted = _dotted(ann)
            symbol = self.symbols.resolve(module, dotted) if dotted else None
        if symbol is not None and symbol.kind == "class":
            return symbol
        return None

    # -- edge resolution -------------------------------------------------------

    def _resolve_edges(self, node_id: str) -> list[CallEdge]:
        node = self.nodes[node_id]
        func = self.funcs[node_id]
        locals_map = self._local_classes(node.module, func)
        attr_map = (
            self._attr_classes(node.module, node.cls) if node.cls else {}
        )
        edges: list[CallEdge] = []
        for call, guarded in _calls_with_guards(func):
            edge = self._resolve_call(node, call, locals_map, attr_map, guarded)
            if edge is not None:
                edges.append(edge)
        return sorted(
            set(edges), key=lambda e: (e.callee, e.kind, e.line, e.guarded)
        )

    def _resolve_call(
        self,
        node: FunctionNode,
        call: ast.Call,
        locals_map: dict[str, Symbol],
        attr_map: dict[str, Symbol],
        guarded: bool,
    ) -> CallEdge | None:
        target = call.func
        # self.m(...) and self._attr.m(...) / self._attr[k].m(...)
        if isinstance(target, ast.Attribute):
            receiver = target.value
            if isinstance(receiver, ast.Subscript):
                receiver = receiver.value
            if _is_self(receiver):
                resolved = self.symbols.mro_method(
                    node.module, node.cls, target.attr
                )
                return self._method_edge(node, resolved, "self", guarded, call)
            if (
                isinstance(receiver, ast.Attribute)
                and _is_self(receiver.value)
                and receiver.attr in attr_map
            ):
                owner = attr_map[receiver.attr]
                resolved = self.symbols.mro_method(
                    owner.module, owner.name, target.attr
                )
                return self._method_edge(node, resolved, "attr", guarded, call)
            if isinstance(receiver, ast.Name) and receiver.id in locals_map:
                owner = locals_map[receiver.id]
                resolved = self.symbols.mro_method(
                    owner.module, owner.name, target.attr
                )
                return self._method_edge(node, resolved, "attr", guarded, call)
        dotted = _dotted(target)
        if not dotted:
            return None
        symbol = self.symbols.resolve(node.module, dotted)
        if symbol is None:
            return None
        if symbol.kind == "func":
            callee = FunctionNode(
                module=symbol.module,
                cls="",
                name=symbol.name,
                rel=self.symbols.graph.modules.get(symbol.module, ""),
            )
            if callee.id not in self.nodes:
                return None
            kind = "name" if "." not in dotted else "module"
            return CallEdge(
                caller=node.id,
                callee=callee.id,
                kind=kind,
                cross_module=symbol.module != node.module,
                guarded=guarded,
                line=call.lineno,
            )
        if symbol.kind == "class":
            resolved = self.symbols.mro_method(
                symbol.module, symbol.name, "__init__"
            )
            return self._method_edge(node, resolved, "ctor", guarded, call)
        return None

    def _method_edge(
        self, node: FunctionNode, resolved, kind: str, guarded: bool, call
    ) -> CallEdge | None:
        if resolved is None:
            return None
        module, cls, _func = resolved
        callee = FunctionNode(
            module=module,
            cls=cls,
            name=_func.name,
            rel=self.symbols.graph.modules.get(module, ""),
        )
        if callee.id not in self.nodes:
            return None
        return CallEdge(
            caller=node.id,
            callee=callee.id,
            kind=kind,
            cross_module=module != node.module,
            guarded=guarded,
            line=call.lineno,
        )

    # -- dispatch roots --------------------------------------------------------

    def dispatch_roots(self, project) -> list[str]:
        """Node ids of every SOAP-dispatchable method in the project: the
        roots the REP2xx/REP9xx reachability passes grow from."""
        roots: set[str] = set()
        for module in project.parsed():
            mod = module.module_name
            if not mod:
                continue
            for exposure in find_exposures(module.tree):
                symbol = self.symbols.resolve(mod, exposure.class_name)
                if symbol is None or symbol.kind != "class":
                    continue
                methods = set(exposure.methods)
                if exposure.expose_all:
                    methods |= self._public_methods(symbol)
                for method in methods:
                    resolved = self.symbols.mro_method(
                        symbol.module, symbol.name, method
                    )
                    if resolved is not None:
                        owner_mod, owner_cls, func = resolved
                        roots.add(
                            FunctionNode(
                                module=owner_mod,
                                cls=owner_cls,
                                name=func.name,
                                rel=self.symbols.graph.modules.get(owner_mod, ""),
                            ).id
                        )
        return sorted(roots & set(self.nodes))

    def _public_methods(self, symbol: Symbol) -> set[str]:
        out: set[str] = set()
        queue = [(symbol.module, symbol.name)]
        visited: set[tuple[str, str]] = set()
        while queue:
            current = queue.pop(0)
            if current in visited:
                continue
            visited.add(current)
            node = self.symbols.classes.get(current)
            if node is None:
                continue
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not item.name.startswith("_"):
                        out.add(item.name)
            queue.extend(
                (b.module, b.name)
                for b in self.symbols.class_bases(current[0], current[1])
            )
        return out


def _is_self(node) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _calls_with_guards(func) -> list[tuple[ast.Call, bool]]:
    """Every Call in *func* (nested defs included — their bodies execute,
    or not, under the enclosing function's authority) with a flag for
    whether an enclosing ``try`` has an ``except`` handler around it."""
    out: list[tuple[ast.Call, bool]] = []

    def collect(node, guarded: bool) -> None:
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                out.append((sub, guarded))

    def visit(stmts: list[ast.stmt], guarded: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.ClassDef):
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(stmt.body, guarded)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body, guarded or bool(stmt.handlers))
                for handler in stmt.handlers:
                    visit(handler.body, guarded)
                # orelse/finally raises are NOT caught by this try's handlers
                visit(stmt.orelse, guarded)
                visit(stmt.finalbody, guarded)
            elif isinstance(stmt, (ast.If, ast.While)):
                collect(stmt.test, guarded)
                visit(stmt.body, guarded)
                visit(stmt.orelse, guarded)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                collect(stmt.iter, guarded)
                visit(stmt.body, guarded)
                visit(stmt.orelse, guarded)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    collect(item.context_expr, guarded)
                visit(stmt.body, guarded)
            else:
                collect(stmt, guarded)

    visit(func.body, False)
    return out
