"""The whole-program project model: import graph, symbols, calls, dataflow.

PR 5's linter stopped at module boundaries — its fault-taxonomy closure
followed ``self.`` and same-module calls only, because that was all a
per-file AST pass could see.  The portal's correctness, though, lives in
what flows *between* services: deadline budgets, trace context,
principals, idempotency keys.  This subpackage gives checkers the three
structures a whole-program rule needs, all built from the same parsed
:class:`~repro.analysis.core.Project` (still pure stdlib, still never
importing the code under analysis):

- :mod:`~repro.analysis.graph.modgraph` — the module/import graph
  (which project module imports which), used both for resolution and
  for incremental-cache invalidation;
- :mod:`~repro.analysis.graph.symbols` — a project symbol table that
  resolves names through import aliases, re-exports, and module-level
  assignment aliases to their defining module;
- :mod:`~repro.analysis.graph.callgraph` — a call graph over ``self.``
  calls (through base classes), module-level functions, instance
  attributes bound in ``__init__``, and cross-module calls;
- :mod:`~repro.analysis.graph.dataflow` — a small deterministic
  worklist framework for fixpoint summaries (taint, ownership) over the
  call graph.

Everything iterates in sorted order: two runs over the same tree build
byte-identical graphs, which is what keeps whole-program reports
reproducible and cacheable.
"""

from repro.analysis.graph.callgraph import CallEdge, CallGraph, FunctionNode
from repro.analysis.graph.dataflow import Dataflow, reachable
from repro.analysis.graph.modgraph import ModuleGraph
from repro.analysis.graph.symbols import Symbol, SymbolTable

__all__ = [
    "CallEdge",
    "CallGraph",
    "Dataflow",
    "FunctionNode",
    "ModuleGraph",
    "ProjectGraph",
    "Symbol",
    "SymbolTable",
    "reachable",
]


class ProjectGraph:
    """The lazily-built bundle of whole-program structures for one
    :class:`~repro.analysis.core.Project`.

    Checkers reach it through ``project.graph()``; the three layers are
    built once per analysis run and shared by every graph-aware checker,
    so the cost of whole-program resolution is paid once, not per rule.
    """

    def __init__(self, project):
        self.project = project
        self._modules: ModuleGraph | None = None
        self._symbols: SymbolTable | None = None
        self._calls: CallGraph | None = None

    @property
    def modules(self) -> ModuleGraph:
        if self._modules is None:
            self._modules = ModuleGraph.build(self.project)
        return self._modules

    @property
    def symbols(self) -> SymbolTable:
        if self._symbols is None:
            self._symbols = SymbolTable.build(self.project, self.modules)
        return self._symbols

    @property
    def calls(self) -> CallGraph:
        if self._calls is None:
            self._calls = CallGraph.build(self.project, self.symbols)
        return self._calls
