"""REP8xx — workflow stages: explicit idempotency, sealed provenance.

Crash-resume only replays byte-identically when a re-driven stage hits the
server-side dedup cache, and that cache is keyed by the stage's idempotency
key.  A stage class that implements ``execute`` without declaring its own
``idempotency_key`` would silently inherit the base's ``NotImplementedError``
— or worse, a sibling's key — so REP801 makes the declaration a lint-time
contract rather than a first-crash surprise.

Provenance records are content-addressed: their identity *is* their bytes.
Mutating a record fetched back from the store (``store.record(addr)``)
breaks the hash chain the ``workflow-provenance`` oracle and offline
``verify()`` both walk.  REP802 flags in-place mutation of any name bound
from a record accessor.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    SourceModule,
    register_checker,
)

#: root of the stage hierarchy (matched by name, project-wide)
STAGE_ROOT = "WorkflowStage"

#: accessor methods whose return value is a sealed provenance record
SEALED_ACCESSORS = ("record", "get_record")

#: dict-mutating method calls that would rewrite a sealed record in place
MUTATING_METHODS = ("update", "pop", "popitem", "setdefault", "clear")


def _defines(cls: ast.ClassDef, method: str) -> bool:
    return any(
        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        and item.name == method
        for item in cls.body
    )


@register_checker
class WorkflowChecker(Checker):
    name = "workflow"
    description = (
        "workflow stages declare explicit idempotency keys; sealed "
        "provenance records are never mutated after retrieval"
    )
    codes = {
        "REP801": (
            "workflow stage implements execute without declaring an "
            "idempotency_key"
        ),
        "REP802": "sealed provenance record mutated after retrieval",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        index = project.class_index()
        stages = project.subclasses_of({STAGE_ROOT}) - {STAGE_ROOT}
        for name in sorted(stages):
            module, node = index[name]
            yield from self._check_stage(module, node, index)
        for module in project.parsed():
            yield from self._check_sealed_mutations(module)

    # -- REP801: every concrete stage names its own dedup key -----------------------

    def _check_stage(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        index: dict[str, tuple[SourceModule, ast.ClassDef]],
    ) -> Iterable[Finding]:
        if not _defines(cls, "execute"):
            return  # an abstract stem; its concrete children are checked
        if self._inherits_key(cls, index):
            return
        yield module.finding(
            "REP801",
            f"workflow stage {cls.name} implements execute() but never "
            "declares idempotency_key — re-driven attempts after a crash "
            "would not hit the server-side dedup cache, so resume could "
            "not replay byte-identically",
            cls,
            checker=self.name,
            symbol=cls.name,
        )

    def _inherits_key(
        self,
        cls: ast.ClassDef,
        index: dict[str, tuple[SourceModule, ast.ClassDef]],
    ) -> bool:
        """Does *cls* (or an ancestor below the root) define the key?"""
        seen: set[str] = set()
        stack = [cls.name]
        while stack:
            name = stack.pop()
            if name in seen or name == STAGE_ROOT:
                continue  # the root's definition only raises; it doesn't count
            seen.add(name)
            entry = index.get(name)
            if entry is None:
                continue
            node = entry[1]
            if _defines(node, "idempotency_key"):
                return True
            for base in node.bases:
                base_name = base.id if isinstance(base, ast.Name) else (
                    base.attr if isinstance(base, ast.Attribute) else ""
                )
                if base_name:
                    stack.append(base_name)
        return False

    # -- REP802: records are immutable once sealed ----------------------------------

    def _check_sealed_mutations(
        self, module: SourceModule
    ) -> Iterable[Finding]:
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            sealed = self._sealed_names(scope)
            if sealed:
                yield from self._mutations(module, scope, sealed)

    @staticmethod
    def _sealed_names(scope: ast.AST) -> set[str]:
        """Names in *scope* bound from a record-accessor call."""
        sealed: set[str] = set()
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            value = node.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in SEALED_ACCESSORS
            ):
                sealed.add(target.id)
        return sealed

    def _mutations(
        self, module: SourceModule, scope: ast.AST, sealed: set[str]
    ) -> Iterable[Finding]:
        for node in ast.walk(scope):
            target = None
            how = ""
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for tgt in targets:
                    if (
                        isinstance(tgt, ast.Subscript)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id in sealed
                    ):
                        target, how = tgt.value.id, "assigns into"
                        break
            elif isinstance(node, ast.Delete):
                for tgt in node.targets:
                    if (
                        isinstance(tgt, ast.Subscript)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id in sealed
                    ):
                        target, how = tgt.value.id, "deletes from"
                        break
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in sealed
            ):
                target = node.func.value.id
                how = f"calls .{node.func.attr}() on"
            if target:
                yield module.finding(
                    "REP802",
                    f"{how} {target!r}, a sealed provenance record — "
                    "records are content-addressed, so in-place mutation "
                    "breaks the hash chain verify() and the "
                    "workflow-provenance oracle both walk",
                    node,
                    checker=self.name,
                    symbol=target,
                )
