"""REP3xx — WSDL contract drift: implementations must match the agreement.

The paper's core experiment (§3.4) is two groups implementing one agreed
interface separately and staying interoperable.  That only works while
the implementations actually present the same operation surface.  These
rules diff, statically:

- overrides against the method they override (REP301) — a subclass that
  changes a parameter list has silently forked the port type;
- declared ``*_interface_wsdl`` operation literals against the classes in
  the same module that implement them (REP302) — the WSDL is the
  agreement, the class is the implementation, and they drift
  independently;
- sibling implementations of one exposed port type against each other
  (REP303) — two services publishing the same interface must accept the
  same required arguments.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import (
    base_names,
    dotted_name,
    find_exposures,
    public_methods,
    signature_of,
)
from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    register_checker,
)

INTERFACE_FACTORY_SUFFIX = "_interface_wsdl"


def resolve_method(
    project: Project, cls_name: str, method: str
) -> tuple[str, ast.FunctionDef] | None:
    """Find *method* on *cls_name* or the nearest base defining it."""
    index = project.class_index()
    queue, visited = [cls_name], set()
    while queue:
        current = queue.pop(0)
        if current in visited or current not in index:
            continue
        visited.add(current)
        _module, node = index[current]
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and item.name == method:
                return current, item
        queue.extend(base_names(node))
    return None


def effective_surface(project: Project, cls_name: str) -> dict[str, str]:
    """Public method name -> owning class, walking bases (nearest wins)."""
    index = project.class_index()
    surface: dict[str, str] = {}
    queue, visited = [cls_name], set()
    while queue:
        current = queue.pop(0)
        if current in visited or current not in index:
            continue
        visited.add(current)
        _module, node = index[current]
        for name in public_methods(node):
            surface.setdefault(name, current)
        queue.extend(base_names(node))
    return surface


@register_checker
class ContractDriftChecker(Checker):
    name = "contracts"
    description = (
        "implementations of one WSDL port type present one operation surface"
    )
    codes = {
        "REP301": "override changes the parameter list of an inherited operation",
        "REP302": "class drifts from the *_interface_wsdl operations it implements",
        "REP303": "sibling implementations of an exposed port type disagree",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        exposed_roots = self._exposed_roots(project)
        exception_classes = project.subclasses_of({"PortalError", "Exception"})
        yield from self._check_overrides(project, exposed_roots, exception_classes)
        yield from self._check_interface_wsdl(project)
        yield from self._check_siblings(project, exposed_roots, exception_classes)

    @staticmethod
    def _exposed_roots(project: Project) -> list:
        roots = []
        index = project.class_index()
        for module in project.parsed():
            for exposure in find_exposures(module.tree):
                if exposure.class_name in index:
                    roots.append(exposure)
        return roots

    # -- REP301: override drift -------------------------------------------------

    def _check_overrides(
        self, project: Project, exposed_roots, exception_classes: set[str]
    ) -> Iterable[Finding]:
        index = project.class_index()
        in_scope: set[str] = set()
        for exposure in exposed_roots:
            in_scope |= project.subclasses_of({exposure.class_name})
        in_scope -= exception_classes
        for cls_name in sorted(in_scope):
            module, node = index[cls_name]
            for meth_name, func in sorted(public_methods(node).items()):
                base_def = None
                for base in base_names(node):
                    base_def = resolve_method(project, base, meth_name)
                    if base_def is not None:
                        break
                if base_def is None:
                    continue
                base_owner, base_func = base_def
                ours, theirs = signature_of(func), signature_of(base_func)
                symbol = f"{cls_name}.{meth_name}"
                if ours.params != theirs.params:
                    yield module.finding(
                        "REP301",
                        f"{symbol} takes ({', '.join(ours.params)}) but "
                        f"overrides {base_owner}.{meth_name}"
                        f"({', '.join(theirs.params)}) — the port type's "
                        "operation surface must not fork in a subclass",
                        func,
                        checker=self.name,
                        symbol=symbol,
                    )
                    continue
                drift = [
                    f"{p}: {a!r} vs {b!r}"
                    for p, a, b in zip(
                        ours.params, ours.annotations, theirs.annotations
                    )
                    if a and b and a != b
                ]
                if drift:
                    yield module.finding(
                        "REP301",
                        f"{symbol} re-annotates parameters of "
                        f"{base_owner}.{meth_name}: {'; '.join(drift)}",
                        func,
                        checker=self.name,
                        symbol=symbol,
                    )

    # -- REP302: declared WSDL vs implementation --------------------------------

    def _check_interface_wsdl(self, project: Project) -> Iterable[Finding]:
        for module in project.parsed():
            declared = self._declared_operations(module.tree)
            if not declared:
                continue
            for node in module.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                surface = effective_surface(project, node.name)
                implemented = sorted(set(declared) & set(surface))
                if not implemented:
                    continue
                for op_name in implemented:
                    resolved = resolve_method(project, node.name, op_name)
                    if resolved is None:
                        continue
                    owner, func = resolved
                    if owner != node.name:
                        continue  # inherited: reported once, on the definer
                    sig = signature_of(func)
                    required = sig.arity - sig.defaults
                    n_parts = declared[op_name]
                    if not (required <= n_parts <= sig.arity):
                        yield module.finding(
                            "REP302",
                            f"{node.name}.{op_name} takes "
                            f"{required}..{sig.arity} arguments but the "
                            f"interface WSDL declares {n_parts} input "
                            "part(s) — implementation drifted from the "
                            "agreed contract",
                            func,
                            checker=self.name,
                            symbol=f"{node.name}.{op_name}",
                        )
                missing = sorted(set(declared) - set(surface))
                if missing and len(implemented) * 2 > len(declared):
                    yield module.finding(
                        "REP302",
                        f"{node.name} implements "
                        f"{len(implemented)}/{len(declared)} declared "
                        f"operations but is missing: {', '.join(missing)}",
                        node,
                        checker=self.name,
                        symbol=node.name,
                    )

    @staticmethod
    def _declared_operations(tree: ast.Module) -> dict[str, int]:
        """Operation name -> declared input-part count, from WsdlOperation
        literals inside ``*_interface_wsdl`` factory functions."""
        declared: dict[str, int] = {}
        for func in tree.body:
            if not isinstance(func, ast.FunctionDef):
                continue
            if not func.name.endswith(INTERFACE_FACTORY_SUFFIX):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                callee = dotted_name(node.func).split(".")[-1]
                if callee != "WsdlOperation" or len(node.args) < 3:
                    continue
                name_arg, parts_arg = node.args[0], node.args[2]
                if not (
                    isinstance(name_arg, ast.Constant)
                    and isinstance(name_arg.value, str)
                ):
                    continue
                if isinstance(parts_arg, (ast.List, ast.Tuple)):
                    declared[name_arg.value] = len(parts_arg.elts)
        return declared

    # -- REP303: sibling implementations ----------------------------------------

    def _check_siblings(
        self, project: Project, exposed_roots, exception_classes: set[str]
    ) -> Iterable[Finding]:
        index = project.class_index()
        seen_roots: set[str] = set()
        for exposure in exposed_roots:
            root = exposure.class_name
            if root in seen_roots or root in exception_classes:
                continue
            seen_roots.add(root)
            family = sorted(
                project.subclasses_of({root}) - {root} - exception_classes
            )
            if not family:
                continue
            ops = (
                sorted(exposure.methods)
                if exposure.methods
                else sorted(effective_surface(project, root))
            )
            root_required = {}
            for op in ops:
                resolved = resolve_method(project, root, op)
                if resolved is None:
                    continue
                sig = signature_of(resolved[1])
                root_required[op] = sig.arity - sig.defaults
            for member in family:
                module, node = index[member]
                for op, want in sorted(root_required.items()):
                    resolved = resolve_method(project, member, op)
                    if resolved is None or resolved[0] != member:
                        continue  # inherited verbatim: trivially consistent
                    sig = signature_of(resolved[1])
                    got = sig.arity - sig.defaults
                    if got != want:
                        yield module.finding(
                            "REP303",
                            f"{member}.{op} requires {got} argument(s) but "
                            f"the {root} port type requires {want} — "
                            "sibling implementations must accept the same "
                            "calls",
                            resolved[1],
                            checker=self.name,
                            symbol=f"{member}.{op}",
                        )
