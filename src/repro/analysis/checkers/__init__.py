"""Checker catalog — importing this package registers every checker.

Import order fixes checker (and therefore finding-discovery) order, so it
is explicit rather than alphabetical-by-accident.
"""

from repro.analysis.checkers import (  # noqa: F401  (registration side effects)
    determinism,
    faults,
    contracts,
    headers,
    hygiene,
    simtest,
    slo,
    workflow,
    propagation,
)
