"""REP1xx — determinism: the simulation runs on virtual time and seeds.

Every behaviour in this reproduction must be a pure function of (code,
seeds): the chaos, recovery, trace, and overload suites all assert
byte-identical reruns.  Wall-clock reads, real sleeps, unseeded
randomness, and registry iteration in insertion order are the four ways
nondeterminism has historically leaked into systems like this one.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.astutil import import_aliases, resolve_call_path
from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    SourceModule,
    register_checker,
)

#: wall-clock and sleep functions (virtual time lives on SimClock)
TIME_CALLS = {
    "time.time",
    "time.time_ns",
    "time.sleep",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
}

#: ambient-date constructors (never meaningful inside the simulation)
DATETIME_CALLS = {
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}

#: names on the ``random`` module that are fine to touch: the seeded
#: generator class itself (constructed *with* a seed — checked separately)
RANDOM_ALLOWED_ATTRS = {"Random"}

#: mapping-valued attributes that act as discovery/provider registries;
#: iterating them in insertion order makes results depend on registration
#: order, which differs between providers
REGISTRY_NAME_RE = re.compile(
    r"(?:^|_)(children|metadata|registry|registries|businesses|services"
    r"|tmodels|providers|bindings|lanes|contacts)$"
)

DICT_VIEWS = {"values", "items", "keys"}


@register_checker
class DeterminismChecker(Checker):
    name = "determinism"
    description = (
        "virtual-clock time, seeded randomness, and order-stable registry "
        "iteration"
    )
    codes = {
        "REP101": "wall-clock/sleep call (use SimClock)",
        "REP102": "ambient datetime construction (use SimClock)",
        "REP103": "unseeded randomness (use a seeded random.Random)",
        "REP104": "insertion-order iteration over a registry mapping (wrap in sorted())",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.parsed():
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterable[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, aliases)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for comp in node.generators:
                    yield from self._check_iteration(module, comp.iter)

    def _check_call(
        self, module: SourceModule, node: ast.Call, aliases: dict[str, str]
    ) -> Iterable[Finding]:
        path = resolve_call_path(node.func, aliases)
        if not path:
            return
        if path in TIME_CALLS:
            yield module.finding(
                "REP101",
                f"call to {path}() — real time is banned; advance the "
                "shared SimClock instead",
                node,
                checker=self.name,
            )
        elif path in DATETIME_CALLS:
            yield module.finding(
                "REP102",
                f"call to {path}() — ambient dates are banned; derive "
                "times from the SimClock",
                node,
                checker=self.name,
            )
        elif path == "random.Random":
            if not node.args and not node.keywords:
                yield module.finding(
                    "REP103",
                    "random.Random() constructed without a seed — "
                    "pass an explicit seed",
                    node,
                    checker=self.name,
                )
        elif path.startswith("random.") and path.count(".") == 1:
            attr = path.split(".", 1)[1]
            if attr not in RANDOM_ALLOWED_ATTRS:
                yield module.finding(
                    "REP103",
                    f"call to {path}() uses the shared unseeded generator — "
                    "draw from a seeded random.Random instance",
                    node,
                    checker=self.name,
                )

    def _check_iteration(
        self, module: SourceModule, iter_node: ast.AST
    ) -> Iterable[Finding]:
        # Only an explicit dict view (.values()/.items()/.keys()) proves the
        # thing iterated is a mapping; the same attribute names also hold
        # ordered lists (XmlElement.children, BusinessService.bindings),
        # whose iteration is document order and perfectly deterministic.
        target = iter_node
        if not (
            isinstance(target, ast.Call)
            and isinstance(target.func, ast.Attribute)
            and target.func.attr in DICT_VIEWS
            and not target.args
        ):
            return
        view = f".{target.func.attr}()"
        name = self._registry_name(target.func.value)
        if name is None:
            return
        yield module.finding(
            "REP104",
            f"iteration over registry mapping {name}{view} depends on "
            "insertion order — wrap in sorted()",
            iter_node,
            checker=self.name,
        )

    @staticmethod
    def _registry_name(node: ast.AST) -> str | None:
        """The display name when *node* is a bare/attribute reference to a
        registry-patterned mapping (``sorted(...)`` wrappers never reach
        here: the iter expression is then the sorted() call)."""
        if isinstance(node, ast.Attribute):
            if REGISTRY_NAME_RE.search(node.attr):
                base = node.value
                prefix = f"{base.id}." if isinstance(base, ast.Name) else "…."
                return prefix + node.attr
        elif isinstance(node, ast.Name) and REGISTRY_NAME_RE.search(node.id):
            return node.id
        return None
