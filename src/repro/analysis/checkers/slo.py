"""REP7xx — SLOs and sampling: seeded retention, fully-declared objectives.

The tail sampler's contract is that two same-seed runs keep byte-identical
trace sets; one ``random.random()`` inside a retention decision silently
voids it — the traces an alert's exemplars point at would differ run to
run.  Any randomness a :class:`SamplingPolicy` uses must flow from an
explicit seed (REP701).

An SLO without a window and a budget is a slogan, not an objective: burn
rate is *budget spend per window*, so omitting either leaves the alerting
math undefined.  The ``SLO`` dataclass enforces both at runtime via
keyword-only fields; REP702 moves the failure to lint time, where it names
the call site instead of whichever deployment first constructs it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import import_aliases, resolve_call_path
from repro.analysis.checkers.determinism import RANDOM_ALLOWED_ATTRS
from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    SourceModule,
    register_checker,
)

#: root of the retention-policy hierarchy (matched by name, project-wide)
POLICY_ROOT = "SamplingPolicy"

#: the objective dataclass REP702 audits construction of
SLO_CLASS = "SLO"

#: the keyword-only fields every SLO definition must spell out
REQUIRED_SLO_KEYWORDS = ("window", "budget")


@register_checker
class SloSamplingChecker(Checker):
    name = "slo"
    description = (
        "sampling retention decisions seeded; SLO definitions declare "
        "both window and budget"
    )
    codes = {
        "REP701": (
            "unseeded randomness inside a sampling policy's retention "
            "decision"
        ),
        "REP702": "SLO definition missing an explicit window= or budget=",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        index = project.class_index()
        policies = project.subclasses_of({POLICY_ROOT}) - {POLICY_ROOT}
        for name in sorted(policies):
            module, node = index[name]
            yield from self._check_policy(module, node)
        for module in project.parsed():
            yield from self._check_slo_calls(module)

    # -- REP701: retention decisions must be seeded ---------------------------------

    def _check_policy(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(cls):
            if not isinstance(node, ast.Call):
                continue
            path = resolve_call_path(node.func, aliases)
            if not path:
                continue
            if path == "random.Random":
                if not node.args and not node.keywords:
                    yield module.finding(
                        "REP701",
                        f"sampling policy {cls.name} constructs "
                        "random.Random() without a seed — retention must "
                        "replay byte-identically from the run seed",
                        node,
                        checker=self.name,
                        symbol=cls.name,
                    )
            elif path.startswith("random.") and path.count(".") == 1:
                if path.split(".", 1)[1] not in RANDOM_ALLOWED_ATTRS:
                    yield module.finding(
                        "REP701",
                        f"sampling policy {cls.name} calls {path}() on the "
                        "shared unseeded generator — the kept-trace set "
                        "would differ between same-seed runs",
                        node,
                        checker=self.name,
                        symbol=cls.name,
                    )

    # -- REP702: objectives declare their window and budget ---------------------------

    def _check_slo_calls(self, module: SourceModule) -> Iterable[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            path = resolve_call_path(node.func, aliases)
            if not path:
                continue
            if path != SLO_CLASS and not path.endswith(f".{SLO_CLASS}"):
                continue
            keywords = {kw.arg for kw in node.keywords}
            if None in keywords:
                continue  # a **splat may carry them; runtime still enforces
            missing = [
                field for field in REQUIRED_SLO_KEYWORDS
                if field not in keywords
            ]
            if missing:
                yield module.finding(
                    "REP702",
                    "SLO definition omits "
                    + " and ".join(f"{field}=" for field in missing)
                    + " — burn rate is budget spend per window, so an "
                    "objective without both is unalertable",
                    node,
                    checker=self.name,
                    symbol=SLO_CLASS,
                )
