"""REP2xx — fault taxonomy: SOAP-reachable errors speak ``Portal.*``.

§3 of the paper: services "must define and relay a common set of error
messages".  The SOAP layer maps :class:`repro.faults.PortalError` onto
faults with a stable code/detail convention; anything else dispatched out
of a service method degrades into an opaque ``Server`` fault that no
client can classify or retry correctly.

Reachability is resolved the way the codebase actually wires services:
``soap.expose(impl.method)`` / ``soap.expose_object(impl)`` roots the
dispatch surface at a class; from each exposed method the checker follows
``self.helper()`` calls (through base classes) and same-module function
calls.  Cross-module calls are not followed — wrapping foreign errors at
the service boundary is exactly the discipline the rule enforces.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import (
    all_methods,
    base_names,
    dotted_name,
    find_exposures,
    import_aliases,
)
from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    SourceModule,
    register_checker,
)

#: exception names always permitted in a dispatch path
ALLOWED_RAISES = {
    "NotImplementedError",  # abstract operations
    "ServiceCrash",  # the simulation's process-death primitive
    "StopIteration",
}

FAULT_ROOT = "PortalError"

#: dotted-module prefix that marks an import as part of the taxonomy
FAULT_MODULE = "repro.faults"


@register_checker
class FaultTaxonomyChecker(Checker):
    name = "faults"
    description = (
        "SOAP-dispatched errors carry Portal.* fault codes and an explicit "
        "retryable classification"
    )
    codes = {
        "REP201": "raise of a non-PortalError reachable from SOAP dispatch",
        "REP202": "PortalError subclass without an explicit `code`",
        "REP203": "PortalError subclass without an explicit `retryable` classification",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        portal_classes = project.subclasses_of({FAULT_ROOT})
        yield from self._check_subclasses(project, portal_classes)
        yield from self._check_reachable_raises(project, portal_classes)

    # -- REP202/REP203: the taxonomy itself -----------------------------------

    def _check_subclasses(
        self, project: Project, portal_classes: set[str]
    ) -> Iterable[Finding]:
        for name in sorted(portal_classes - {FAULT_ROOT}):
            module, node = project.class_index()[name]
            assigned = {
                target.id
                for item in node.body
                if isinstance(item, ast.Assign)
                for target in item.targets
                if isinstance(target, ast.Name)
            }
            if "code" not in assigned:
                yield module.finding(
                    "REP202",
                    f"PortalError subclass {name} does not set a fault "
                    "`code` — every vocabulary member needs a stable code",
                    node,
                    checker=self.name,
                    symbol=name,
                )
            if "retryable" not in assigned:
                yield module.finding(
                    "REP203",
                    f"PortalError subclass {name} does not classify "
                    "`retryable` explicitly — clients retry on this flag, "
                    "so inheriting it silently is drift waiting to happen",
                    node,
                    checker=self.name,
                    symbol=name,
                )

    # -- REP201: reachable raises ----------------------------------------------

    def _check_reachable_raises(
        self, project: Project, portal_classes: set[str]
    ) -> Iterable[Finding]:
        index = project.class_index()
        for module in project.parsed():
            exposures = find_exposures(module.tree)
            if not exposures:
                continue
            module_functions = self._module_functions(module.tree)
            seen: set[tuple[str, str]] = set()
            for exposure in exposures:
                if exposure.class_name not in index:
                    continue
                for cls_name, method in self._reachable_methods(
                    project, exposure, module_functions
                ):
                    key = (cls_name, method.name)
                    if key in seen:
                        continue
                    seen.add(key)
                    owner_module = (
                        index[cls_name][0] if cls_name in index else module
                    )
                    yield from self._check_raises(
                        owner_module,
                        method,
                        cls_name,
                        portal_classes,
                        self._fault_imports(owner_module),
                    )

    @staticmethod
    def _fault_imports(module: SourceModule) -> set[str]:
        """Local names bound by imports to ``repro.faults`` members —
        portal errors even when the class is defined outside the run."""
        return {
            local
            for local, origin in import_aliases(module.tree).items()
            if origin.startswith(FAULT_MODULE + ".")
        }

    @staticmethod
    def _module_functions(tree: ast.Module) -> dict[str, ast.FunctionDef]:
        return {
            node.name: node
            for node in tree.body
            if isinstance(node, ast.FunctionDef)
        }

    def _class_method(
        self, project: Project, cls_name: str, method: str
    ) -> tuple[str, ast.FunctionDef] | None:
        """Resolve *method* on *cls_name* walking base classes by name."""
        index = project.class_index()
        queue = [cls_name]
        visited = set()
        while queue:
            current = queue.pop(0)
            if current in visited or current not in index:
                continue
            visited.add(current)
            _module, node = index[current]
            methods = all_methods(node)
            if method in methods:
                return current, methods[method]
            queue.extend(base_names(node))
        return None

    def _reachable_methods(
        self,
        project: Project,
        exposure,
        module_functions: dict[str, ast.FunctionDef],
    ) -> Iterable[tuple[str, ast.FunctionDef]]:
        """The dispatch closure: exposed methods, the ``self.*`` helpers
        they call (through bases), and same-module functions they use."""
        index = project.class_index()
        _module, class_node = index[exposure.class_name]
        roots: list[str] = sorted(exposure.methods)
        if exposure.expose_all:
            # expose_object: every public method on the class and its bases
            queue, visited = [exposure.class_name], set()
            while queue:
                current = queue.pop(0)
                if current in visited or current not in index:
                    continue
                visited.add(current)
                _m, node = index[current]
                roots.extend(
                    name
                    for name in all_methods(node)
                    if not name.startswith("_")
                )
                queue.extend(base_names(node))
            roots = sorted(set(roots))

        pending: list[tuple[str, str]] = [
            (exposure.class_name, name) for name in roots
        ]
        visited_methods: set[tuple[str, str]] = set()
        visited_functions: set[str] = set()
        while pending:
            cls_name, meth_name = pending.pop(0)
            resolved = self._class_method(project, cls_name, meth_name)
            if resolved is None:
                continue
            owner, func = resolved
            if (owner, func.name) in visited_methods:
                continue
            visited_methods.add((owner, func.name))
            yield owner, func
            for callee in self._called_names(func):
                kind, name = callee
                if kind == "self":
                    pending.append((exposure.class_name, name))
                elif kind == "func" and name in module_functions:
                    if name not in visited_functions:
                        visited_functions.add(name)
                        yield "", module_functions[name]
                        for sub in self._called_names(module_functions[name]):
                            if sub[0] == "func" and sub[1] in module_functions:
                                if sub[1] not in visited_functions:
                                    visited_functions.add(sub[1])
                                    yield "", module_functions[sub[1]]

    @staticmethod
    def _called_names(func: ast.FunctionDef) -> list[tuple[str, str]]:
        out: list[tuple[str, str]] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                out.append(("self", target.attr))
            elif isinstance(target, ast.Name):
                out.append(("func", target.id))
        return out

    def _check_raises(
        self,
        module: SourceModule,
        func: ast.FunctionDef,
        cls_name: str,
        portal_classes: set[str],
        fault_imports: set[str],
    ) -> Iterable[Finding]:
        symbol = f"{cls_name}.{func.name}" if cls_name else func.name
        for node in ast.walk(func):
            if not isinstance(node, ast.Raise):
                continue
            verdict = self._raise_target(
                node, portal_classes | fault_imports
            )
            if verdict is None:
                continue
            yield module.finding(
                "REP201",
                f"{symbol} raises {verdict} on a SOAP-dispatched path — "
                "raise a PortalError subclass so the fault carries a "
                "Portal.* code and retryable classification",
                node,
                checker=self.name,
                symbol=symbol,
            )

    @staticmethod
    def _raise_target(node: ast.Raise, portal_classes: set[str]) -> str | None:
        """The offending exception name, or ``None`` when the raise is
        acceptable (portal error, re-raise, unresolvable variable)."""
        exc = node.exc
        if exc is None:
            return None  # bare re-raise
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = dotted_name(exc)
        if not name:
            return None  # dynamic construction: out of static reach
        head = name.split(".")[0]
        if head and head[0].islower() and head != "self":
            return None  # a variable being re-raised (e.g. `raise err`)
        for part in name.split("."):
            if part in portal_classes or part in ALLOWED_RAISES:
                return None
        return name
