"""REP2xx — fault taxonomy: SOAP-reachable errors speak ``Portal.*``.

§3 of the paper: services "must define and relay a common set of error
messages".  The SOAP layer maps :class:`repro.faults.PortalError` onto
faults with a stable code/detail convention; anything else dispatched out
of a service method degrades into an opaque ``Server`` fault that no
client can classify or retry correctly.

Reachability comes from the whole-program call graph
(:mod:`repro.analysis.graph`): dispatch roots are the
``soap.expose(impl.method)`` / ``soap.expose_object(impl)`` surface, and
the REP201 closure follows ``self.helper()`` edges (through resolved base
classes) and same-module function calls.  Cross-module calls are left to
REP901 — wrapping foreign errors at the service boundary is exactly the
discipline that split enforces.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import dotted_name, import_aliases
from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    SourceModule,
    register_checker,
)
from repro.analysis.graph.dataflow import reachable

#: exception names always permitted in a dispatch path
ALLOWED_RAISES = {
    "NotImplementedError",  # abstract operations
    "ServiceCrash",  # the simulation's process-death primitive
    "StopIteration",
}

FAULT_ROOT = "PortalError"

#: dotted-module prefix that marks an import as part of the taxonomy
FAULT_MODULE = "repro.faults"


def _same_module_filter(edge) -> bool:
    """The REP201 closure follows dispatch *within* the service: method
    calls on the object itself, and function calls that stay inside the
    defining module.  (``self`` edges may land in a base class defined in
    another module — inheritance is one service, so they count.)"""
    if edge.kind == "self":
        return True
    return edge.kind == "name" and not edge.cross_module


def rep201_closure(project: Project) -> set[tuple[str, str, str]]:
    """(module, class, function) triples in the same-module dispatch
    closure REP201 covers.  REP901 reports exactly the complement, so
    both rules derive it from the same graph walk."""
    calls = project.graph().calls
    roots = calls.dispatch_roots(project)
    reach = reachable(
        calls, roots, follow_guarded=True, edge_filter=_same_module_filter
    )
    return {
        (calls.nodes[node_id].module, calls.nodes[node_id].cls,
         calls.nodes[node_id].name)
        for node_id in reach
    }


@register_checker
class FaultTaxonomyChecker(Checker):
    name = "faults"
    description = (
        "SOAP-dispatched errors carry Portal.* fault codes and an explicit "
        "retryable classification"
    )
    codes = {
        "REP201": "raise of a non-PortalError reachable from SOAP dispatch",
        "REP202": "PortalError subclass without an explicit `code`",
        "REP203": "PortalError subclass without an explicit `retryable` classification",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        portal_classes = project.subclasses_of({FAULT_ROOT})
        yield from self._check_subclasses(project, portal_classes)
        yield from self._check_reachable_raises(project, portal_classes)

    # -- REP202/REP203: the taxonomy itself -----------------------------------

    def _check_subclasses(
        self, project: Project, portal_classes: set[str]
    ) -> Iterable[Finding]:
        for name in sorted(portal_classes - {FAULT_ROOT}):
            module, node = project.class_index()[name]
            assigned = {
                target.id
                for item in node.body
                if isinstance(item, ast.Assign)
                for target in item.targets
                if isinstance(target, ast.Name)
            }
            if "code" not in assigned:
                yield module.finding(
                    "REP202",
                    f"PortalError subclass {name} does not set a fault "
                    "`code` — every vocabulary member needs a stable code",
                    node,
                    checker=self.name,
                    symbol=name,
                )
            if "retryable" not in assigned:
                yield module.finding(
                    "REP203",
                    f"PortalError subclass {name} does not classify "
                    "`retryable` explicitly — clients retry on this flag, "
                    "so inheriting it silently is drift waiting to happen",
                    node,
                    checker=self.name,
                    symbol=name,
                )

    # -- REP201: reachable raises ----------------------------------------------

    def _check_reachable_raises(
        self, project: Project, portal_classes: set[str]
    ) -> Iterable[Finding]:
        calls = project.graph().calls
        by_module = {
            m.module_name: m
            for m in project.parsed()
            if project.graph().modules.modules.get(m.module_name) == m.rel
        }
        roots = calls.dispatch_roots(project)
        reach = reachable(
            calls, roots, follow_guarded=True, edge_filter=_same_module_filter
        )
        for node_id in sorted(reach):
            node = calls.nodes[node_id]
            module = by_module.get(node.module)
            if module is None:
                continue
            yield from self._check_raises(
                module,
                calls.funcs[node_id],
                node.cls,
                portal_classes,
                self._fault_imports(module),
            )

    @staticmethod
    def _fault_imports(module: SourceModule) -> set[str]:
        """Local names bound by imports to ``repro.faults`` members —
        portal errors even when the class is defined outside the run."""
        return {
            local
            for local, origin in import_aliases(module.tree).items()
            if origin.startswith(FAULT_MODULE + ".")
        }

    def _check_raises(
        self,
        module: SourceModule,
        func: ast.FunctionDef,
        cls_name: str,
        portal_classes: set[str],
        fault_imports: set[str],
    ) -> Iterable[Finding]:
        symbol = f"{cls_name}.{func.name}" if cls_name else func.name
        for node in ast.walk(func):
            if not isinstance(node, ast.Raise):
                continue
            verdict = self._raise_target(
                node, portal_classes | fault_imports
            )
            if verdict is None:
                continue
            yield module.finding(
                "REP201",
                f"{symbol} raises {verdict} on a SOAP-dispatched path — "
                "raise a PortalError subclass so the fault carries a "
                "Portal.* code and retryable classification",
                node,
                checker=self.name,
                symbol=symbol,
            )

    @staticmethod
    def _raise_target(node: ast.Raise, portal_classes: set[str]) -> str | None:
        """The offending exception name, or ``None`` when the raise is
        acceptable (portal error, re-raise, unresolvable variable)."""
        exc = node.exc
        if exc is None:
            return None  # bare re-raise
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = dotted_name(exc)
        if not name:
            return None  # dynamic construction: out of static reach
        head = name.split(".")[0]
        if head and head[0].islower() and head != "self":
            return None  # a variable being re-raised (e.g. `raise err`)
        for part in name.split("."):
            if part in portal_classes or part in ALLOWED_RAISES:
                return None
        return name
