"""REP5xx — resource hygiene: spans, admission tickets, and journals.

The chaos suites kill services mid-request; a span that is opened but not
closed on every path corrupts the trace tree, and an admission ticket
that is not released leaks lane capacity until the portal wedges.  The
rule: a handle acquired in a function must be released *crash-safely* in
that function — via ``with``, via ``finally``, or via the house
tail-end pattern (released in the except handler that re-raises *and* on
the normal path) — unless ownership is transferred out (returned, stored
on ``self``, yielded).

Acquire/release vocabulary::

    span   = <...>tracer.start(...)   ->  <...>tracer.end(span, ...)
    ticket = <...>.admit(...)         ->  <...>.release(ticket)

``Journal(...)`` handles are long-lived by design (they are handed to the
service that owns them), so only the outright *dropped* journal — built
as a bare expression statement, recoverable by nobody — is flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.astutil import dotted_name, iter_functions
from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    SourceModule,
    register_checker,
)

_COMPOUND = (ast.Try, ast.If, ast.For, ast.AsyncFor, ast.While, ast.With, ast.AsyncWith)
_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass
class _Acquired:
    var: str
    node: ast.AST
    kind: str  # "span" | "ticket" | "journal"
    release_attr: str
    releases: set[str] = field(default_factory=set)  # contexts seen
    transferred: bool = False


def _acquire_kind(call: ast.Call) -> tuple[str, str] | None:
    """(kind, release_attr) when *call* acquires a tracked handle."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "Journal":
            return ("journal", "close")
        return None
    if not isinstance(func, ast.Attribute):
        return None
    receiver = dotted_name(func.value)
    if func.attr == "start" and "tracer" in receiver:
        return ("span", "end")
    if func.attr == "admit":
        return ("ticket", "release")
    if func.attr == "Journal":
        return ("journal", "close")
    return None


@register_checker
class ResourceHygieneChecker(Checker):
    name = "hygiene"
    description = (
        "spans and admission tickets are released on every path, including "
        "crashes"
    )
    codes = {
        "REP501": "handle acquired without a crash-safe release path",
        "REP502": "handle acquired and immediately dropped",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.parsed():
            for func in iter_functions(module.tree):
                yield from self._check_function(module, func)

    def _check_function(
        self, module: SourceModule, func: ast.FunctionDef
    ) -> Iterable[Finding]:
        acquired: dict[str, _Acquired] = {}
        dropped: list[tuple[ast.AST, str]] = []
        self._visit(func.body, "normal", acquired, dropped)

        for node, kind in dropped:
            yield module.finding(
                "REP502",
                f"{kind} handle acquired and dropped — the return value "
                "must be kept so the handle can be released",
                node,
                checker=self.name,
                symbol=func.name,
            )
        for info in acquired.values():
            if info.kind == "journal":
                continue  # long-lived by design; only drops are flagged
            if info.transferred:
                continue
            if "finally" in info.releases:
                continue
            if "except" in info.releases and "normal" in info.releases:
                continue  # house tail-end pattern: handler re-raises, tail ends
            yield module.finding(
                "REP501",
                f"{info.kind} {info.var!r} is not released crash-safely: "
                f"no `with`, no `finally`, and no except+tail "
                f"`{info.release_attr}` pair — a fault here leaks the "
                f"{info.kind}",
                info.node,
                checker=self.name,
                symbol=func.name,
            )

    def _visit(
        self,
        stmts: list[ast.stmt],
        context: str,
        acquired: dict[str, _Acquired],
        dropped: list[tuple[ast.AST, str]],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, _NESTED_SCOPES):
                continue  # separate scope, checked on its own
            if isinstance(stmt, ast.Try):
                self._visit(stmt.body, context, acquired, dropped)
                for handler in stmt.handlers:
                    self._visit(handler.body, "except", acquired, dropped)
                self._visit(stmt.orelse, context, acquired, dropped)
                self._visit(stmt.finalbody, "finally", acquired, dropped)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._scan_expr(stmt.test, context, acquired)
                self._visit(stmt.body, context, acquired, dropped)
                self._visit(stmt.orelse, context, acquired, dropped)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, context, acquired)
                self._visit(stmt.body, context, acquired, dropped)
                self._visit(stmt.orelse, context, acquired, dropped)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                # handles acquired as context managers are safe by construction
                self._visit(stmt.body, context, acquired, dropped)
            else:
                self._scan_simple(stmt, context, acquired, dropped)

    def _scan_simple(
        self,
        stmt: ast.stmt,
        context: str,
        acquired: dict[str, _Acquired],
        dropped: list[tuple[ast.AST, str]],
    ) -> None:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            kind = _acquire_kind(stmt.value)
            if kind is not None:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    acquired[target.id] = _Acquired(
                        var=target.id,
                        node=stmt,
                        kind=kind[0],
                        release_attr=kind[1],
                    )
                # stored straight onto an attribute/subscript: transferred
                return
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            kind = _acquire_kind(stmt.value)
            if kind is not None:
                dropped.append((stmt, kind[0]))
                return
        # ownership transfers out of the function / onto an object
        if isinstance(stmt, ast.Return):
            if isinstance(stmt.value, ast.Name) and stmt.value.id in acquired:
                acquired[stmt.value.id].transferred = True
                return
        if isinstance(stmt, ast.Assign):
            if (
                isinstance(stmt.value, ast.Name)
                and stmt.value.id in acquired
                and any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in stmt.targets
                )
            ):
                acquired[stmt.value.id].transferred = True
                return
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, (ast.Yield, ast.YieldFrom)
        ):
            value = stmt.value.value
            if isinstance(value, ast.Name) and value.id in acquired:
                acquired[value.id].transferred = True
                return
        self._scan_expr(stmt, context, acquired)

    @staticmethod
    def _scan_expr(
        node: ast.AST, context: str, acquired: dict[str, _Acquired]
    ) -> None:
        """Record release calls (``<recv>.<release_attr>(var, ...)`` or
        ``var.<release_attr>()``) appearing anywhere under *node*."""
        for sub in ast.walk(node):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
            ):
                continue
            candidates = [a for a in sub.args if isinstance(a, ast.Name)]
            receiver = sub.func.value
            if isinstance(receiver, ast.Name):
                candidates.append(receiver)
            for arg in candidates:
                info = acquired.get(arg.id)
                if info is not None and sub.func.attr == info.release_attr:
                    info.releases.add(context)
