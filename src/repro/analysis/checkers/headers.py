"""REP4xx — SOAP header discipline: declared, sent, and consumed.

The portal's cross-cutting concerns all travel as SOAP headers (deadline
propagation, idempotency keys, principals for fair queuing, trace
context).  A header is a protocol element: it must be *declared* in the
shared registry (``repro.headers``) so tooling and operators can
enumerate the vocabulary, it must have an *encoder* (something builds the
``XmlElement``), and it must have a *consumer* (something matches the tag
on receipt).  A header failing any leg is either dead weight on every
message or an undocumented side channel.

The house idiom being checked, module by module::

    X_HEADER = QName(NS, "Name")           # declaration
    register_header(X_HEADER, ...)         # registration (REP401)
    XmlElement(X_HEADER, ...)              # encoder    (REP402)
    if entry.tag == X_HEADER: ...          # consumer   (REP403)
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import dotted_name
from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    SourceModule,
    register_checker,
)

HEADER_SUFFIX = "_HEADER"
QNAME_CONSTRUCTORS = {"QName", "qname"}
REGISTER_FUNCS = {"register_header"}
#: _RawHeader is the hot-path XmlElement subclass (prebuilt wire form) —
#: constructing one with the header constant is every bit an encoder
ELEMENT_CONSTRUCTORS = {"XmlElement", "_RawHeader"}

#: the registry module itself declares no headers of its own
EXEMPT_MODULES = {"repro.headers"}


@register_checker
class HeaderDisciplineChecker(Checker):
    name = "headers"
    description = (
        "every SOAP header constant is registered, has an encoder, and has "
        "a consumer"
    )
    codes = {
        "REP401": "header QName constant not registered via register_header()",
        "REP402": "registered header has no XmlElement encoder in its module",
        "REP403": "registered header has no tag-match consumer in its module",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.parsed():
            if module.module_name in EXEMPT_MODULES:
                continue
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterable[Finding]:
        constants = self._header_constants(module.tree)
        if not constants:
            return
        registered = self._names_passed_to(module.tree, REGISTER_FUNCS)
        encoded = self._names_passed_to(module.tree, ELEMENT_CONSTRUCTORS)
        consumed = self._names_compared(module.tree)
        for name, node in sorted(constants.items()):
            if name not in registered:
                yield module.finding(
                    "REP401",
                    f"header constant {name} is not registered — call "
                    f"register_header({name}, ...) so the header vocabulary "
                    "stays enumerable",
                    node,
                    checker=self.name,
                    symbol=name,
                )
                continue  # unregistered: encoder/consumer checks would pile on
            if name not in encoded:
                yield module.finding(
                    "REP402",
                    f"registered header {name} has no encoder — no "
                    f"XmlElement({name}, ...) construction in this module, "
                    "so nothing can ever send it",
                    node,
                    checker=self.name,
                    symbol=name,
                )
            if name not in consumed:
                yield module.finding(
                    "REP403",
                    f"registered header {name} has no consumer — nothing in "
                    "this module matches entry.tag against it, so senders "
                    "pay for a header nobody reads",
                    node,
                    checker=self.name,
                    symbol=name,
                )

    @staticmethod
    def _header_constants(tree: ast.Module) -> dict[str, ast.Assign]:
        """Module-level ``X_HEADER = QName(...)`` declarations."""
        out: dict[str, ast.Assign] = {}
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            ctor = dotted_name(node.value.func).split(".")[-1]
            if ctor not in QNAME_CONSTRUCTORS:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id.endswith(HEADER_SUFFIX)
                    and not target.id.startswith("_")
                ):
                    out[target.id] = node
        return out

    @staticmethod
    def _names_passed_to(tree: ast.Module, funcs: set[str]) -> set[str]:
        """Names appearing as arguments to calls of any function in *funcs*."""
        found: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func).split(".")[-1]
            if callee not in funcs:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name):
                    found.add(arg.id)
                elif isinstance(arg, ast.Attribute):
                    found.add(arg.attr)
        return found

    @staticmethod
    def _names_compared(tree: ast.Module) -> set[str]:
        """Names appearing on either side of an ``==``/``!=`` comparison
        (the decode idiom: ``entry.tag == X_HEADER``)."""
        found: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for side in [node.left, *node.comparators]:
                name = dotted_name(side).split(".")[-1]
                if name:
                    found.add(name)
        return found
