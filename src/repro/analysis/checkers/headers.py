"""REP4xx — SOAP header discipline: declared, sent, and consumed.

The portal's cross-cutting concerns all travel as SOAP headers (deadline
propagation, idempotency keys, principals for fair queuing, trace
context).  A header is a protocol element: it must be *declared* in the
shared registry (``repro.headers``) so tooling and operators can
enumerate the vocabulary, it must have an *encoder* (something builds the
``XmlElement``), and it must have a *consumer* (something matches the tag
on receipt).  A header failing any leg is either dead weight on every
message or an undocumented side channel.

The house idiom being checked::

    X_HEADER = QName(NS, "Name")           # declaration
    register_header(X_HEADER, ...)         # registration (REP401)
    XmlElement(X_HEADER, ...)              # encoder    (REP402)
    if entry.tag == X_HEADER: ...          # consumer   (REP403)

Encoder and consumer are resolved *project-wide* through the symbol
table: the deadline header is declared next to the resilience policy,
encoded by the SOAP client, and consumed by the SOAP server — three
modules, one header.  A use site reaches the declaration through a
``from`` import, a module alias, or a re-export, exactly like any other
symbol.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import dotted_name
from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    register_checker,
)

HEADER_SUFFIX = "_HEADER"
QNAME_CONSTRUCTORS = {"QName", "qname"}
REGISTER_FUNCS = {"register_header"}
#: _RawHeader is the hot-path XmlElement subclass (prebuilt wire form) —
#: constructing one with the header constant is every bit an encoder
ELEMENT_CONSTRUCTORS = {"XmlElement", "_RawHeader"}

#: the registry module itself declares no headers of its own
EXEMPT_MODULES = {"repro.headers"}


@register_checker
class HeaderDisciplineChecker(Checker):
    name = "headers"
    description = (
        "every SOAP header constant is registered, has an encoder, and has "
        "a consumer (resolved project-wide)"
    )
    codes = {
        "REP401": "header QName constant not registered via register_header()",
        "REP402": "registered header has no XmlElement encoder anywhere in the project",
        "REP403": "registered header has no tag-match consumer anywhere in the project",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        modules = graph.modules
        symbols = graph.symbols

        # declarations: (defining module, NAME) -> (SourceModule, node)
        decls: dict[tuple[str, str], tuple] = {}
        for module in project.parsed():
            if module.module_name in EXEMPT_MODULES:
                continue
            if modules.modules.get(module.module_name) != module.rel:
                continue
            for name, node in self._header_constants(module.tree).items():
                decls[(module.module_name, name)] = (module, node)

        registered: set[tuple[str, str]] = set()
        encoded: set[tuple[str, str]] = set()
        consumed: set[tuple[str, str]] = set()
        for module in project.parsed():
            mod = module.module_name
            if not mod or modules.modules.get(mod) != module.rel:
                continue
            imports = symbols.imports.get(mod, {})
            for token in self._tokens_passed_to(module.tree, REGISTER_FUNCS):
                key = self._resolve_token(mod, token, decls, imports, modules)
                if key is not None:
                    registered.add(key)
            for token in self._tokens_passed_to(
                module.tree, ELEMENT_CONSTRUCTORS
            ):
                key = self._resolve_token(mod, token, decls, imports, modules)
                if key is not None:
                    encoded.add(key)
            for token in self._tokens_compared(module.tree):
                key = self._resolve_token(mod, token, decls, imports, modules)
                if key is not None:
                    consumed.add(key)

        for mod, name in sorted(decls):
            module, node = decls[(mod, name)]
            if (mod, name) not in registered:
                yield module.finding(
                    "REP401",
                    f"header constant {name} is not registered — call "
                    f"register_header({name}, ...) so the header vocabulary "
                    "stays enumerable",
                    node,
                    checker=self.name,
                    symbol=name,
                )
                continue  # unregistered: encoder/consumer checks would pile on
            if (mod, name) not in encoded:
                yield module.finding(
                    "REP402",
                    f"registered header {name} has no encoder — no "
                    f"XmlElement({name}, ...) construction anywhere in the "
                    "project, so nothing can ever send it",
                    node,
                    checker=self.name,
                    symbol=name,
                )
            if (mod, name) not in consumed:
                yield module.finding(
                    "REP403",
                    f"registered header {name} has no consumer — nothing in "
                    "the project matches entry.tag against it, so senders "
                    "pay for a header nobody reads",
                    node,
                    checker=self.name,
                    symbol=name,
                )

    # -- use-site resolution ---------------------------------------------------

    @staticmethod
    def _resolve_token(
        mod: str,
        dotted: str,
        decls: dict,
        imports: dict[str, str],
        modules,
    ) -> tuple[str, str] | None:
        """Resolve a use-site token (``X_HEADER`` or ``alias.X_HEADER``)
        to the declaring ``(module, NAME)`` key.  Unresolvable tokens with
        a *unique* project-wide declaration still match — uses through
        receivers the symbol table cannot type (``self.policy.X_HEADER``)
        should not demote a real encoder to a false REP402."""
        head, _, rest = dotted.partition(".")
        name = dotted.split(".")[-1]
        if not name.endswith(HEADER_SUFFIX):
            return None
        if not rest:
            if (mod, head) in decls:
                return (mod, head)
            origin = imports.get(head)
            if origin is not None:
                owner = modules.resolve_module(origin)
                if owner is not None:
                    leftover = origin[len(owner):].lstrip(".")
                    if leftover and (owner, leftover) in decls:
                        return (owner, leftover)
        else:
            prefix = dotted[: len(dotted) - len(name) - 1]
            origin = imports.get(head)
            base = None
            if origin is not None:
                mid = prefix[len(head):].lstrip(".")
                base = modules.resolve_module(
                    origin + ("." + mid if mid else "")
                )
            if base is None:
                base = modules.resolve_module(prefix)
            if base is not None and (base, name) in decls:
                return (base, name)
        matches = [key for key in decls if key[1] == name]
        if len(matches) == 1:
            return matches[0]
        return None

    # -- syntax collectors -----------------------------------------------------

    @staticmethod
    def _header_constants(tree: ast.Module) -> dict[str, ast.Assign]:
        """Module-level ``X_HEADER = QName(...)`` declarations."""
        out: dict[str, ast.Assign] = {}
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            ctor = dotted_name(node.value.func).split(".")[-1]
            if ctor not in QNAME_CONSTRUCTORS:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id.endswith(HEADER_SUFFIX)
                    and not target.id.startswith("_")
                ):
                    out[target.id] = node
        return out

    @staticmethod
    def _tokens_passed_to(tree: ast.Module, funcs: set[str]) -> set[str]:
        """Dotted tokens appearing as arguments to calls of *funcs*."""
        found: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func).split(".")[-1]
            if callee not in funcs:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                token = dotted_name(arg)
                if token:
                    found.add(token)
        return found

    @staticmethod
    def _tokens_compared(tree: ast.Module) -> set[str]:
        """Dotted tokens on either side of an ``==``/``!=`` comparison
        (the decode idiom: ``entry.tag == X_HEADER``)."""
        found: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for side in [node.left, *node.comparators]:
                token = dotted_name(side)
                if token:
                    found.add(token)
        return found
