"""REP9xx — propagation: contracts that hold *across* call boundaries.

The portal is a chain of cooperating services; what must stay correct is
what flows between calls — classified faults, deadline/trace/principal
context, deterministic values, handle ownership.  PR 5's per-file rules
stopped at module boundaries; this family runs on the whole-program call
graph (:mod:`repro.analysis.graph`) and checks the flows end to end:

- **REP901** — interprocedural fault taxonomy.  A raise reachable from
  SOAP dispatch through *cross-module* helpers must still resolve to a
  classified ``PortalError`` (REP201 already covers the same-module
  closure; this rule reports exactly the delta).  A call site wrapped in
  ``try/except`` does not propagate reachability — wrapping foreign
  errors at the boundary is the discipline, and the wrapper takes the
  blame for what it re-raises.

- **REP902** — context propagation on outbound calls.  A
  dispatch-reachable function that issues outbound traffic on behalf of
  the inbound request must thread the request's context: raw
  ``HttpClient.post`` egress outside the SOAP/transport encoder layers
  must consult the inbound deadline (``current_inbound_deadline``), and
  constructing a ``SoapClient(..., traced=False)`` on a dispatch path
  severs the trace tree mid-request.

- **REP903** — determinism taint.  Wall-clock and unseeded-random values
  must not flow — through assignments, helper returns, or parameters,
  across modules — into durable records: journal appends, provenance
  blobs, replication versions.  (REP101–REP103 ban the sources outright;
  this rule catches the flow even where a source enters through a
  helper in another module.)

- **REP904** — cross-call resource hygiene.  A span/ticket handle
  acquired in one function and *returned* transfers ownership: every
  caller must release it crash-safely (``finally``, or the except+tail
  pair), release it through a delegate that does, or pass ownership on.
  REP501 checks the acquiring function; this rule checks the callers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.astutil import dotted_name, resolve_call_path
from repro.analysis.checkers.determinism import DATETIME_CALLS, TIME_CALLS
from repro.analysis.checkers.faults import (
    ALLOWED_RAISES,
    FAULT_MODULE,
    FAULT_ROOT,
    rep201_closure,
)
from repro.analysis.core import Checker, Finding, Project, register_checker
from repro.analysis.graph.dataflow import Dataflow, reachable

#: exceptions additionally permitted on *cross-module* dispatch paths:
#: TransportError is the modelled network-failure primitive — resilience
#: policy classifies it retryable and the SOAP boundary maps it already
PROPAGATION_ALLOWED = ALLOWED_RAISES | {"TransportError"}

#: modules whose raw HTTP use IS the encoder layer (they attach the
#: context headers everyone else must go through)
EGRESS_EXEMPT_PREFIXES = ("repro.soap", "repro.transport")

#: referencing any of these names marks a function as threading the
#: inbound budget into its egress payload by hand
DEADLINE_THREADERS = {"current_inbound_deadline", "deadline_payload"}

#: durable-record sinks: method name -> required receiver-name fragment
SINK_METHODS = {
    "append": "journal",
    "put_blob": "",
}

#: handle kinds and the release verb each owner owes
ACQUIRE_RELEASE = {"span": "end", "ticket": "release"}


def _full_filter(edge) -> bool:
    """Edges the interprocedural passes follow: everything except
    constructors (``__init__``-time raises are deployment-time), and
    except guarded *cross-module* call sites (wrap-at-the-boundary)."""
    if edge.kind == "ctor":
        return False
    if edge.guarded and edge.cross_module:
        return False
    return True


@register_checker
class PropagationChecker(Checker):
    name = "propagation"
    description = (
        "whole-program propagation: classified faults, request context, "
        "deterministic values, and handle ownership hold across call and "
        "module boundaries"
    )
    codes = {
        "REP901": (
            "raise of an unclassified exception reachable from SOAP "
            "dispatch through cross-module calls"
        ),
        "REP902": (
            "dispatch-reachable outbound call drops the inbound "
            "deadline/trace context"
        ),
        "REP903": (
            "wall-clock or unseeded-random value flows into a journal, "
            "provenance, or replication-version record"
        ),
        "REP904": (
            "handle acquired through a call is not released crash-safely "
            "by its new owner"
        ),
    }

    def check(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        calls = graph.calls
        by_module = {
            m.module_name: m
            for m in project.parsed()
            if graph.modules.modules.get(m.module_name) == m.rel
        }
        roots = calls.dispatch_roots(project)
        full = reachable(calls, roots, follow_guarded=True, edge_filter=_full_filter)
        covered = rep201_closure(project)
        portal = self._portal_classes(graph)

        yield from self._check_faults(calls, by_module, full, covered, portal)
        yield from self._check_context(calls, by_module, full)
        yield from _TaintAnalysis(calls).findings(by_module, self.name)
        yield from _OwnershipAnalysis(calls).findings(by_module, self.name)

    # -- REP901: interprocedural fault taxonomy --------------------------------

    @staticmethod
    def _portal_classes(graph) -> set[tuple[str, str]]:
        symbols = graph.symbols
        roots = {key for key in symbols.classes if key[1] == FAULT_ROOT}
        return symbols.subclasses_of(roots)

    def _check_faults(
        self, calls, by_module, full, covered, portal
    ) -> Iterable[Finding]:
        portal_names = {name for _mod, name in portal}
        for node_id in sorted(full):
            node = calls.nodes[node_id]
            if (node.module, node.cls, node.name) in covered:
                continue  # REP201's jurisdiction: the same-module closure
            module = by_module.get(node.module)
            if module is None:
                continue
            func = calls.funcs[node_id]
            symbol = f"{node.cls}.{node.name}" if node.cls else node.name
            for raise_node in (
                n for n in ast.walk(func) if isinstance(n, ast.Raise)
            ):
                verdict = self._raise_verdict(
                    calls.symbols, node.module, raise_node, portal, portal_names
                )
                if verdict is None:
                    continue
                yield module.finding(
                    "REP901",
                    f"{symbol} raises {verdict} on a cross-module "
                    "SOAP-dispatch path — classify it as a PortalError "
                    "subclass (or wrap the call at the service boundary) so "
                    "the fault crosses the wire with a Portal.* code",
                    raise_node,
                    checker=self.name,
                    symbol=symbol,
                )

    @staticmethod
    def _raise_verdict(
        symbols, module, raise_node, portal, portal_names
    ) -> str | None:
        exc = raise_node.exc
        if exc is None:
            return None  # bare re-raise
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = dotted_name(exc)
        if not name:
            return None  # dynamic construction: out of static reach
        head = name.split(".")[0]
        if head and head[0].islower() and head != "self":
            return None  # a variable being re-raised
        last = name.split(".")[-1]
        if "." in name and last and (last[0].islower() or last[0] == "_"):
            # ``raise self._deadline_error(...)`` — an exception *factory*;
            # what it returns is out of static reach
            return None
        for part in name.split("."):
            if part in portal_names or part in PROPAGATION_ALLOWED:
                return None
        resolved = symbols.resolve(module, head)
        if resolved is not None and resolved.kind == "class":
            if (resolved.module, resolved.name) in portal:
                return None
            if resolved.module.startswith(FAULT_MODULE):
                return None
        return name

    # -- REP902: context propagation on outbound calls -------------------------

    def _check_context(self, calls, by_module, full) -> Iterable[Finding]:
        symbols = calls.symbols
        for node_id in sorted(full):
            node = calls.nodes[node_id]
            module = by_module.get(node.module)
            if module is None:
                continue
            func = calls.funcs[node_id]
            symbol = f"{node.cls}.{node.name}" if node.cls else node.name
            exempt = node.module.startswith(EGRESS_EXEMPT_PREFIXES)
            threads_deadline = _references_any(func, DEADLINE_THREADERS)
            for call in (n for n in ast.walk(func) if isinstance(n, ast.Call)):
                if self._is_untraced_client(symbols, node.module, call):
                    yield module.finding(
                        "REP902",
                        f"{symbol} builds a SoapClient with traced=False on "
                        "a dispatch path — the outbound hop drops the "
                        "request's trace context, severing the span tree "
                        "mid-request",
                        call,
                        checker=self.name,
                        symbol=symbol,
                    )
                    continue
                if exempt or threads_deadline:
                    continue
                target = call.func
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "post"
                    and self._receiver_is_http(calls, node, target.value)
                ):
                    yield module.finding(
                        "REP902",
                        f"{symbol} posts over raw HTTP on a dispatch path "
                        "without threading the inbound context — attach the "
                        "deadline budget (current_inbound_deadline) and "
                        "trace context to the egress payload, or go through "
                        "the SOAP client",
                        call,
                        checker=self.name,
                        symbol=symbol,
                    )

    @staticmethod
    def _is_untraced_client(symbols, module, call: ast.Call) -> bool:
        dotted = dotted_name(call.func)
        if not dotted:
            return False
        resolved = symbols.resolve(module, dotted)
        if resolved is None or resolved.name != "SoapClient":
            return False
        for keyword in call.keywords:
            if keyword.arg == "traced" and isinstance(keyword.value, ast.Constant):
                return keyword.value.value is False
        return False

    @staticmethod
    def _receiver_is_http(calls, node, receiver) -> bool:
        """True when the ``.post`` receiver resolves to an ``HttpClient``
        through the call graph's receiver typing, or by the ``_http``
        naming idiom when typing comes up empty."""
        owner = None
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and node.cls
        ):
            owner = calls._attr_classes(node.module, node.cls).get(receiver.attr)
        elif isinstance(receiver, ast.Name):
            owner = calls._local_classes(
                node.module, calls.funcs[node.id]
            ).get(receiver.id)
        if owner is not None:
            return owner.name == "HttpClient"
        tail = dotted_name(receiver).split(".")[-1]
        return tail in {"http", "_http"}


def _references_any(func, names: set[str]) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id in names:
            return True
        if isinstance(node, ast.Attribute) and node.attr in names:
            return True
    return False


def _edge_summary(calls, node_id: str, call: ast.Call, summaries):
    """The settled summary of the callee behind *call*.

    Edges carry line numbers, not columns, so two calls on one line are
    ambiguous by line alone — prefer the edge whose callee's function
    name matches the call target, fall back to the first line match."""
    target = dotted_name(call.func).split(".")[-1]
    fallback = None
    for edge in calls.edges_from.get(node_id, []):
        if edge.line != call.lineno or edge.kind == "ctor":
            continue
        callee_name = edge.callee.split(":", 1)[-1].split(".")[-1]
        if callee_name == target:
            return summaries.get(edge.callee)
        if fallback is None:
            fallback = summaries.get(edge.callee)
    return fallback


# -- REP903: determinism taint -------------------------------------------------

#: taint label meaning "carries a nondeterministic value"; parameters
#: carry their own name as a label so flows can be attributed to callers
_SRC = "<src>"


def _is_source_call(call: ast.Call, aliases: dict[str, str]) -> bool:
    path = resolve_call_path(call.func, aliases)
    if not path:
        return False
    if path in TIME_CALLS or path in DATETIME_CALLS:
        return True
    if path == "random.Random":
        return not call.args and not call.keywords  # unseeded
    if path.startswith("random.") and path.count(".") == 1:
        return path.split(".", 1)[1] != "Random"
    return False


def _sink_of(call: ast.Call, symbols, module: str) -> str | None:
    """A human-readable label when *call* writes a durable record."""
    target = call.func
    if isinstance(target, ast.Attribute):
        pattern = SINK_METHODS.get(target.attr)
        if pattern is not None:
            receiver = dotted_name(target.value)
            if pattern in receiver.lower():
                return f"{receiver}.{target.attr}(...)"
    dotted = dotted_name(target)
    if dotted:
        resolved = symbols.resolve(module, dotted)
        if (
            resolved is not None
            and resolved.kind == "class"
            and resolved.name == "Version"
            and "replication" in resolved.module
        ):
            return "a replication Version(...)"
    return None


@dataclass(frozen=True)
class _TaintSummary:
    #: the function's return value carries a nondeterministic value
    returns_taint: bool = False
    #: parameter indexes whose value reaches a durable sink inside
    param_sinks: frozenset = frozenset()


class _TaintAnalysis:
    """Forward taint: sources -> variables -> helper returns/params ->
    durable sinks.  Summaries run to fixpoint over the call graph, then
    one final sweep with the settled summaries emits the findings."""

    def __init__(self, calls):
        self.calls = calls
        self.summaries = Dataflow(
            calls, self._transfer, initial=lambda _n: _TaintSummary()
        ).run()

    def findings(self, by_module, checker: str) -> Iterable[Finding]:
        for node_id in sorted(self.calls.nodes):
            node = self.calls.nodes[node_id]
            module = by_module.get(node.module)
            if module is None:
                continue
            symbol = f"{node.cls}.{node.name}" if node.cls else node.name
            seen: set[tuple] = set()
            for call, sink, via in self._sink_flows(node_id):
                key = (call.lineno, call.col_offset, sink, via)
                if key in seen:
                    continue
                seen.add(key)
                suffix = " via a helper parameter" if via else ""
                yield module.finding(
                    "REP903",
                    f"{symbol} writes a wall-clock or unseeded-random "
                    f"value into {sink}{suffix} — durable records must be "
                    "pure functions of (virtual clock, seeds) or recovery "
                    "replay diverges",
                    call,
                    checker=checker,
                    symbol=symbol,
                )

    # -- per-function abstract interpretation ----------------------------------

    @staticmethod
    def _params(func) -> list[str]:
        args = [a.arg for a in func.args.args if a.arg != "self"]
        return args + [a.arg for a in func.args.kwonlyargs]

    def _taint_env(self, node_id: str, summaries):
        """Returns ``taint_of``, an expression -> label-set evaluator over
        the settled variable environment.  Two sweeps over the statement
        tree approximate loops; the house style assigns before use, so
        two keep the pass linear and sufficient."""
        node = self.calls.nodes[node_id]
        func = self.calls.funcs[node_id]
        aliases = self.calls.symbols.imports.get(node.module, {})
        params = self._params(func)
        env: dict[str, set[str]] = {p: {p} for p in params}
        returns: set[str] = set()

        def taint_of(expr) -> set[str]:
            labels: set[str] = set()
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Name) and sub.id in env:
                    labels |= env[sub.id]
                elif isinstance(sub, ast.Call):
                    if _is_source_call(sub, aliases):
                        labels.add(_SRC)
                    else:
                        callee = self._callee_summary(node_id, sub, summaries)
                        if callee is not None and callee.returns_taint:
                            labels.add(_SRC)
            return labels

        def scan(stmts) -> None:
            for stmt in stmts:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if isinstance(stmt, ast.Assign):
                    labels = taint_of(stmt.value)
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            env[target.id] = env.get(target.id, set()) | labels
                elif (
                    isinstance(stmt, (ast.AnnAssign, ast.AugAssign))
                    and stmt.value is not None
                    and isinstance(stmt.target, ast.Name)
                ):
                    env[stmt.target.id] = env.get(
                        stmt.target.id, set()
                    ) | taint_of(stmt.value)
                elif isinstance(stmt, ast.Return) and stmt.value is not None:
                    returns.update(taint_of(stmt.value))
                else:
                    scan(
                        [
                            child
                            for child in ast.iter_child_nodes(stmt)
                            if isinstance(child, ast.stmt)
                        ]
                    )

        scan(func.body)
        scan(func.body)
        return taint_of, returns

    def _transfer(self, node_id: str, summaries) -> _TaintSummary:
        taint_of, returns = self._taint_env(node_id, summaries)
        node = self.calls.nodes[node_id]
        func = self.calls.funcs[node_id]
        params = self._params(func)
        param_sinks: set[int] = set()
        for call in (n for n in ast.walk(func) if isinstance(n, ast.Call)):
            sink = _sink_of(call, self.calls.symbols, node.module)
            callee = self._callee_summary(node_id, call, summaries)
            indirect = (
                callee.param_sinks if callee is not None else frozenset()
            )
            if sink is None and not indirect:
                continue
            exprs = list(call.args) + [kw.value for kw in call.keywords]
            for index, expr in enumerate(exprs):
                if sink is None and index not in indirect:
                    continue
                for label in taint_of(expr):
                    if label != _SRC and label in params:
                        param_sinks.add(params.index(label))
        return _TaintSummary(
            returns_taint=_SRC in returns,
            param_sinks=frozenset(param_sinks),
        )

    def _sink_flows(self, node_id: str):
        """(call, sink label, via-helper?) triples for tainted writes,
        evaluated against the settled summaries."""
        taint_of, _returns = self._taint_env(node_id, self.summaries)
        node = self.calls.nodes[node_id]
        func = self.calls.funcs[node_id]
        for call in (n for n in ast.walk(func) if isinstance(n, ast.Call)):
            exprs = list(call.args) + [kw.value for kw in call.keywords]
            sink = _sink_of(call, self.calls.symbols, node.module)
            if sink is not None:
                if any(_SRC in taint_of(expr) for expr in exprs):
                    yield call, sink, False
                continue
            callee = self._callee_summary(node_id, call, self.summaries)
            if callee is None or not callee.param_sinks:
                continue
            for index, expr in enumerate(call.args):
                if index in callee.param_sinks and _SRC in taint_of(expr):
                    helper = dotted_name(call.func) or "a helper"
                    yield call, f"a durable record through {helper}()", True
                    break

    def _callee_summary(self, node_id, call, summaries):
        return _edge_summary(self.calls, node_id, call, summaries)


# -- REP904: cross-call handle ownership ---------------------------------------


def _direct_acquire_kind(call: ast.Call) -> str | None:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "start" and "tracer" in dotted_name(func.value):
        return "span"
    if func.attr == "admit":
        return "ticket"
    return None


@dataclass(frozen=True)
class _OwnershipSummary:
    #: handle kind this function hands to its caller, or ""
    returns_kind: str = ""
    #: parameter indexes the function releases crash-safely
    releases_params: frozenset = frozenset()


class _OwnershipAnalysis:
    """Cross-call handle ownership: who acquires, who must release."""

    def __init__(self, calls):
        self.calls = calls
        self.summaries = Dataflow(
            calls, self._transfer, initial=lambda _n: _OwnershipSummary()
        ).run()

    def findings(self, by_module, checker: str) -> Iterable[Finding]:
        for node_id in sorted(self.calls.nodes):
            node = self.calls.nodes[node_id]
            module = by_module.get(node.module)
            if module is None:
                continue
            yield from self._check_caller(node_id, module, checker)

    @staticmethod
    def _params(func) -> list[str]:
        args = [a.arg for a in func.args.args if a.arg != "self"]
        return args + [a.arg for a in func.args.kwonlyargs]

    def _callee_summary(self, node_id, call, summaries):
        return _edge_summary(self.calls, node_id, call, summaries)

    def _acquire_kind(self, node_id, call, summaries) -> str | None:
        kind = _direct_acquire_kind(call)
        if kind is not None:
            return kind
        callee = self._callee_summary(node_id, call, summaries)
        if callee is not None and callee.returns_kind:
            return callee.returns_kind
        return None

    def _transfer(self, node_id: str, summaries) -> _OwnershipSummary:
        func = self.calls.funcs[node_id]
        params = self._params(func)
        returns_kind = ""
        acquired_vars: dict[str, str] = {}
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                kind = self._acquire_kind(node_id, stmt.value, summaries)
                if kind is not None:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            acquired_vars[target.id] = kind
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                if isinstance(stmt.value, ast.Call):
                    kind = self._acquire_kind(node_id, stmt.value, summaries)
                    if kind:
                        returns_kind = kind
                elif isinstance(stmt.value, ast.Name):
                    kind = acquired_vars.get(stmt.value.id)
                    if kind:
                        returns_kind = kind
        releases = frozenset(
            index
            for index, param in enumerate(params)
            if _crash_safe(_release_contexts(func.body, param, "normal"))
        )
        return _OwnershipSummary(
            returns_kind=returns_kind, releases_params=releases
        )

    def _check_caller(self, node_id: str, module, checker) -> Iterable[Finding]:
        node = self.calls.nodes[node_id]
        func = self.calls.funcs[node_id]
        symbol = f"{node.cls}.{node.name}" if node.cls else node.name
        # handles acquired *via calls* — REP501 owns direct acquires
        acquired: dict[str, tuple[str, str, ast.stmt]] = {}
        for stmt in ast.walk(func):
            if not (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Call)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                continue
            if _direct_acquire_kind(stmt.value) is not None:
                continue
            callee = self._callee_summary(node_id, stmt.value, self.summaries)
            if callee is not None and callee.returns_kind:
                acquired.setdefault(
                    stmt.targets[0].id,
                    (
                        callee.returns_kind,
                        dotted_name(stmt.value.func) or "a call",
                        stmt,
                    ),
                )
        for var, (kind, origin, stmt) in sorted(acquired.items()):
            if self._is_transferred(func, var):
                continue
            contexts = _release_contexts(func.body, var, "normal")
            contexts |= self._delegated_release_contexts(node_id, func, var)
            if _crash_safe(contexts):
                continue
            yield module.finding(
                "REP904",
                f"{symbol} receives a {kind} handle from {origin}() but "
                "never releases it crash-safely — ownership crossed the "
                f"call, so this function owes the "
                f"{ACQUIRE_RELEASE.get(kind, 'release')}: add a finally "
                "(or except+tail pair), or hand the handle on",
                stmt,
                checker=checker,
                symbol=symbol,
            )

    @staticmethod
    def _is_transferred(func, var: str) -> bool:
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Name):
                if stmt.value.id == var:
                    return True
            elif isinstance(stmt, ast.Assign):
                if isinstance(stmt.value, ast.Name) and stmt.value.id == var:
                    if any(
                        isinstance(t, (ast.Attribute, ast.Subscript))
                        for t in stmt.targets
                    ):
                        return True
            elif isinstance(stmt, (ast.Yield, ast.YieldFrom)):
                value = getattr(stmt, "value", None)
                if isinstance(value, ast.Name) and value.id == var:
                    return True
        return False

    def _delegated_release_contexts(self, node_id, func, var: str) -> set[str]:
        """Contexts in which *var* is passed to a callee that releases
        the corresponding parameter crash-safely."""
        contexts: set[str] = set()

        def visit(stmts, context) -> None:
            for stmt in stmts:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if isinstance(stmt, ast.Try):
                    visit(stmt.body, context)
                    for handler in stmt.handlers:
                        visit(handler.body, "except")
                    visit(stmt.orelse, context)
                    visit(stmt.finalbody, "finally")
                    continue
                for call in (
                    n for n in ast.walk(stmt) if isinstance(n, ast.Call)
                ):
                    callee = self._callee_summary(node_id, call, self.summaries)
                    if callee is None or not callee.releases_params:
                        continue
                    for index, arg in enumerate(call.args):
                        if (
                            isinstance(arg, ast.Name)
                            and arg.id == var
                            and index in callee.releases_params
                        ):
                            contexts.add(context)
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.stmt):
                        visit([child], context)

        visit(func.body, "normal")
        return contexts


def _crash_safe(contexts: set[str]) -> bool:
    return "finally" in contexts or {"except", "normal"} <= contexts


def _release_contexts(stmts, var: str, context: str) -> set[str]:
    """Contexts (normal/except/finally) in which *var* is released via
    ``<recv>.end(var)`` / ``<recv>.release(var)`` / ``var.release()``."""
    contexts: set[str] = set()
    release_attrs = set(ACQUIRE_RELEASE.values())

    def scan_expr(node, ctx) -> None:
        for sub in ast.walk(node):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in release_attrs
            ):
                continue
            candidates = [a for a in sub.args if isinstance(a, ast.Name)]
            if isinstance(sub.func.value, ast.Name):
                candidates.append(sub.func.value)
            if any(c.id == var for c in candidates):
                contexts.add(ctx)

    def visit(body, ctx) -> None:
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.Try):
                visit(stmt.body, ctx)
                for handler in stmt.handlers:
                    visit(handler.body, "except")
                visit(stmt.orelse, ctx)
                visit(stmt.finalbody, "finally")
                continue
            scan_expr(stmt, ctx)
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    visit([child], ctx)

    visit(stmts, context)
    return contexts
