"""REP6xx — simulation-testing oracles: registered and deterministic.

The simtest harness only runs the invariant oracles it finds in the
registry; an ``Oracle`` subclass someone forgets to decorate with
``@register_oracle`` silently checks nothing.  And an oracle is replayed
byte-identically from a seed, so its verdicts must be pure functions of
the simulated world: wall-clock reads or unseeded randomness inside an
oracle make a failing seed unreproducible — the one property the whole
harness exists to provide.

Vocabulary (shared with the determinism checker): ``TIME_CALLS``,
``DATETIME_CALLS`` and the seeded-``random.Random`` rule are imported
from :mod:`repro.analysis.checkers.determinism` so the two rule families
cannot drift apart.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import import_aliases, resolve_call_path
from repro.analysis.checkers.determinism import (
    DATETIME_CALLS,
    RANDOM_ALLOWED_ATTRS,
    TIME_CALLS,
)
from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    SourceModule,
    register_checker,
)

#: the registry decorator an oracle must carry (bare name or attribute:
#: ``@register_oracle`` / ``@oracles.register_oracle``)
REGISTRY_DECORATOR = "register_oracle"

#: root of the oracle hierarchy (matched by name, like subclasses_of does)
ORACLE_ROOT = "Oracle"


def _carries_registry_decorator(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == REGISTRY_DECORATOR:
            return True
        if isinstance(target, ast.Attribute) and target.attr == REGISTRY_DECORATOR:
            return True
    return False


@register_checker
class SimtestOracleChecker(Checker):
    name = "simtest"
    description = (
        "invariant oracles registered with the simtest registry and free "
        "of wall-clock or unseeded randomness"
    )
    codes = {
        "REP601": "concrete Oracle subclass not decorated with @register_oracle",
        "REP602": "wall-clock or unseeded randomness inside an invariant oracle",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        index = project.class_index()
        oracle_names = project.subclasses_of({ORACLE_ROOT}) - {ORACLE_ROOT}
        # a subclass that other oracles inherit from is an abstract stem
        # (like Oracle itself), not a checkable invariant: only leaves run
        stems = set()
        for name in oracle_names:
            _module, node = index[name]
            for base in node.bases:
                base_name = base.id if isinstance(base, ast.Name) else (
                    base.attr if isinstance(base, ast.Attribute) else ""
                )
                if base_name in oracle_names:
                    stems.add(base_name)
        for name in sorted(oracle_names):
            module, node = index[name]
            if name not in stems and not _carries_registry_decorator(node):
                yield module.finding(
                    "REP601",
                    f"oracle {name} is never registered — the harness only "
                    "runs oracles the @register_oracle registry knows about",
                    node,
                    checker=self.name,
                    symbol=name,
                )
            yield from self._check_determinism(module, node)

    def _check_determinism(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(cls):
            if not isinstance(node, ast.Call):
                continue
            path = resolve_call_path(node.func, aliases)
            if not path:
                continue
            if path in TIME_CALLS or path in DATETIME_CALLS:
                yield module.finding(
                    "REP602",
                    f"oracle {cls.name} calls {path}() — verdicts must be "
                    "a pure function of the simulated world; read "
                    "world.clock.now() instead",
                    node,
                    checker=self.name,
                    symbol=cls.name,
                )
            elif path == "random.Random":
                if not node.args and not node.keywords:
                    yield module.finding(
                        "REP602",
                        f"oracle {cls.name} constructs random.Random() "
                        "without a seed — derive the seed from the run seed",
                        node,
                        checker=self.name,
                        symbol=cls.name,
                    )
            elif path.startswith("random.") and path.count(".") == 1:
                if path.split(".", 1)[1] not in RANDOM_ALLOWED_ATTRS:
                    yield module.finding(
                        "REP602",
                        f"oracle {cls.name} calls {path}() on the shared "
                        "unseeded generator — a failing seed would not replay",
                        node,
                        checker=self.name,
                        symbol=cls.name,
                    )
