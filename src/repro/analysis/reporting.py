"""Rendering: human text and the ``repro.analysis.report`` JSON artifact.

The JSON artifact is the trendable interface for CI: a stable schema
(``repro.analysis.report/v1``) carrying every finding with its
fingerprint, the baseline split, and per-code counts, so future PRs can
diff finding counts across runs.
"""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.baseline import Baseline, BaselineResult
from repro.analysis.core import Finding, Severity
from repro.analysis.runner import AnalysisResult

REPORT_SCHEMA = "repro.analysis.report/v1"


def render_text(
    result: AnalysisResult,
    split: BaselineResult,
    baseline: Baseline | None,
) -> str:
    lines: list[str] = []
    for finding in split.new:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.code} [{finding.severity}] {finding.message}"
        )
    if split.baselined:
        lines.append(f"baselined: {len(split.baselined)} finding(s) suppressed")
    if split.stale:
        lines.append(
            f"stale baseline: {len(split.stale)} entr(ies) no longer match — "
            "re-run with --write-baseline to ratchet them out:"
        )
        for entry in split.stale:
            lines.append(
                f"  {entry.get('path', '?')}: {entry.get('code', '?')} "
                f"{entry.get('message', '')}"
            )
    if result.suppressed:
        lines.append(f"inline-suppressed: {len(result.suppressed)} finding(s)")
    errors = sum(1 for f in split.new if f.severity == Severity.ERROR)
    warnings = sum(1 for f in split.new if f.severity == Severity.WARNING)
    lines.append(
        f"{result.files_scanned} file(s) scanned, "
        f"{len(split.new)} new finding(s) ({errors} error, {warnings} warning)"
    )
    return "\n".join(lines)


def render_json(
    result: AnalysisResult,
    split: BaselineResult,
    baseline: Baseline | None,
    *,
    paths: list[str],
    exit_code: int,
) -> str:
    by_code = Counter(f.code for f in split.new)
    by_severity = Counter(f.severity for f in split.new)
    payload = {
        "tool": "repro.analysis",
        "schema": REPORT_SCHEMA,
        # sorted: the report is a function of the analyzed tree, not of
        # the order the paths were typed in
        "paths": sorted(paths),
        "files": result.files_scanned,
        "checkers": [
            {
                "name": checker.name,
                "description": checker.description,
                "codes": dict(checker.codes),
            }
            for checker in result.checkers
        ],
        "findings": [f.to_dict() for f in split.new],
        "counts": {
            "new": len(split.new),
            "baselined": len(split.baselined),
            "suppressed": len(result.suppressed),
            "stale_baseline": len(split.stale),
            "by_code": dict(sorted(by_code.items())),
            "by_severity": dict(sorted(by_severity.items())),
        },
        "baseline": {
            "path": str(baseline.path) if baseline and baseline.path else "",
            "entries": len(baseline) if baseline else 0,
            "stale": list(split.stale),
        },
        "exit_code": exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def exit_code_for(split: BaselineResult) -> int:
    """0 when every finding is baselined or suppressed; 1 on any new
    finding (warnings included: a warning the author neither fixed nor
    suppressed is still drift)."""
    return 1 if split.new else 0


def list_checkers_text(checkers) -> str:
    lines = []
    for checker in checkers:
        lines.append(f"{checker.name}: {checker.description}")
        for code, rule in sorted(checker.codes.items()):
            lines.append(f"  {code}  {rule}")
    return "\n".join(lines)


def split_without_baseline(findings: list[Finding]) -> BaselineResult:
    return BaselineResult(new=list(findings), baselined=[], stale=[])
