"""Core model of the analysis framework: findings, modules, checkers.

Everything here is pure stdlib (``ast`` + dataclasses): the analyzer never
imports the code under analysis, so it can lint a tree that does not even
import cleanly, and the CLI stays dependency-free for CI.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: framework-level codes (emitted by the runner, not by checkers)
UNUSED_SUPPRESSION = "REP001"
PARSE_ERROR = "REP002"

FRAMEWORK_CODES = {
    UNUSED_SUPPRESSION: "inline suppression matches no finding",
    PARSE_ERROR: "file failed to parse",
}


class Severity:
    """Finding severities (plain strings so they serialize trivially)."""

    ERROR = "error"
    WARNING = "warning"

    ORDER = {ERROR: 0, WARNING: 1}


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a coded, located, suppressible fact about the code."""

    code: str
    message: str
    path: str  # repo-relative posix path
    line: int
    col: int = 0
    severity: str = Severity.ERROR
    checker: str = ""
    symbol: str = ""  # enclosing class/function, when known

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline: moving a finding
        within its file does not churn the baseline, changing its message
        (or fixing it) does."""
        raw = f"{self.path}::{self.code}::{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code, self.message)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "checker": self.checker,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint(),
        }


#: matches the ``repro: ignore`` / ``repro: ignore[REP101, REP104]`` comment marker
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)


def parse_suppressions(text: str) -> dict[int, set[str]]:
    """Extract inline suppressions: {line -> set of codes} (empty set =
    blanket ``# repro: ignore`` suppressing every code on that line).

    Only genuine ``#`` comments count — the marker appearing inside a
    string or docstring (as it does in this very module) is prose, not a
    suppression, so the scan tokenizes rather than greps.
    """
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out  # unparseable files already surface as REP002
    for lineno, comment in comments:
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = set()
        else:
            out[lineno] = {c.strip() for c in codes.split(",") if c.strip()}
    return out


@dataclass
class SourceModule:
    """One parsed source file plus everything checkers need around it."""

    path: Path  # absolute
    rel: str  # repo-relative posix path (finding identity)
    text: str
    tree: ast.Module | None  # None when the file failed to parse
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: dotted module name when derivable (``src/repro/x/y.py`` -> ``repro.x.y``)
    module_name: str = ""

    @staticmethod
    def from_text(text: str, path: Path, rel: str) -> "SourceModule":
        try:
            tree = ast.parse(text)
        except SyntaxError:
            tree = None
        return SourceModule(
            path=path,
            rel=rel,
            text=text,
            tree=tree,
            suppressions=parse_suppressions(text),
            module_name=_module_name(rel),
        )

    def finding(
        self,
        code: str,
        message: str,
        node: ast.AST | None = None,
        *,
        severity: str = Severity.ERROR,
        checker: str = "",
        symbol: str = "",
        line: int = 0,
        col: int = 0,
    ) -> Finding:
        if node is not None:
            line = getattr(node, "lineno", line)
            col = getattr(node, "col_offset", col)
        return Finding(
            code=code,
            message=message,
            path=self.rel,
            line=line,
            col=col,
            severity=severity,
            checker=checker,
            symbol=symbol,
        )


def _module_name(rel: str) -> str:
    parts = Path(rel).with_suffix("").parts
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class Project:
    """The full analyzed set: cross-module checkers see everything at once."""

    modules: list[SourceModule]
    _class_index: dict[str, tuple[SourceModule, ast.ClassDef]] | None = None
    _graph: object | None = None

    def graph(self):
        """The whole-program :class:`~repro.analysis.graph.ProjectGraph`
        (module graph, symbol table, call graph), built once per run and
        shared by every graph-aware checker."""
        if self._graph is None:
            from repro.analysis.graph import ProjectGraph

            self._graph = ProjectGraph(self)
        return self._graph

    def parsed(self) -> Iterator[SourceModule]:
        for module in self.modules:
            if module.tree is not None:
                yield module

    def class_index(self) -> dict[str, tuple[SourceModule, ast.ClassDef]]:
        """Project-wide class name -> (module, ClassDef).  Names are assumed
        unique across the tree (true for this codebase); on a collision the
        first definition wins deterministically (module order)."""
        if self._class_index is None:
            index: dict[str, tuple[SourceModule, ast.ClassDef]] = {}
            for module in self.parsed():
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.ClassDef):
                        index.setdefault(node.name, (module, node))
            self._class_index = index
        return self._class_index

    def subclasses_of(self, roots: set[str]) -> set[str]:
        """Transitive closure of class names inheriting (by name) from any
        of *roots*, roots included."""
        index = self.class_index()
        known = set(roots)
        changed = True
        while changed:
            changed = False
            for name, (_module, node) in index.items():
                if name in known:
                    continue
                for base in node.bases:
                    base_name = base.id if isinstance(base, ast.Name) else (
                        base.attr if isinstance(base, ast.Attribute) else ""
                    )
                    if base_name in known:
                        known.add(name)
                        changed = True
                        break
        return known


class Checker:
    """Base class for one family of rules.

    Subclasses set ``name``, ``description`` and ``codes`` (code ->
    one-line rule description) and implement :meth:`check` over the whole
    project; per-module rules simply iterate ``project.modules``.
    """

    name: str = ""
    description: str = ""
    codes: dict[str, str] = {}

    def check(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Checker] = {}


def register_checker(checker_cls: type[Checker]) -> type[Checker]:
    """Class decorator registering a checker under its ``name``."""
    instance = checker_cls()
    if not instance.name:
        raise ValueError(f"checker {checker_cls.__name__} has no name")
    if instance.name in _REGISTRY:
        raise ValueError(f"duplicate checker name {instance.name!r}")
    _REGISTRY[instance.name] = instance
    return checker_cls


def all_checkers() -> list[Checker]:
    """Every registered checker, in registration order (stable: the
    checkers package imports its modules in a fixed order)."""
    import repro.analysis.checkers  # noqa: F401  (registration side effect)

    return list(_REGISTRY.values())


def get_checker(name: str) -> Checker:
    import repro.analysis.checkers  # noqa: F401

    if name not in _REGISTRY:
        raise KeyError(f"no checker named {name!r}")
    return _REGISTRY[name]
