"""Incremental analysis cache: content-hashed, import-graph invalidated.

The cache answers one question per file: *can this file's findings from
the previous run still be trusted?*  Three digests decide, strictest
first:

- **content hash** — the file's own bytes changed: invalid.
- **deps digest** — the content hashes of the file's *transitive import
  closure* (project modules only).  A body edit in anything the file
  imports — helpers whose summaries feed taint/ownership flows, base
  classes whose methods resolve into the call graph — lands here, so
  dependents of a changed file invalidate automatically without a
  reverse-dependency walk.
- **global digest** — everything whole-program findings can depend on
  *against* the import direction: the engine's own source, the active
  code table and ``--select``/``--ignore`` sets, and each file's
  *interface facts* (SOAP exposures, class shapes, header tokens,
  cross-module call tokens with their guard flags).  A dispatcher in
  module G reaching into module F makes F's REP901 findings depend on G
  even though F never imports G; G changing its dispatch surface or call
  set changes the global digest and invalidates everything.  Body edits
  that keep the interface facts stable stay file-local.

Over-invalidation is safe (the analysis re-runs); under-invalidation
would serve stale findings, so every fact a finding can depend on is
covered by one of the three digests.

The cache lives in ``.analysis-cache/findings.json`` (one deterministic
JSON document) and stores, per file, the digest key plus the finding and
suppressed-finding dicts exactly as reported — a warm run reassembles the
byte-identical report without running a single checker.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding, SourceModule

CACHE_SCHEMA = "repro.analysis.cache/v1"
CACHE_DIR = ".analysis-cache"
CACHE_FILE = "findings.json"


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def content_hash(module: SourceModule) -> str:
    return _sha(module.text)


# -- interface facts -----------------------------------------------------------


def interface_facts(module: SourceModule) -> str:
    """A digest of everything in *module* that findings in OTHER files can
    depend on against the import direction: the dispatch surface, class
    shapes (bases + method arities), header tokens, and the dotted names
    this module calls (with guard flags).  Sorted, so formatting-only
    edits that keep the facts stable do not invalidate the world."""
    if module.tree is None:
        return _sha(module.text)
    facts: set[str] = set()
    from repro.analysis.astutil import dotted_name, find_exposures

    for exposure in find_exposures(module.tree):
        facts.add(
            "expose:"
            f"{exposure.class_name}:{','.join(sorted(exposure.methods))}"
            f":{int(exposure.expose_all)}"
        )
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            bases = ",".join(sorted(filter(None, map(dotted_name, node.bases))))
            methods = ",".join(
                sorted(
                    f"{item.name}/{len(item.args.args)}"
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                )
            )
            facts.add(f"class:{node.name}({bases}):{methods}")
    guarded_lines = _guarded_call_lines(module.tree)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name:
                guard = int(node.lineno in guarded_lines)
                facts.add(f"call:{name}:{guard}")
        elif isinstance(node, ast.Name) and node.id.endswith("_HEADER"):
            facts.add(f"header:{node.id}")
        elif isinstance(node, ast.Attribute) and node.attr.endswith("_HEADER"):
            facts.add(f"header:{node.attr}")
    return _sha("\n".join(sorted(facts)))


def _guarded_call_lines(tree: ast.Module) -> set[int]:
    """Line numbers of calls under a ``try`` with handlers (the guard flag
    is part of the fact: wrapping a call flips REP901 reachability)."""
    guarded: set[int] = set()

    def visit(stmts, in_guard: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Try):
                visit(stmt.body, in_guard or bool(stmt.handlers))
                for handler in stmt.handlers:
                    visit(handler.body, in_guard)
                visit(stmt.orelse, in_guard)
                visit(stmt.finalbody, in_guard)
                continue
            if in_guard:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call):
                        guarded.add(sub.lineno)
            body = getattr(stmt, "body", None)
            if isinstance(body, list):
                visit([s for s in body if isinstance(s, ast.stmt)], in_guard)
                for attr in ("orelse", "finalbody"):
                    extra = getattr(stmt, attr, None)
                    if isinstance(extra, list):
                        visit(
                            [s for s in extra if isinstance(s, ast.stmt)],
                            in_guard,
                        )

    visit(tree.body, False)
    return guarded


# -- digests over the project --------------------------------------------------


def engine_digest() -> str:
    """Content hash of the analysis engine's own source: any change to a
    checker, the graph, or the runner invalidates every cached finding."""
    package = Path(__file__).resolve().parent
    parts: list[str] = []
    for path in sorted(package.rglob("*.py")):
        parts.append(f"{path.relative_to(package).as_posix()}:{_sha(path.read_text(encoding='utf-8'))}")
    return _sha("\n".join(parts))


def global_digest(
    modules: list[SourceModule],
    *,
    select: set[str] | None,
    ignore: set[str] | None,
    codes: dict[str, str],
) -> str:
    parts = [
        f"engine:{engine_digest()}",
        f"select:{','.join(sorted(select or ()))}",
        f"ignore:{','.join(sorted(ignore or ()))}",
        f"codes:{_sha(json.dumps(sorted(codes.items())))}",
    ]
    for module in sorted(modules, key=lambda m: m.rel):
        parts.append(f"facts:{module.rel}:{interface_facts(module)}")
    return _sha("\n".join(parts))


def deps_digests(modules: list[SourceModule], graph=None) -> dict[str, str]:
    """rel path -> digest of the content hashes of the module's transitive
    project import closure (the module itself excluded; its own content
    hash is checked separately).  *graph* is an optional prebuilt
    :class:`~repro.analysis.graph.modgraph.ModuleGraph` for the same
    module set."""
    from repro.analysis.core import Project

    project = Project(modules=list(modules))
    if graph is None:
        graph = project.graph().modules
    by_name = {
        m.module_name: m
        for m in project.parsed()
        if graph.modules.get(m.module_name) == m.rel
    }
    hashes = {m.rel: content_hash(m) for m in modules}
    out: dict[str, str] = {}
    for module in modules:
        closure = (
            graph.import_closure([module.module_name])
            if module.module_name in by_name
            else []
        )
        parts = []
        for dep in closure:
            dep_module = by_name.get(dep)
            if dep_module is not None and dep_module.rel != module.rel:
                parts.append(f"{dep}:{hashes[dep_module.rel]}")
        out[module.rel] = _sha("\n".join(sorted(parts)))
    return out


# -- the cache document --------------------------------------------------------


@dataclass
class CacheStats:
    """What the cache did for one run (reported via ``--stats``)."""

    enabled: bool = False
    hits: int = 0
    misses: int = 0
    fast_path: bool = False  # report assembled entirely from cache
    wrote: bool = False
    dirty: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def lines(self) -> list[str]:
        mode = "warm (fast path)" if self.fast_path else (
            "cold" if self.hits == 0 else "partial"
        )
        out = [
            f"cache: {mode}, {self.hits}/{self.total} file(s) valid "
            f"({self.hit_rate():.0%} hit rate)"
        ]
        if self.dirty and not self.fast_path:
            shown = ", ".join(self.dirty[:8])
            more = f" (+{len(self.dirty) - 8} more)" if len(self.dirty) > 8 else ""
            out.append(f"cache: dirty: {shown}{more}")
        if self.wrote:
            out.append("cache: refreshed")
        return out


@dataclass
class AnalysisCache:
    path: Path
    global_digest: str = ""
    #: rel path -> {"key": "<content>:<deps>", "findings": [...], "suppressed": [...]}
    files: dict[str, dict] = field(default_factory=dict)

    @staticmethod
    def load(path: Path) -> "AnalysisCache":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return AnalysisCache(path=path)
        if payload.get("schema") != CACHE_SCHEMA:
            return AnalysisCache(path=path)
        return AnalysisCache(
            path=path,
            global_digest=str(payload.get("global_digest", "")),
            files=dict(payload.get("files", {})),
        )

    def save(self) -> None:
        payload = {
            "schema": CACHE_SCHEMA,
            "global_digest": self.global_digest,
            "files": {rel: self.files[rel] for rel in sorted(self.files)},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # -- validity --------------------------------------------------------------

    def split_valid(
        self,
        modules: list[SourceModule],
        *,
        global_digest: str,
        deps: dict[str, str],
    ) -> tuple[dict[str, dict], list[str]]:
        """(valid entries by rel, dirty rel paths) for the module set.

        With a stale global digest *everything* is dirty; otherwise a file
        is valid when its content hash and deps digest both match."""
        if global_digest != self.global_digest:
            return {}, [m.rel for m in modules]
        valid: dict[str, dict] = {}
        dirty: list[str] = []
        for module in modules:
            entry = self.files.get(module.rel)
            key = f"{content_hash(module)}:{deps[module.rel]}"
            if entry is not None and entry.get("key") == key:
                valid[module.rel] = entry
            else:
                dirty.append(module.rel)
        return valid, dirty

    # -- population ------------------------------------------------------------

    def refresh(
        self,
        modules: list[SourceModule],
        findings: list[Finding],
        suppressed: list[Finding],
        *,
        global_digest: str,
        deps: dict[str, str],
    ) -> None:
        """Replace the whole document with this full run's results."""
        by_path: dict[str, dict] = {
            m.rel: {
                "key": f"{content_hash(m)}:{deps[m.rel]}",
                "findings": [],
                "suppressed": [],
            }
            for m in modules
        }
        for finding in findings:
            if finding.path in by_path:
                by_path[finding.path]["findings"].append(finding.to_dict())
        for finding in suppressed:
            if finding.path in by_path:
                by_path[finding.path]["suppressed"].append(finding.to_dict())
        self.global_digest = global_digest
        self.files = by_path


def finding_from_dict(payload: dict) -> Finding:
    """Rebuild a :class:`Finding` from its cached ``to_dict`` form."""
    return Finding(
        code=payload["code"],
        message=payload["message"],
        path=payload["path"],
        line=int(payload["line"]),
        col=int(payload.get("col", 0)),
        severity=payload.get("severity", "error"),
        checker=payload.get("checker", ""),
        symbol=payload.get("symbol", ""),
    )
