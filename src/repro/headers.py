"""The SOAP header registry: the portal's cross-cutting protocol vocabulary.

Deadlines, idempotency keys, principals, and trace context all travel as
SOAP headers.  Each one is a protocol element shared between independent
implementations, so — like fault codes in :mod:`repro.faults` — the set
must be enumerable: operators need to know what can appear in an
envelope, and the static analyzer (REP4xx) verifies that every header a
module defines is declared here, has an encoder, and has a consumer.

This module deliberately imports nothing but :class:`QName` so that the
subsystem modules defining headers (resilience, durability, loadmgmt,
observability) can register during their own import without creating a
cycle through :mod:`repro.soap`.

Usage, in the module that owns the header::

    X_HEADER = QName(MY_NS, "MyHeader")
    register_header(X_HEADER, description="what it carries", module=__name__)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmlutil.qname import QName


@dataclass(frozen=True)
class HeaderSpec:
    """One registered SOAP header: its qualified name, what it carries,
    and the module that owns encode/decode for it."""

    qname: QName
    description: str
    module: str

    @property
    def key(self) -> str:
        return self.qname.clark()


_HEADERS: dict[str, HeaderSpec] = {}


def register_header(
    qname: QName, *, description: str = "", module: str = ""
) -> QName:
    """Declare a SOAP header in the shared vocabulary.

    Idempotent for identical re-registration (modules may be re-imported);
    a conflicting re-registration of the same qualified name is a
    programming error and raises ``ValueError``.  Returns *qname* so the
    call can wrap the constant definition.
    """
    spec = HeaderSpec(qname=qname, description=description, module=module)
    existing = _HEADERS.get(spec.key)
    if existing is not None and existing != spec:
        raise ValueError(
            f"SOAP header {spec.key} already registered by "
            f"{existing.module or '<unknown>'} with a different spec"
        )
    _HEADERS[spec.key] = spec
    return qname


def registered_headers() -> list[HeaderSpec]:
    """Every declared header, in stable (key-sorted) order."""
    return [_HEADERS[key] for key in sorted(_HEADERS)]


def is_registered(qname: QName) -> bool:
    return qname.clark() in _HEADERS
