"""Tail-based trace sampling: buffer cheaply, decide at trace completion.

Always-on full tracing is the product tax at portal scale — but *head*
sampling (deciding at trace start) throws away exactly the traces worth
keeping, because whether a request erred, blew its deadline, or tripped a
breaker is only known at the end.  The :class:`TailSampler` therefore
buffers every trace's raw :class:`~repro.observability.tracer.Span`
objects (no dict materialization, no export) until the root span
completes, then runs a deterministic policy chain:

1. :class:`KeepErrorsPolicy` — any failed span keeps the whole trace;
2. :class:`KeepEventsPolicy` — deadline sheds, breaker trips, failovers,
   give-ups keep the trace even when the call eventually succeeded;
3. :class:`LatencyOutlierPolicy` — per-operation streaming quantile
   sketches keep the slow tail (p99 by default);
4. :class:`ProbabilisticPolicy` — a seeded hash of the trace id keeps a
   deterministic fraction of the boring rest.

Everything is seeded — two same-seed runs keep byte-identical trace sets
(the determinism the ``repro.analysis`` REP701 checker enforces).  RED
metrics are recorded *before* the sampler sees anything, so rates, error
counts, and latency histograms stay unsampled and exact; the sampler's
:meth:`~TailSampler.accounting` reconciles kept/dropped totals so nobody
mistakes the collector's contents for the full population.

The sampling decision context crosses the wire as the registered
``urn:gce:sampling`` SOAP header (:func:`sampling_header` /
:func:`sampling_from_headers`): a client under tail sampling stamps each
request with the mode so downstream hops know the trace is tail-buffered
and must not head-sample it away.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.headers import register_header
from repro.observability.context import _RawHeader
from repro.observability.metrics import QuantileSketch
from repro.observability.tracer import Span
from repro.xmlutil.element import XmlElement
from repro.xmlutil.qname import QName

SAMPLING_NS = "urn:gce:sampling"

#: the SOAP header entry carrying the caller's sampling mode
SAMPLING_HEADER = QName(SAMPLING_NS, "SamplingMode")
register_header(
    SAMPLING_HEADER,
    description="tail-sampling decision context: the caller's sampling mode",
    module=__name__,
)

def always_keep_events() -> frozenset[str]:
    """Event codes that always keep a trace, success or not.

    Computed lazily: the SOAP client imports this module for its header
    hot path, and ``repro.resilience`` imports the SOAP client, so the
    vocabulary cannot be pulled in at import time.
    """
    from repro.resilience import events as resilience_events

    return frozenset({
        resilience_events.BREAKER,
        resilience_events.DEADLINE,
        resilience_events.FAILOVER,
        resilience_events.GIVE_UP,
        resilience_events.SHED,
    })

#: one immutable header element per mode, built once — attached to every
#: outgoing request, so construction must not be per-call work
_MODE_ENTRIES: dict[str, XmlElement] = {}


def sampling_header(mode: str) -> XmlElement:
    """Encode the sampling mode as its SOAP header entry (cached).

    The raw prebuilt form: the header rides every outgoing request under
    tail sampling, so neither element construction nor generic
    serialization may be per-call work (modes are short tokens — no
    escaping needed).
    """
    entry = _MODE_ENTRIES.get(mode)
    if entry is None:
        raw = f'<s:SamplingMode xmlns:s="{SAMPLING_NS}" mode="{mode}"/>'
        entry = _RawHeader(SAMPLING_HEADER, raw, {"mode": mode})
        _MODE_ENTRIES[mode] = entry
    return entry


def sampling_from_headers(headers: list[XmlElement]) -> str:
    """The sampling mode riding *headers*, or ``""`` when absent."""
    for entry in headers:
        if entry.tag == SAMPLING_HEADER:
            return (entry.get("mode") or "").strip()
    return ""


class TraceBuffer:
    """One in-flight trace: raw spans in finish order, root when known."""

    __slots__ = ("trace_id", "spans", "root")

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        self.spans: list[Span] = []
        self.root: Span | None = None


class SamplingPolicy:
    """One link of the retention chain.

    ``decide`` returns ``True`` to keep the trace (the chain stops) or
    ``None`` for no opinion (the chain continues); a trace no policy
    claims is dropped.  Policies must be deterministic: any randomness
    must come from an explicit seed (REP701).
    """

    name = "policy"

    def decide(self, trace: TraceBuffer) -> bool | None:
        raise NotImplementedError


class KeepErrorsPolicy(SamplingPolicy):
    """Any span error keeps the whole trace — failures are never sampled
    away, so every alert exemplar and postmortem trace link resolves."""

    name = "errors"

    def decide(self, trace: TraceBuffer) -> bool | None:
        for span in trace.spans:
            if span.error:
                return True
        return None


class KeepEventsPolicy(SamplingPolicy):
    """Resilience events keep the trace even when the call succeeded.

    A request that tripped a breaker, shed under deadline pressure, failed
    over, or exhausted retries tells the capacity-planning story precisely
    *because* it recovered — dropping it would hide the near-miss.
    """

    name = "events"

    def __init__(self, codes: frozenset[str] | None = None):
        self.codes = codes if codes is not None else always_keep_events()

    def decide(self, trace: TraceBuffer) -> bool | None:
        for span in trace.spans:
            for event in span._events or ():
                if event.name in self.codes:
                    return True
        return None


class LatencyOutlierPolicy(SamplingPolicy):
    """Keep traces whose root latency sits in the slow tail of its
    operation.

    One streaming :class:`~repro.observability.metrics.QuantileSketch`
    per (service, root-operation) observes *every* root duration — the
    baseline is unsampled — and a trace at or above the sketch's current
    ``quantile`` estimate is kept.  The first ``min_baseline`` roots of an
    operation only feed the sketch (an empty baseline makes everything an
    outlier).
    """

    name = "latency-outlier"

    #: recompute the cached quantile threshold every this many roots — a
    #: full sketch scan per trace would dominate the decision cost, and
    #: the refresh schedule depends only on counts, so it is deterministic
    REFRESH_EVERY = 16

    def __init__(self, quantile: float = 0.99, min_baseline: int = 32):
        self.quantile = quantile
        self.min_baseline = min_baseline
        self.sketches: dict[tuple[str, str], QuantileSketch] = {}
        self._thresholds: dict[tuple[str, str], tuple[int, float]] = {}

    def decide(self, trace: TraceBuffer) -> bool | None:
        root = trace.root
        if root is None:
            return None
        key = (root.service or root.host, root.name)
        sketch = self.sketches.get(key)
        if sketch is None:
            sketch = self.sketches[key] = QuantileSketch()
        duration = root.end - root.start
        keep = False
        if sketch.count >= self.min_baseline:
            cached = self._thresholds.get(key)
            if cached is None or sketch.count >= cached[0]:
                cached = (
                    sketch.count + self.REFRESH_EVERY,
                    sketch.quantile(self.quantile),
                )
                self._thresholds[key] = cached
            keep = duration >= cached[1]
        sketch.record(duration)
        return True if keep else None


class ProbabilisticPolicy(SamplingPolicy):
    """Keep a seeded, deterministic fraction of the remaining traces.

    The coin is a splitmix64-style hash of (trace id, seed) — no
    ``random`` module, no per-process state — so the same seed keeps the
    same trace set on every run, and the decision is reproducible from
    the trace id alone.
    """

    name = "probabilistic"

    _M64 = 0xFFFFFFFFFFFFFFFF

    def __init__(self, rate: float = 0.05, seed: int = 0):
        self.rate = rate
        self.seed = seed & self._M64

    def _coin(self, trace_id: str) -> float:
        try:
            key = int(trace_id[:16] or "0", 16)
        except ValueError:
            key = sum(ord(ch) for ch in trace_id)
        v = (key ^ self.seed) & self._M64
        v = ((v ^ (v >> 30)) * 0xBF58476D1CE4E5B9) & self._M64
        v = ((v ^ (v >> 27)) * 0x94D049BB133111EB) & self._M64
        v ^= v >> 31
        return (v >> 11) / float(1 << 53)

    def decide(self, trace: TraceBuffer) -> bool | None:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return None
        return True if self._coin(trace.trace_id) < self.rate else None


def default_policies(
    *,
    seed: int = 0,
    rate: float = 0.05,
    outlier_quantile: float = 0.99,
    min_outlier_baseline: int = 32,
) -> list[SamplingPolicy]:
    """The standard chain: errors, resilience events, outliers, coin."""
    return [
        KeepErrorsPolicy(),
        KeepEventsPolicy(),
        LatencyOutlierPolicy(outlier_quantile, min_outlier_baseline),
        ProbabilisticPolicy(rate=rate, seed=seed),
    ]


class TailSampler:
    """Buffers whole traces and applies the policy chain at completion.

    Sits between :class:`~repro.observability.tracer.Tracer` and
    :class:`~repro.observability.collector.TraceCollector`: finished spans
    are *offered* here, and only kept traces are materialized (``to_dict``)
    and exported — dropped traces never pay the dict cost at all.  Spans
    of one trace export contiguously in finish order, so same-seed runs
    stay byte-identical.
    """

    mode = "tail"

    def __init__(
        self,
        *,
        seed: int = 0,
        rate: float = 0.05,
        outlier_quantile: float = 0.99,
        min_outlier_baseline: int = 32,
        max_buffered_traces: int = 512,
        policies: Iterable[SamplingPolicy] | None = None,
    ):
        self.policies = (
            list(policies)
            if policies is not None
            else default_policies(
                seed=seed,
                rate=rate,
                outlier_quantile=outlier_quantile,
                min_outlier_baseline=min_outlier_baseline,
            )
        )
        self.max_buffered_traces = max_buffered_traces
        #: the export target; bound by the runtime (anything with
        #: ``export(span_dict)``)
        self.collector = None
        self._buffers: dict[str, TraceBuffer] = {}
        self.kept_traces = 0
        self.dropped_traces = 0
        self.kept_spans = 0
        self.dropped_spans = 0
        self.overflow_decisions = 0
        self.kept_by_policy: dict[str, int] = {}
        #: sampling modes seen on inbound requests (the header consumer's
        #: tally — lets operators spot mixed-mode deployments)
        self.inbound_modes: dict[str, int] = {}

    def bind(self, collector) -> None:
        self.collector = collector

    # -- the hot path ---------------------------------------------------------------

    def offer(self, span: Span) -> None:
        """Buffer one finished span; a completing root decides its trace."""
        buf = self._buffers.get(span.trace_id)
        if buf is None:
            if len(self._buffers) >= self.max_buffered_traces:
                self._decide_oldest()
            buf = self._buffers[span.trace_id] = TraceBuffer(span.trace_id)
        buf.spans.append(span)
        if not span.parent_id:
            buf.root = span
            del self._buffers[span.trace_id]
            self._decide(buf)

    def note_inbound(self, mode: str) -> None:
        """Tally a sampling-mode header seen on an inbound request."""
        self.inbound_modes[mode] = self.inbound_modes.get(mode, 0) + 1

    # -- decisions ------------------------------------------------------------------

    def _decide_oldest(self) -> None:
        """Buffer overflow: decide the oldest incomplete trace early (its
        root, e.g. abandoned by a crash, may never arrive)."""
        trace_id = next(iter(self._buffers))
        buf = self._buffers.pop(trace_id)
        if buf.root is None and buf.spans:
            buf.root = buf.spans[0]
        self.overflow_decisions += 1
        self._decide(buf)

    def _decide(self, buf: TraceBuffer) -> None:
        for policy in self.policies:
            if policy.decide(buf):
                self._keep(buf, policy.name)
                return
        self.dropped_traces += 1
        self.dropped_spans += len(buf.spans)

    def _keep(self, buf: TraceBuffer, policy_name: str) -> None:
        self.kept_traces += 1
        self.kept_spans += len(buf.spans)
        self.kept_by_policy[policy_name] = (
            self.kept_by_policy.get(policy_name, 0) + 1
        )
        if self.collector is not None:
            for span in buf.spans:
                self.collector.export(span.to_dict())

    def flush(self) -> None:
        """Decide every still-buffered trace (end of run / uninstall).

        Incomplete traces — roots abandoned by crashes — go through the
        same chain, with the first buffered span standing in as root.
        """
        for trace_id in list(self._buffers):
            buf = self._buffers.pop(trace_id)
            if buf.root is None and buf.spans:
                buf.root = buf.spans[0]
            self._decide(buf)

    # -- accounting -----------------------------------------------------------------

    @property
    def buffered_traces(self) -> int:
        return len(self._buffers)

    def accounting(self) -> dict[str, Any]:
        """The sampled/dropped ledger: exact totals, per-policy keeps.

        RED metrics never pass through the sampler, so this is the one
        place the "collector holds N spans" number is reconciled against
        the true population.
        """
        return {
            "mode": self.mode,
            "kept_traces": self.kept_traces,
            "dropped_traces": self.dropped_traces,
            "kept_spans": self.kept_spans,
            "dropped_spans": self.dropped_spans,
            "buffered_traces": self.buffered_traces,
            "overflow_decisions": self.overflow_decisions,
            "kept_by_policy": {
                name: self.kept_by_policy[name]
                for name in sorted(self.kept_by_policy)
            },
            "inbound_modes": {
                mode: self.inbound_modes[mode]
                for mode in sorted(self.inbound_modes)
            },
        }
