"""Span recording on the virtual clock.

A *span* is one timed operation — a client call, a server dispatch, a
gatekeeper job submission — identified within its trace by a span id and
linked to its parent.  The :class:`Tracer` keeps an ambient stack of open
spans (the simulation is single-threaded, mirroring the idempotency
module's ``current_key`` slot) so nested work parents correctly without
threading a context object through every call signature.

Spans carry *events*: point-in-time annotations such as a retry, a breaker
trip, a failover, or a journal append, bridged in from the resilience log
and the durability layer so one trace tells the full retry-and-recover
story.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.faults import PortalError
from repro.observability.context import IdGenerator, TraceContext
from repro.transport.clock import SimClock

#: span kinds, in the OpenTelemetry sense
CLIENT = "client"
SERVER = "server"
INTERNAL = "internal"


@dataclass
class SpanEvent:
    """A point-in-time annotation on a span."""

    t: float
    name: str
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"t": self.t, "name": self.name, "attributes": dict(self.attributes)}


class Span:
    """One timed operation in a trace tree.

    A plain ``__slots__`` class on the hot path: every SOAP call opens
    three of these, so construction cost is product cost.  The attribute
    and event stores are created lazily — most spans carry neither, and a
    dict plus a list per span is measurable at wire rates.
    """

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "kind", "service",
        "host", "start", "end", "error", "_attributes", "_events",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str,
        name: str,
        kind: str,
        service: str,
        host: str,
        start: float,
        end: float = 0.0,
        error: str = "",
        attributes: dict[str, Any] | None = None,
        events: list[SpanEvent] | None = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.service = service
        self.host = host
        self.start = start
        self.end = end
        self.error = error
        self._attributes = attributes
        self._events = events

    @property
    def attributes(self) -> dict[str, Any]:
        if self._attributes is None:
            self._attributes = {}
        return self._attributes

    @property
    def events(self) -> list[SpanEvent]:
        if self._events is None:
            self._events = []
        return self._events

    def context(self) -> TraceContext:
        """The context a child call should propagate."""
        return TraceContext(self.trace_id, self.span_id)

    def add_event(self, t: float, name: str, /, **attributes: Any) -> None:
        # positional-only: bridged attribute dicts may themselves contain
        # "t" or "name" keys (the chaos log stamps a "t" detail)
        self.events.append(SpanEvent(t, name, attributes))

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "service": self.service,
            "host": self.host,
            "start": self.start,
            "end": self.end,
            "error": self.error,
            "attributes": dict(self._attributes) if self._attributes else {},
            "events": [e.to_dict() for e in self._events] if self._events else [],
        }


class Tracer:
    """Mints spans on the sim clock and exports finished ones.

    ``collector`` is anything with an ``export(span_dict)`` method — in
    practice the :class:`repro.observability.collector.TraceCollector`.

    With a ``sampler`` attached (:class:`repro.observability.sampling
    .TailSampler`), finished spans are *offered* instead of exported:
    the sampler buffers the raw ``Span`` objects per trace and only
    materializes the dict form for traces its policy chain keeps — the
    deferred half of the cheap span hot path.
    """

    def __init__(
        self, clock: SimClock, ids: IdGenerator, collector=None, *, sampler=None
    ):
        self.clock = clock
        self.ids = ids
        self.collector = collector
        self.sampler = sampler
        self._stack: list[Span] = []
        # bound fast paths: three spans per SOAP call makes even the
        # attribute-chain lookups (`self.ids.span_id`) per-call cost
        self._trace_id = ids.trace_id
        self._span_id = ids.span_id

    # -- ambient span ---------------------------------------------------------------

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- span lifecycle -------------------------------------------------------------

    def start(
        self,
        name: str,
        kind: str = INTERNAL,
        service: str = "",
        host: str = "",
        parent: TraceContext | None = None,
        attributes: dict[str, Any] | None = None,
    ) -> Span:
        """Open a span.  Parentage: explicit *parent* context beats the
        ambient current span; with neither, a fresh trace begins."""
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif self._stack:
            ambient = self._stack[-1]
            trace_id, parent_id = ambient.trace_id, ambient.span_id
        else:
            trace_id, parent_id = self._trace_id(), ""
        span = Span(
            trace_id,
            self._span_id(),
            parent_id,
            name,
            kind,
            service,
            host,
            self.clock.now,
            attributes=dict(attributes) if attributes else None,
        )
        self._stack.append(span)
        return span

    def end(self, span: Span, *, error: str = "") -> Span:
        """Close a span and hand it off — to the tail sampler when one is
        attached, else straight to the collector."""
        self._pop(span)
        span.end = self.clock.now
        span.error = error
        sampler = self.sampler
        if sampler is not None:
            sampler.offer(span)
        elif self.collector is not None:
            self.collector.export(span.to_dict())
        return span

    def abandon(self, span: Span) -> None:
        """Drop a span without exporting — the recording process crashed
        mid-operation (``ServiceCrash``), so no record survives."""
        self._pop(span)

    def _pop(self, span: Span) -> None:
        # spans close innermost-first in a single-threaded simulation, but a
        # crash can leave descendants open; unwind them too
        while self._stack:
            top = self._stack.pop()
            if top is span:
                return

    @contextmanager
    def span(
        self,
        name: str,
        kind: str = INTERNAL,
        service: str = "",
        host: str = "",
        parent: TraceContext | None = None,
        attributes: dict[str, Any] | None = None,
    ) -> Iterator[Span]:
        """Context-managed span: ends with the mapped error code on
        failure.

        Caller-side semantics: a :class:`ServiceCrash` bubbling up from a
        downstream host is an *observed* error here (the recording process
        is alive), so the span is exported like any other failure.  (Server
        dispatch exports its crash spans too — the collector is an
        omniscient in-sim observer, and dropping the span would orphan
        children exported before the crash.)
        """
        span = self.start(name, kind, service, host, parent, attributes)
        try:
            yield span
        except PortalError as exc:
            self.end(span, error=exc.code)
            raise
        except Exception as exc:
            self.end(span, error=type(exc).__name__)
            raise
        else:
            self.end(span)

    # -- event bridging -------------------------------------------------------------

    def annotate(self, name: str, /, **attributes: Any) -> bool:
        """Attach an event to the current span; returns False if no span is
        open (the event is simply dropped — tracing never fails the caller)."""
        span = self.current()
        if span is None:
            return False
        span.add_event(self.clock.now, name, **attributes)
        return True
