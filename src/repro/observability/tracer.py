"""Span recording on the virtual clock.

A *span* is one timed operation — a client call, a server dispatch, a
gatekeeper job submission — identified within its trace by a span id and
linked to its parent.  The :class:`Tracer` keeps an ambient stack of open
spans (the simulation is single-threaded, mirroring the idempotency
module's ``current_key`` slot) so nested work parents correctly without
threading a context object through every call signature.

Spans carry *events*: point-in-time annotations such as a retry, a breaker
trip, a failover, or a journal append, bridged in from the resilience log
and the durability layer so one trace tells the full retry-and-recover
story.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.faults import PortalError
from repro.observability.context import IdGenerator, TraceContext
from repro.transport.clock import SimClock

#: span kinds, in the OpenTelemetry sense
CLIENT = "client"
SERVER = "server"
INTERNAL = "internal"


@dataclass
class SpanEvent:
    """A point-in-time annotation on a span."""

    t: float
    name: str
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"t": self.t, "name": self.name, "attributes": dict(self.attributes)}


@dataclass
class Span:
    """One timed operation in a trace tree."""

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    kind: str
    service: str
    host: str
    start: float
    end: float = 0.0
    error: str = ""
    attributes: dict[str, Any] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)

    def context(self) -> TraceContext:
        """The context a child call should propagate."""
        return TraceContext(self.trace_id, self.span_id)

    def add_event(self, t: float, name: str, /, **attributes: Any) -> None:
        # positional-only: bridged attribute dicts may themselves contain
        # "t" or "name" keys (the chaos log stamps a "t" detail)
        self.events.append(SpanEvent(t, name, attributes))

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "service": self.service,
            "host": self.host,
            "start": self.start,
            "end": self.end,
            "error": self.error,
            "attributes": dict(self.attributes),
            "events": [event.to_dict() for event in self.events],
        }


class Tracer:
    """Mints spans on the sim clock and exports finished ones.

    ``collector`` is anything with an ``export(span_dict)`` method — in
    practice the :class:`repro.observability.collector.TraceCollector`.
    """

    def __init__(self, clock: SimClock, ids: IdGenerator, collector=None):
        self.clock = clock
        self.ids = ids
        self.collector = collector
        self._stack: list[Span] = []

    # -- ambient span ---------------------------------------------------------------

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- span lifecycle -------------------------------------------------------------

    def start(
        self,
        name: str,
        *,
        kind: str = INTERNAL,
        service: str = "",
        host: str = "",
        parent: TraceContext | None = None,
        attributes: dict[str, Any] | None = None,
    ) -> Span:
        """Open a span.  Parentage: explicit *parent* context beats the
        ambient current span; with neither, a fresh trace begins."""
        if parent is None:
            ambient = self.current()
            if ambient is not None:
                parent = ambient.context()
        if parent is None:
            trace_id, parent_id = self.ids.trace_id(), ""
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(
            trace_id=trace_id,
            span_id=self.ids.span_id(),
            parent_id=parent_id,
            name=name,
            kind=kind,
            service=service,
            host=host,
            start=self.clock.now,
            attributes=dict(attributes or {}),
        )
        self._stack.append(span)
        return span

    def end(self, span: Span, *, error: str = "") -> Span:
        """Close a span and export it to the collector."""
        self._pop(span)
        span.end = self.clock.now
        span.error = error
        if self.collector is not None:
            self.collector.export(span.to_dict())
        return span

    def abandon(self, span: Span) -> None:
        """Drop a span without exporting — the recording process crashed
        mid-operation (``ServiceCrash``), so no record survives."""
        self._pop(span)

    def _pop(self, span: Span) -> None:
        # spans close innermost-first in a single-threaded simulation, but a
        # crash can leave descendants open; unwind them too
        while self._stack:
            top = self._stack.pop()
            if top is span:
                return

    @contextmanager
    def span(
        self,
        name: str,
        *,
        kind: str = INTERNAL,
        service: str = "",
        host: str = "",
        parent: TraceContext | None = None,
        attributes: dict[str, Any] | None = None,
    ) -> Iterator[Span]:
        """Context-managed span: ends with the mapped error code on
        failure.

        Caller-side semantics: a :class:`ServiceCrash` bubbling up from a
        downstream host is an *observed* error here (the recording process
        is alive), so the span is exported like any other failure.  (Server
        dispatch exports its crash spans too — the collector is an
        omniscient in-sim observer, and dropping the span would orphan
        children exported before the crash.)
        """
        span = self.start(
            name, kind=kind, service=service, host=host,
            parent=parent, attributes=attributes,
        )
        try:
            yield span
        except PortalError as exc:
            self.end(span, error=exc.code)
            raise
        except Exception as exc:
            self.end(span, error=type(exc).__name__)
            raise
        else:
            self.end(span)

    # -- event bridging -------------------------------------------------------------

    def annotate(self, name: str, /, **attributes: Any) -> bool:
        """Attach an event to the current span; returns False if no span is
        open (the event is simply dropped — tracing never fails the caller)."""
        span = self.current()
        if span is None:
            return False
        span.add_event(self.clock.now, name, **attributes)
        return True
