"""RED metrics: Rate, Errors, Duration — per service, per method.

JClarens and Clarens (PAPERS.md) both report that per-method performance
monitoring of the service layer became essential once portals took real
traffic.  This module keeps the counters those papers describe: request
and error counts plus latency histograms with *fixed exponential buckets*,
so registries from different hosts (or different runs) merge exactly —
bucket boundaries never depend on the data.

Gauges carry last-written values for state that is a level, not a flow:
circuit-breaker state per host, scheduler queue depth per resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: histogram bucket upper bounds, seconds: 1ms .. ~524s, doubling
BUCKET_BOUNDS: tuple[float, ...] = tuple(0.001 * 2**i for i in range(20))

#: numeric encoding of breaker states for the gauge
BREAKER_STATE_VALUES = {"closed": 0, "half-open": 1, "open": 2}


@dataclass
class Histogram:
    """A latency histogram over the fixed exponential bounds.

    ``counts`` has one slot per bound plus an overflow slot; identical
    bounds everywhere make :meth:`merge` a plain vector add.
    """

    counts: list[int] = field(default_factory=lambda: [0] * (len(BUCKET_BOUNDS) + 1))
    total: float = 0.0
    count: int = 0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(BUCKET_BOUNDS):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def merge(self, other: "Histogram") -> None:
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.total += other.total
        self.count += other.count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the *q* quantile (0 < q <= 1)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                return BUCKET_BOUNDS[i] if i < len(BUCKET_BOUNDS) else float("inf")
        return BUCKET_BOUNDS[-1]

    def to_dict(self) -> dict[str, Any]:
        return {"counts": list(self.counts), "total": self.total, "count": self.count}


@dataclass
class RedSeries:
    """One (service, method, side) row of RED state."""

    requests: int = 0
    errors: int = 0
    latency: Histogram = field(default_factory=Histogram)

    def record(self, duration: float, error: bool) -> None:
        self.requests += 1
        if error:
            self.errors += 1
        self.latency.record(duration)

    def merge(self, other: "RedSeries") -> None:
        self.requests += other.requests
        self.errors += other.errors
        self.latency.merge(other.latency)


class MetricsRegistry:
    """All RED series, gauges, and event counters for one deployment."""

    def __init__(self):
        #: (service, method, side) -> RedSeries; side is "client" or "server"
        self.red: dict[tuple[str, str, str], RedSeries] = {}
        #: (name, label) -> last value
        self.gauges: dict[tuple[str, str], float] = {}
        #: event code -> count (resilience/durability stream totals)
        self.events: dict[str, int] = {}

    # -- recording ------------------------------------------------------------------

    def record_call(
        self, service: str, method: str, side: str, duration: float, error: bool
    ) -> None:
        key = (service, method, side)
        series = self.red.get(key)
        if series is None:
            series = self.red[key] = RedSeries()
        series.record(duration, error)

    def set_gauge(self, name: str, label: str, value: float) -> None:
        self.gauges[(name, label)] = float(value)

    def count_event(self, code: str) -> None:
        self.events[code] = self.events.get(code, 0) + 1

    def merge(self, other: "MetricsRegistry") -> None:
        for key, series in other.red.items():
            mine = self.red.get(key)
            if mine is None:
                mine = self.red[key] = RedSeries()
            mine.merge(series)
        self.gauges.update(other.gauges)
        for code, n in other.events.items():
            self.events[code] = self.events.get(code, 0) + n

    # -- views ----------------------------------------------------------------------

    def summary(self) -> dict[str, list[dict[str, Any]]]:
        """The wire-friendly summary the monitoring service returns."""
        red_rows = [
            {
                "service": service,
                "method": method,
                "side": side,
                "requests": series.requests,
                "errors": series.errors,
                "mean_ms": round(series.latency.mean * 1000, 3),
                "p50_ms": round(series.latency.percentile(0.50) * 1000, 3),
                "p95_ms": round(series.latency.percentile(0.95) * 1000, 3),
            }
            for (service, method, side), series in sorted(self.red.items())
        ]
        gauge_rows = [
            {"gauge": name, "label": label, "value": self.gauges[(name, label)]}
            for name, label in sorted(self.gauges)
        ]
        event_rows = [
            {"code": code, "count": self.events[code]} for code in sorted(self.events)
        ]
        return {"red": red_rows, "gauges": gauge_rows, "events": event_rows}

    def slowest(self, limit: int = 10) -> list[dict[str, Any]]:
        """Server-side operations ranked by mean latency (ties by name)."""
        rows = [
            row for row in self.summary()["red"] if row["side"] == "server"
        ]
        rows.sort(key=lambda r: (-r["mean_ms"], r["service"], r["method"]))
        return rows[: int(limit)] if limit and int(limit) > 0 else rows
