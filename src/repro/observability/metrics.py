"""RED metrics: Rate, Errors, Duration — per service, per method.

JClarens and Clarens (PAPERS.md) both report that per-method performance
monitoring of the service layer became essential once portals took real
traffic.  This module keeps the counters those papers describe: request
and error counts plus latency histograms with *fixed exponential buckets*,
so registries from different hosts (or different runs) merge exactly —
bucket boundaries never depend on the data.

Gauges carry last-written values for state that is a level, not a flow:
circuit-breaker state per host, scheduler queue depth per resource.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any

#: histogram bucket upper bounds, seconds: 1ms .. ~524s, doubling
BUCKET_BOUNDS: tuple[float, ...] = tuple(0.001 * 2**i for i in range(20))

#: numeric encoding of breaker states for the gauge
BREAKER_STATE_VALUES = {"closed": 0, "half-open": 1, "open": 2}


@dataclass
class Histogram:
    """A latency histogram over the fixed exponential bounds.

    ``counts`` has one slot per bound plus an overflow slot; identical
    bounds everywhere make :meth:`merge` a plain vector add.
    """

    counts: list[int] = field(default_factory=lambda: [0] * (len(BUCKET_BOUNDS) + 1))
    total: float = 0.0
    count: int = 0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        # first bound with value <= bound; past the last bound = overflow slot
        self.counts[bisect_left(BUCKET_BOUNDS, value)] += 1

    def merge(self, other: "Histogram") -> None:
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.total += other.total
        self.count += other.count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the *q* quantile (0 < q <= 1)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                return BUCKET_BOUNDS[i] if i < len(BUCKET_BOUNDS) else float("inf")
        return BUCKET_BOUNDS[-1]

    def count_at_most(self, threshold: float) -> int:
        """Samples recorded at or below *threshold* (bucket granularity).

        A sample is attributed to the first bound that fits it, so this is
        exact whenever *threshold* is one of :data:`BUCKET_BOUNDS` — the
        SLO engine's latency objectives snap thresholds to bounds for that
        reason.
        """
        return sum(self.counts[: bisect_right(BUCKET_BOUNDS, threshold)])

    def to_dict(self) -> dict[str, Any]:
        return {"counts": list(self.counts), "total": self.total, "count": self.count}


class QuantileSketch:
    """A streaming quantile estimator over *fixed* log-spaced buckets.

    Like :class:`Histogram`, the bucket geometry never depends on the data:
    bucket ``i`` covers ``(MIN * GAMMA**i, MIN * GAMMA**(i+1)]``, with
    ``GAMMA = 2**(1/8)`` (about 9% relative error per bucket).  Merging two
    sketches is a plain vector add, so merge is exactly associative and
    commutative — the property the tail sampler's per-operation p99
    tracking and the SLO window math both lean on.
    """

    __slots__ = ("counts", "count")

    #: lower edge of bucket 0: 1µs — everything smaller lands in bucket 0
    MIN = 1e-6
    #: buckets per doubling (GAMMA = 2 ** (1 / STEPS_PER_DOUBLING))
    STEPS_PER_DOUBLING = 8
    #: 256 buckets cover 1µs .. ~4.3e3 s before the overflow slot
    BUCKETS = 256

    def __init__(self):
        self.counts: list[int] = [0] * (self.BUCKETS + 1)
        self.count = 0

    def _index(self, value: float) -> int:
        if value <= self.MIN:
            return 0
        idx = int(math.log2(value / self.MIN) * self.STEPS_PER_DOUBLING) + 1
        return idx if idx <= self.BUCKETS else self.BUCKETS

    def record(self, value: float) -> None:
        self.count += 1
        self.counts[self._index(value)] += 1

    def merge(self, other: "QuantileSketch") -> None:
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the *q* quantile (0 < q <= 1)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                return self.MIN * 2 ** (i / self.STEPS_PER_DOUBLING)
        return self.MIN * 2 ** (self.BUCKETS / self.STEPS_PER_DOUBLING)

    def to_dict(self) -> dict[str, Any]:
        return {"count": self.count, "counts": list(self.counts)}


@dataclass
class RedSeries:
    """One (service, method, side) row of RED state."""

    requests: int = 0
    errors: int = 0
    latency: Histogram = field(default_factory=Histogram)

    def record(self, duration: float, error: bool) -> None:
        self.requests += 1
        if error:
            self.errors += 1
        self.latency.record(duration)

    def merge(self, other: "RedSeries") -> None:
        self.requests += other.requests
        self.errors += other.errors
        self.latency.merge(other.latency)


class MetricsRegistry:
    """All RED series, gauges, and event counters for one deployment."""

    def __init__(self):
        #: (service, method, side) -> RedSeries; side is "client" or "server"
        self.red: dict[tuple[str, str, str], RedSeries] = {}
        #: (name, label) -> last value
        self.gauges: dict[tuple[str, str], float] = {}
        #: event code -> count (resilience/durability stream totals)
        self.events: dict[str, int] = {}

    # -- recording ------------------------------------------------------------------

    def series(self, service: str, method: str, side: str) -> RedSeries:
        """The (create-on-first-use) series for one call site.

        Hot callers hold the returned series and record on it directly,
        skipping the key-tuple build and dict probe per call.
        """
        key = (service, method, side)
        series = self.red.get(key)
        if series is None:
            series = self.red[key] = RedSeries()
        return series

    def record_call(
        self, service: str, method: str, side: str, duration: float, error: bool
    ) -> None:
        self.series(service, method, side).record(duration, error)

    def set_gauge(self, name: str, label: str, value: float) -> None:
        self.gauges[(name, label)] = float(value)

    def count_event(self, code: str) -> None:
        self.events[code] = self.events.get(code, 0) + 1

    def merge(self, other: "MetricsRegistry") -> None:
        for key, series in other.red.items():
            mine = self.red.get(key)
            if mine is None:
                mine = self.red[key] = RedSeries()
            mine.merge(series)
        self.gauges.update(other.gauges)
        for code, n in other.events.items():
            self.events[code] = self.events.get(code, 0) + n

    # -- views ----------------------------------------------------------------------

    def summary(self) -> dict[str, list[dict[str, Any]]]:
        """The wire-friendly summary the monitoring service returns."""
        red_rows = [
            {
                "service": service,
                "method": method,
                "side": side,
                "requests": series.requests,
                "errors": series.errors,
                "mean_ms": round(series.latency.mean * 1000, 3),
                "p50_ms": round(series.latency.percentile(0.50) * 1000, 3),
                "p95_ms": round(series.latency.percentile(0.95) * 1000, 3),
            }
            for (service, method, side), series in sorted(self.red.items())
        ]
        gauge_rows = [
            {"gauge": name, "label": label, "value": self.gauges[(name, label)]}
            for name, label in sorted(self.gauges)
        ]
        event_rows = [
            {"code": code, "count": self.events[code]} for code in sorted(self.events)
        ]
        return {"red": red_rows, "gauges": gauge_rows, "events": event_rows}

    def slowest(self, limit: int = 10) -> list[dict[str, Any]]:
        """Server-side operations ranked by mean latency (ties by name).

        Iteration is over *sorted* operation keys and ranking uses the
        unrounded mean, so the order is a pure function of the recorded
        data — never of dict insertion order, and never of two distinct
        means rounding to the same displayed value.
        """
        ranked = sorted(
            (
                (key, series)
                for key, series in sorted(self.red.items())
                if key[2] == "server"
            ),
            key=lambda item: (-item[1].latency.mean, item[0][0], item[0][1]),
        )
        rows = [
            {
                "service": service,
                "method": method,
                "side": side,
                "requests": series.requests,
                "errors": series.errors,
                "mean_ms": round(series.latency.mean * 1000, 3),
                "p50_ms": round(series.latency.percentile(0.50) * 1000, 3),
                "p95_ms": round(series.latency.percentile(0.95) * 1000, 3),
            }
            for (service, method, side), series in ranked
        ]
        return rows[: int(limit)] if limit and int(limit) > 0 else rows
