"""Service-level objectives with multi-window burn-rate alerting.

RED counters say what the system *did*; an SLO says what it *promised*.
This module evaluates declarative per-operation objectives — availability
("99% of submits succeed") and latency ("99% of polls finish within the
threshold") — over sliding windows built from the already-mergeable RED
histograms, and raises alerts on the *burn rate*: how fast the error
budget is being spent, as a multiple of the rate that would exactly
exhaust it over the objective window.

Alerting is multi-window (the fast/slow pairs popularized by the Google
SRE workbook): an alert fires only when **both** windows of a pair exceed
the pair's factor — the slow window proves the problem is real, the fast
window proves it is *still happening* — which keeps pages off transient
blips while still catching fast burns quickly.  Each fired alert links
exemplar traces: kept traces (the tail sampler never drops errors) whose
spans violate the objective, so the page lands with the evidence attached.

Everything iterates in sorted order and runs on the virtual clock, so two
same-seed simulation runs produce byte-identical alert logs — the
``slo-burn`` simtest oracle depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.observability.metrics import MetricsRegistry

AVAILABILITY = "availability"
LATENCY = "latency"

_OBJECTIVES = (AVAILABILITY, LATENCY)


@dataclass(frozen=True)
class BurnRatePair:
    """One fast/slow alerting window pair.

    ``factor`` is the burn-rate threshold both windows must exceed: burn
    rate 1.0 spends the budget exactly over the objective window, so a
    factor of 6 over a short window means "at this rate the whole budget
    is gone in window/6".
    """

    slow: float
    fast: float
    factor: float


def default_pairs(window: float) -> tuple[BurnRatePair, ...]:
    """The standard pairs, scaled to the objective window: a fast burn
    page (factor 6) and a slow burn ticket (factor 2)."""
    return (
        BurnRatePair(slow=window / 3.0, fast=window / 12.0, factor=6.0),
        BurnRatePair(slow=window, fast=window / 4.0, factor=2.0),
    )


@dataclass(frozen=True)
class SLO:
    """One declarative objective over one server-side operation.

    ``window`` (seconds) and ``budget`` (allowed bad fraction, e.g. 0.01
    for 99%) are keyword-only and required — an SLO without both is a
    slogan, not an objective, and the REP702 checker rejects definitions
    that omit either.  ``threshold`` (seconds) is the latency objective's
    "fast enough" bound; it is snapped to histogram bucket math by the
    engine, so choose a value near a ``BUCKET_BOUNDS`` entry for exact
    accounting.
    """

    name: str
    service: str
    method: str
    objective: str = AVAILABILITY
    threshold: float = 1.0
    description: str = ""
    window: float = field(kw_only=True)
    budget: float = field(kw_only=True)

    def __post_init__(self):
        if self.objective not in _OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; have {_OBJECTIVES}"
            )
        if self.window <= 0:
            raise ValueError(f"SLO {self.name!r}: window must be positive")
        if not 0 < self.budget < 1:
            raise ValueError(
                f"SLO {self.name!r}: budget must be a fraction in (0, 1)"
            )

    @property
    def target(self) -> float:
        """The promised good fraction (1 - budget)."""
        return 1.0 - self.budget


class SloEngine:
    """Evaluates defined SLOs against the live metrics registry.

    Call :meth:`evaluate` periodically (the simtest harness does so every
    tick); each call snapshots the cumulative RED counters per SLO, stores
    the delta as one time bucket, recomputes burn rates over every
    window, and transitions alerts.  Window queries sum buckets in
    insertion order over sorted SLO names — no dict-order dependence
    anywhere, so reports are byte-identical across same-seed runs.
    """

    def __init__(
        self,
        clock,
        metrics: MetricsRegistry,
        *,
        collector=None,
        min_requests: int = 1,
        max_exemplars: int = 3,
    ):
        self.clock = clock
        self.metrics = metrics
        #: the trace collector exemplars are drawn from (kept traces only)
        self.collector = collector
        #: windows with fewer requests than this have no opinion (burn 0)
        self.min_requests = min_requests
        self.max_exemplars = max_exemplars
        self._slos: dict[str, SLO] = {}
        self._pairs: dict[str, tuple[BurnRatePair, ...]] = {}
        #: per-SLO cumulative (requests, bad) at the last evaluation
        self._snapshots: dict[str, tuple[int, int]] = {}
        #: (t, {slo name: (delta requests, delta bad)}) buckets, append-only
        self._deltas: list[tuple[float, dict[str, tuple[int, int]]]] = []
        #: currently-firing alerts by SLO name
        self.active: dict[str, dict[str, Any]] = {}
        #: every firing/resolved transition, in order
        self.alert_log: list[dict[str, Any]] = []
        self.evaluations = 0

    # -- definitions ----------------------------------------------------------------

    def define(
        self, slo: SLO, pairs: Iterable[BurnRatePair] | None = None
    ) -> SLO:
        """Register one objective (optionally with custom alert pairs)."""
        if slo.name in self._slos:
            raise ValueError(f"SLO {slo.name!r} is already defined")
        self._slos[slo.name] = slo
        self._pairs[slo.name] = (
            tuple(pairs) if pairs is not None else default_pairs(slo.window)
        )
        return slo

    def slos(self) -> list[SLO]:
        """Defined objectives, sorted by name."""
        return [self._slos[name] for name in sorted(self._slos)]

    # -- evaluation -----------------------------------------------------------------

    def _cumulative(self, slo: SLO) -> tuple[int, int]:
        """(requests, bad) totals for *slo*'s operation since boot."""
        series = self.metrics.red.get((slo.service, slo.method, "server"))
        if series is None:
            return 0, 0
        if slo.objective == AVAILABILITY:
            return series.requests, series.errors
        good = series.latency.count_at_most(slo.threshold)
        return series.requests, series.requests - good

    def evaluate(self) -> list[dict[str, Any]]:
        """Take one time bucket and transition alerts; returns the active
        alerts (sorted by SLO name)."""
        now = self.clock.now
        bucket: dict[str, tuple[int, int]] = {}
        for name in sorted(self._slos):
            requests, bad = self._cumulative(self._slos[name])
            prev_requests, prev_bad = self._snapshots.get(name, (0, 0))
            self._snapshots[name] = (requests, bad)
            bucket[name] = (requests - prev_requests, bad - prev_bad)
        self._deltas.append((now, bucket))
        self._trim(now)
        self._transition(now)
        self.evaluations += 1
        return self.alerts()

    def _trim(self, now: float) -> None:
        horizon = max(
            (
                max(slo.window, *(p.slow for p in self._pairs[name]))
                for name, slo in sorted(self._slos.items())
            ),
            default=0.0,
        )
        cutoff = now - horizon
        drop = 0
        for t, _ in self._deltas:
            if t > cutoff:
                break
            drop += 1
        if drop:
            del self._deltas[:drop]

    def window_totals(self, name: str, window: float) -> tuple[int, int]:
        """(requests, bad) summed over buckets newer than now - window."""
        cutoff = self.clock.now - window
        requests = bad = 0
        for t, bucket in self._deltas:
            if t <= cutoff:
                continue
            delta = bucket.get(name)
            if delta is not None:
                requests += delta[0]
                bad += delta[1]
        return requests, bad

    def burn_rate(self, name: str, window: float) -> float:
        """Budget spend rate over *window*, as a multiple of sustainable.

        1.0 means the bad fraction equals the budget exactly; below
        :attr:`min_requests` observed requests the window has no opinion.
        """
        slo = self._slos[name]
        requests, bad = self.window_totals(name, window)
        if requests < self.min_requests:
            return 0.0
        return (bad / requests) / slo.budget

    def firing_pair(
        self, name: str
    ) -> tuple[BurnRatePair, float, float] | None:
        """The first alert pair both of whose windows exceed its factor,
        with the two burn rates — or ``None`` when the SLO is healthy."""
        for pair in self._pairs[name]:
            slow_burn = self.burn_rate(name, pair.slow)
            if slow_burn < pair.factor:
                continue
            fast_burn = self.burn_rate(name, pair.fast)
            if fast_burn >= pair.factor:
                return pair, slow_burn, fast_burn
        return None

    def _transition(self, now: float) -> None:
        for name in sorted(self._slos):
            firing = self.firing_pair(name)
            held = self.active.get(name)
            if firing is not None and held is None:
                pair, slow_burn, fast_burn = firing
                slo = self._slos[name]
                alert = {
                    "slo": name,
                    "service": slo.service,
                    "method": slo.method,
                    "objective": slo.objective,
                    "since": now,
                    "factor": pair.factor,
                    "slow_window": pair.slow,
                    "fast_window": pair.fast,
                    "slow_burn": round(slow_burn, 6),
                    "fast_burn": round(fast_burn, 6),
                    "exemplars": self._exemplars(slo),
                }
                self.active[name] = alert
                self.alert_log.append(dict(alert, t=now, state="firing"))
            elif firing is not None:
                pair, slow_burn, fast_burn = firing
                held.update(
                    factor=pair.factor,
                    slow_window=pair.slow,
                    fast_window=pair.fast,
                    slow_burn=round(slow_burn, 6),
                    fast_burn=round(fast_burn, 6),
                )
            elif held is not None:
                del self.active[name]
                self.alert_log.append({
                    "t": now,
                    "state": "resolved",
                    "slo": name,
                    "since": held["since"],
                    "duration": round(now - held["since"], 6),
                })

    def _exemplars(self, slo: SLO) -> list[str]:
        """Trace ids of recent kept traces violating *slo*'s objective.

        Scanned newest-first from the collector; errors are never sampled
        away, so an availability breach always has evidence to link.
        """
        if self.collector is None:
            return []
        found: list[str] = []
        for span in reversed(self.collector.spans()):
            if span.get("kind") != "server":
                continue
            if span.get("service") != slo.service:
                continue
            if span.get("name") != slo.method:
                continue
            if slo.objective == AVAILABILITY:
                if not span.get("error"):
                    continue
            elif span.get("end", 0.0) - span.get("start", 0.0) <= slo.threshold:
                continue
            trace_id = span.get("trace_id", "")
            if trace_id and trace_id not in found:
                found.append(trace_id)
                if len(found) >= self.max_exemplars:
                    break
        return found

    def exemplars_for(self, name: str) -> list[str]:
        """The exemplar trace ids the named SLO would link right now —
        what :meth:`evaluate` attaches when an alert fires this instant.
        The ``slo-burn`` oracle uses it to hold fired alerts to their
        evidence."""
        return self._exemplars(self._slos[name])

    # -- views ----------------------------------------------------------------------

    def slo_summary(self) -> list[dict[str, Any]]:
        """One wire-friendly row per objective, sorted by name."""
        rows = []
        for name in sorted(self._slos):
            slo = self._slos[name]
            requests, bad = self.window_totals(name, slo.window)
            good_fraction = 1.0 - (bad / requests) if requests else 1.0
            rows.append({
                "slo": name,
                "service": slo.service,
                "method": slo.method,
                "objective": slo.objective,
                "window_s": slo.window,
                "budget": slo.budget,
                "target": round(slo.target, 6),
                "requests": requests,
                "bad": bad,
                "good_fraction": round(good_fraction, 6),
                "burn_rate": round(self.burn_rate(name, slo.window), 6),
                "state": "firing" if name in self.active else "ok",
            })
        return rows

    def alerts(self, active_only: bool = True) -> list[dict[str, Any]]:
        """Firing alerts (sorted by SLO name), or the full transition log."""
        if active_only:
            return [dict(self.active[name]) for name in sorted(self.active)]
        return [dict(entry) for entry in self.alert_log]


def default_slos(
    *, window: float = 12.0, budget: float = 0.1, latency_threshold: float = 4.096
) -> tuple[SLO, ...]:
    """The portal deployment's standard objectives.

    Scaled to the simulation's timebase (1s ticks): availability and
    latency promises on the job-submission path.  The latency threshold
    defaults to a histogram bucket bound (4.096s) so good/bad accounting
    is exact.
    """
    return (
        SLO(
            "globusrun-submit-availability",
            service="Globusrun",
            method="submit_async",
            objective=AVAILABILITY,
            description="async job submissions succeed",
            window=window,
            budget=budget,
        ),
        SLO(
            "globusrun-result-latency",
            service="Globusrun",
            method="result",
            objective=LATENCY,
            threshold=latency_threshold,
            description="job results return fast enough",
            window=window,
            budget=budget,
        ),
    )
