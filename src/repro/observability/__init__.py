"""Distributed tracing + metrics for the portal's web-services stack.

See ``docs/OBSERVABILITY.md``.  The layer is opt-in: nothing is traced
until :meth:`Observability.install` hangs a bundle on the virtual
network, after which every SOAP client/server and GRAM hop instruments
itself through the same header-provider and dispatch hooks the security
and resilience layers already use.
"""

from repro.observability.collector import (
    TraceCollector,
    TraceCollectorService,
    created_collectors,
    deploy_trace_collector,
)
from repro.observability.context import (
    TRACE_HEADER,
    TRACE_NS,
    IdGenerator,
    TraceContext,
)
from repro.observability.metrics import (
    BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    RedSeries,
)
from repro.observability.runtime import Observability
from repro.observability.tracer import Span, SpanEvent, Tracer

__all__ = [
    "BUCKET_BOUNDS",
    "Histogram",
    "IdGenerator",
    "MetricsRegistry",
    "Observability",
    "RedSeries",
    "Span",
    "SpanEvent",
    "TRACE_HEADER",
    "TRACE_NS",
    "TraceCollector",
    "TraceCollectorService",
    "TraceContext",
    "Tracer",
    "created_collectors",
    "deploy_trace_collector",
]
