"""Distributed tracing + metrics for the portal's web-services stack.

See ``docs/OBSERVABILITY.md``.  The layer is opt-in: nothing is traced
until :meth:`Observability.install` hangs a bundle on the virtual
network, after which every SOAP client/server and GRAM hop instruments
itself through the same header-provider and dispatch hooks the security
and resilience layers already use.
"""

from repro.observability.collector import (
    TraceCollector,
    TraceCollectorService,
    created_collectors,
    deploy_trace_collector,
)
from repro.observability.context import (
    TRACE_HEADER,
    TRACE_NS,
    TRACEPARENT,
    IdGenerator,
    TraceContext,
    traceparent,
)
from repro.observability.metrics import (
    BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    RedSeries,
)
from repro.observability.runtime import Observability
from repro.observability.sampling import (
    SAMPLING_HEADER,
    SAMPLING_NS,
    KeepErrorsPolicy,
    KeepEventsPolicy,
    LatencyOutlierPolicy,
    ProbabilisticPolicy,
    SamplingPolicy,
    TailSampler,
    default_policies,
    sampling_from_headers,
    sampling_header,
)
from repro.observability.slo import (
    SLO,
    BurnRatePair,
    SloEngine,
    default_pairs,
    default_slos,
)
from repro.observability.tracer import Span, SpanEvent, Tracer

__all__ = [
    "BUCKET_BOUNDS",
    "BurnRatePair",
    "Histogram",
    "IdGenerator",
    "KeepErrorsPolicy",
    "KeepEventsPolicy",
    "LatencyOutlierPolicy",
    "MetricsRegistry",
    "Observability",
    "ProbabilisticPolicy",
    "QuantileSketch",
    "RedSeries",
    "SAMPLING_HEADER",
    "SAMPLING_NS",
    "SLO",
    "SamplingPolicy",
    "SloEngine",
    "Span",
    "SpanEvent",
    "TRACE_HEADER",
    "TRACE_NS",
    "TRACEPARENT",
    "TailSampler",
    "TraceCollector",
    "TraceCollectorService",
    "TraceContext",
    "Tracer",
    "created_collectors",
    "default_pairs",
    "default_policies",
    "default_slos",
    "deploy_trace_collector",
    "sampling_from_headers",
    "sampling_header",
    "traceparent",
]
