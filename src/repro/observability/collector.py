"""Trace collection: in-memory store, SOAP face, and export.

Finished spans are exported (as plain dicts) to a :class:`TraceCollector`.
In a real deployment each host would batch spans to a collector service
over the network; here every tracer shares one in-process collector, and
the *service* face (:class:`TraceCollectorService`) exposes the same store
over SOAP so portlets and remote tools read traces the same way they read
job status — through a WSDL-described web service, per the paper's
"everything is a service" architecture.

``created_collectors()`` mirrors ``repro.durability.journal
.created_journals()``: the CI trace job uses it to export every trace the
test suite produced for offline re-verification by
``python -m repro.observability.report --check``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.transport.network import VirtualNetwork

TRACE_COLLECTOR_NAMESPACE = "urn:gce:trace-collector"

#: every collector constructed this process, for the CI export hook
_CREATED: list["TraceCollector"] = []


def created_collectors() -> list["TraceCollector"]:
    """All collectors constructed so far (test/CI export hook)."""
    return list(_CREATED)


class TraceCollector:
    """An append-only store of finished spans, grouped into traces.

    Spans arrive in the order tracers finish them — deterministic under the
    sim clock — and every view iterates in that insertion order, so two
    same-seed runs export byte-identical JSON.

    ``capacity`` (spans; 0 = unbounded, the seed behavior) turns the store
    into a ring: when an export pushes the span count past capacity, the
    *oldest whole traces* are evicted — never individual spans, which
    would leave orphaned subtrees — until the store fits again.  Long
    soaks and 200-seed simtest sweeps stay memory-bounded; the eviction
    counters feed a gauge so a dashboard can tell "quiet system" from
    "ring ate the history".
    """

    def __init__(self, capacity: int = 0):
        self.capacity = int(capacity)
        self._spans: list[dict[str, Any]] = []
        self.trace_evictions = 0
        self.spans_evicted = 0
        #: called with this collector after each eviction pass (the
        #: runtime wires eviction gauges through it)
        self.on_evict = None
        _CREATED.append(self)

    def export(self, span: dict[str, Any]) -> None:
        self._spans.append(span)
        if self.capacity and len(self._spans) > self.capacity:
            self._evict(span["trace_id"])

    def _evict(self, current_trace: str) -> None:
        evicted = False
        while len(self._spans) > self.capacity:
            victim = self._spans[0]["trace_id"]
            if victim == current_trace:
                # never evict the trace still being exported — its later
                # spans would arrive orphaned; tolerate transient overflow
                break
            before = len(self._spans)
            self._spans = [s for s in self._spans if s["trace_id"] != victim]
            self.spans_evicted += before - len(self._spans)
            self.trace_evictions += 1
            evicted = True
        if evicted and self.on_evict is not None:
            self.on_evict(self)

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, trace_id: str = "") -> list[dict[str, Any]]:
        """All spans, or those of one trace, in finish order."""
        if not trace_id:
            return list(self._spans)
        return [s for s in self._spans if s["trace_id"] == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in first-seen order."""
        seen: dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span["trace_id"], None)
        return list(seen)

    def traces(self) -> list[dict[str, Any]]:
        """One summary row per trace: span count, root name, wall time."""
        rows = []
        for trace_id in self.trace_ids():
            spans = self.spans(trace_id)
            roots = [s for s in spans if not s["parent_id"]]
            root = roots[0] if roots else spans[0]
            rows.append({
                "trace_id": trace_id,
                "root": root["name"],
                "service": root["service"],
                "spans": len(spans),
                "errors": sum(1 for s in spans if s["error"]),
                "start": min(s["start"] for s in spans),
                "duration": max(s["end"] for s in spans)
                - min(s["start"] for s in spans),
            })
        return rows

    def tree(self, trace_id: str) -> list[dict[str, Any]]:
        """The trace's spans depth-annotated in parent-before-child order.

        Children sort by start time (ties by finish order); orphaned spans
        (parent never exported, e.g. a crashed server) root at depth 0.
        """
        spans = [
            dict(span, _order=index)
            for index, span in enumerate(self.spans(trace_id))
        ]
        known = {s["span_id"] for s in spans}
        children: dict[str, list[dict[str, Any]]] = {}
        roots: list[dict[str, Any]] = []
        for span in spans:
            if span["parent_id"] in known:
                children.setdefault(span["parent_id"], []).append(span)
            else:
                # no parent, or parent never exported (crashed server)
                roots.append(span)
        out: list[dict[str, Any]] = []

        def walk(span: dict[str, Any], depth: int) -> None:
            row = {k: v for k, v in span.items() if k != "_order"}
            row["depth"] = depth
            out.append(row)
            kids = children.get(span["span_id"], [])
            kids.sort(key=lambda s: (s["start"], s["_order"]))
            for kid in kids:
                walk(kid, depth + 1)

        roots.sort(key=lambda s: (s["start"], s["_order"]))
        for root in roots:
            walk(root, 0)
        return out

    def to_json(self) -> str:
        """Deterministic JSON-lines export: one span per line, sorted keys."""
        return "\n".join(
            json.dumps(span, sort_keys=True) for span in self._spans
        )


class TraceCollectorService:
    """The SOAP face over a collector (read plus remote span reporting)."""

    def __init__(self, collector: TraceCollector):
        self.collector = collector

    def report(self, span: dict[str, Any]) -> int:
        """Accept one finished span from a remote tracer."""
        self.collector.export(span)
        return len(self.collector)

    def traces(self) -> list[dict[str, Any]]:
        """Summary rows, one per trace."""
        return self.collector.traces()

    def trace_tree(self, trace_id: str) -> list[dict[str, Any]]:
        """Depth-annotated spans of one trace."""
        return self.collector.tree(trace_id)

    def span_count(self) -> int:
        """Total spans collected."""
        return len(self.collector)


def deploy_trace_collector(
    network: VirtualNetwork,
    collector: TraceCollector,
    host: str = "traces.gridportal.org",
) -> tuple[TraceCollectorService, str]:
    """Expose *collector* over SOAP; returns (impl, endpoint URL).

    The service itself is never traced — the observability plane must not
    observe itself into an infinite regress.
    """
    # imported here, not at module top: the SOAP layer imports this
    # package's context/sampling modules for its hot path, so the
    # observability package must not import repro.soap at import time
    from repro.soap.server import SoapService
    from repro.transport.server import HttpServer

    impl = TraceCollectorService(collector)
    server = HttpServer(host, network)
    soap = SoapService("TraceCollector", TRACE_COLLECTOR_NAMESPACE)
    soap.traced = False
    soap.expose(impl.report)
    soap.expose(impl.traces)
    soap.expose(impl.trace_tree)
    soap.expose(impl.span_count)
    return impl, soap.mount(server, "/traces")
