"""The observability runtime: one bundle wiring tracer, metrics, collector.

``Observability.install(network)`` hangs the bundle on the virtual
network's ``observability`` slot.  Every :class:`~repro.soap.client
.SoapClient`, :class:`~repro.soap.server.SoapService`, and GRAM
client/gatekeeper discovers it there and instruments itself — no call-site
changes, and with the slot empty (the default) the stack behaves exactly
like the seed.

:meth:`Observability.observe_log` subscribes one bridge to a
:class:`~repro.resilience.events.ResilienceLog` so retries, breaker trips,
failovers, and deadline sheds become span events on whatever span was open
when they happened, breaker transitions drive the ``breaker_state`` gauge,
and every event code is counted.  :func:`repro.durability.journal
.set_journal_listener` is wired the same way for journal appends/replays.

Two opt-in additions ride the same bundle:

* ``sampling`` — a :class:`~repro.observability.sampling.TailSampler`
  (or ``True`` for the seeded default chain) slots between tracer and
  collector, so only kept traces are materialized and stored;
* ``slos`` — :class:`~repro.observability.slo.SLO` definitions feed the
  bundle's :class:`~repro.observability.slo.SloEngine`, whose
  ``evaluate()`` the harness (or any driver) calls periodically.
"""

from __future__ import annotations

from typing import Iterable

from repro.durability import journal as journal_module
from repro.faults import ErrorReport
from repro.observability.collector import TraceCollector
from repro.observability.context import IdGenerator
from repro.observability.metrics import BREAKER_STATE_VALUES, MetricsRegistry
from repro.observability.sampling import TailSampler
from repro.observability.slo import SLO, SloEngine
from repro.observability.tracer import Tracer
from repro.resilience import events as resilience_events
from repro.transport.clock import SimClock
from repro.transport.network import VirtualNetwork


class Observability:
    """Tracer + metrics + collector (+ sampler + SLO engine) sharing one
    clock and one id seed."""

    def __init__(
        self,
        clock: SimClock,
        *,
        seed: int = 0,
        sampling: TailSampler | bool | None = None,
        collector_capacity: int = 0,
        slos: Iterable[SLO] | None = None,
    ):
        self.clock = clock
        self.ids = IdGenerator(seed)
        self.collector = TraceCollector(capacity=collector_capacity)
        self.collector.on_evict = self._on_evict
        if sampling is True:
            sampling = TailSampler(seed=seed)
        self.sampler: TailSampler | None = sampling or None
        if self.sampler is not None:
            self.sampler.bind(self.collector)
        self.tracer = Tracer(
            clock, self.ids, self.collector, sampler=self.sampler
        )
        self.metrics = MetricsRegistry()
        self.slo = SloEngine(clock, self.metrics, collector=self.collector)
        for slo in slos or ():
            self.slo.define(slo)
        self._observed_logs: list = []

    @classmethod
    def install(
        cls,
        network: VirtualNetwork,
        *,
        seed: int = 0,
        sampling: TailSampler | bool | None = None,
        collector_capacity: int = 0,
        slos: Iterable[SLO] | None = None,
    ) -> "Observability":
        """Create a bundle on the network's clock and make it ambient.

        Also wires the durability journal listener, so journal writes and
        replays show up as events on the active span.
        """
        obs = cls(
            network.clock,
            seed=seed,
            sampling=sampling,
            collector_capacity=collector_capacity,
            slos=slos,
        )
        network.observability = obs
        journal_module.set_journal_listener(obs._on_journal)
        return obs

    @staticmethod
    def uninstall(network: VirtualNetwork) -> None:
        obs = getattr(network, "observability", None)
        if obs is not None and obs.sampler is not None:
            # decide still-buffered traces so the export is complete
            obs.sampler.flush()
        network.observability = None
        journal_module.set_journal_listener(None)

    def flush(self) -> None:
        """Force sampling decisions for every still-buffered trace."""
        if self.sampler is not None:
            self.sampler.flush()

    # -- eviction gauge -------------------------------------------------------------

    def _on_evict(self, collector: TraceCollector) -> None:
        self.metrics.set_gauge(
            "collector_evictions", "traces", collector.trace_evictions
        )
        self.metrics.set_gauge(
            "collector_evictions", "spans", collector.spans_evicted
        )

    # -- resilience-log bridge ------------------------------------------------------

    def observe_log(self, log) -> None:
        """Bridge *log*'s event stream into spans, gauges, and counters."""
        log.subscribe(self._on_resilience_event)
        self._observed_logs.append(log)

    def _on_resilience_event(self, report: ErrorReport) -> None:
        self.metrics.count_event(report.code)
        # merged into one dict (not expanded kwargs) so detail keys may
        # shadow the standard ones without a TypeError
        attributes = {
            "message": report.message,
            "service": report.service,
            "operation": report.operation,
        }
        attributes.update(report.detail)
        self.tracer.annotate(report.code, **attributes)
        if report.code == resilience_events.BREAKER:
            host = report.detail.get("host", "")
            state = report.detail.get("to", "")
            if host and state in BREAKER_STATE_VALUES:
                self.metrics.set_gauge(
                    "breaker_state", host, BREAKER_STATE_VALUES[state]
                )

    # -- durability-journal bridge --------------------------------------------------

    def _on_journal(self, event: str, journal, detail) -> None:
        where = f"{journal.disk.host}:{journal.name}"
        if event == "append":
            self.metrics.count_event("Journal.Append")
            self.tracer.annotate(
                "journal.append", journal=where, kind=detail.kind, seq=detail.seq
            )
        elif event == "replay":
            self.metrics.count_event("Journal.Replay")
            self.tracer.annotate("journal.replay", journal=where, records=detail)
