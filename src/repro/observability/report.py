"""The offline trace reporter (``python -m repro.observability.report``).

Loads exported traces (``.jsonl``, one span per line — the format
:meth:`TraceCollector.to_json` writes and the test suite exports under
``REPRO_TRACE_DIR``) and prints, per trace, a span waterfall plus the
*critical path* — the chain of spans that actually bounded the trace's wall
time — and, across all traces, a *bottleneck* table of self-time by
operation (time spent in a span minus time spent in its children), which is
where an optimisation PR should aim first.

``--check`` re-verifies structural invariants instead:

- every non-root parent reference resolves within its trace;
- children nest inside their parent's ``[start, end]`` window;
- every span's end is at or after its start;
- each trace has exactly one root span;
- per recording host, span *end* times are non-decreasing in file order
  (spans are exported at end time, so a regression means the host's clock
  ran backwards).

Exit status 0 means every file passed; 1 means at least one violation;
2 means usage error.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any

#: tolerance for float comparison of nesting windows (virtual seconds)
EPSILON = 1e-9


def load_spans(text: str, *, name: str = "trace") -> list[dict[str, Any]]:
    """Parse a JSON-lines trace export back into span dicts."""
    spans: list[dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            span = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{name}:{lineno}: malformed JSON ({exc})") from None
        for field in ("trace_id", "span_id", "name", "start", "end"):
            if field not in span:
                raise ValueError(f"{name}:{lineno}: span lacks {field!r}")
        spans.append(span)
    return spans


def _by_trace(spans: list[dict[str, Any]]) -> dict[str, list[dict[str, Any]]]:
    out: dict[str, list[dict[str, Any]]] = {}
    for span in spans:
        out.setdefault(span["trace_id"], []).append(span)
    return out


# ---------------------------------------------------------------------------
# --check invariants
# ---------------------------------------------------------------------------


def check_spans(spans: list[dict[str, Any]], name: str) -> list[str]:
    """Structural invariants over one export's spans."""
    problems: list[str] = []
    for trace_id, group in _by_trace(spans).items():
        short = trace_id[:12]
        known = {s["span_id"] for s in group}
        by_id = {s["span_id"]: s for s in group}
        roots = [s for s in group if not s.get("parent_id")]
        if len(roots) != 1:
            problems.append(
                f"{name}: trace {short} has {len(roots)} root spans, expected 1"
            )
        for span in group:
            label = f"{name}: trace {short} span {span['name']!r}"
            if span["end"] + EPSILON < span["start"]:
                problems.append(
                    f"{label} ends ({span['end']}) before it starts "
                    f"({span['start']})"
                )
            parent_id = span.get("parent_id")
            if not parent_id:
                continue
            if parent_id not in known:
                problems.append(
                    f"{label} references unknown parent {parent_id}"
                )
                continue
            parent = by_id[parent_id]
            if (
                span["start"] + EPSILON < parent["start"]
                or span["end"] - EPSILON > parent["end"]
            ):
                problems.append(
                    f"{label} [{span['start']}, {span['end']}] does not nest "
                    f"within parent {parent['name']!r} "
                    f"[{parent['start']}, {parent['end']}]"
                )
    # spans export at end time, so per recording host the end column must be
    # non-decreasing in file order — a regression means a clock ran backwards
    last_end: dict[str, float] = {}
    for span in spans:
        host = str(span.get("host", ""))
        previous = last_end.get(host)
        if previous is not None and span["end"] + EPSILON < previous:
            problems.append(
                f"{name}: host {host!r} clock regressed: span "
                f"{span['name']!r} ends at {span['end']} after a span "
                f"ending at {previous}"
            )
        last_end[host] = max(previous or 0.0, span["end"])
    return problems


def check_file(path: Path) -> list[str]:
    """Verify one exported trace file; returns its problems."""
    try:
        spans = load_spans(path.read_text(encoding="utf-8"), name=path.name)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    return check_spans(spans, path.name)


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


def tree_rows(group: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Depth-annotate one trace's spans in parent-before-child order."""
    known = {s["span_id"] for s in group}
    ordered = [dict(s, _order=i) for i, s in enumerate(group)]
    children: dict[str, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for span in ordered:
        if span.get("parent_id") in known:
            children.setdefault(span["parent_id"], []).append(span)
        else:
            roots.append(span)
    out: list[dict[str, Any]] = []

    def walk(span: dict[str, Any], depth: int) -> None:
        span["depth"] = depth
        out.append(span)
        kids = children.get(span["span_id"], [])
        kids.sort(key=lambda s: (s["start"], s["_order"]))
        for kid in kids:
            walk(kid, depth + 1)

    roots.sort(key=lambda s: (s["start"], s["_order"]))
    for root in roots:
        walk(root, 0)
    return out


def waterfall_lines(group: list[dict[str, Any]], *, width: int = 40) -> list[str]:
    """Render one trace as text waterfall lines."""
    rows = tree_rows(group)
    t0 = min(s["start"] for s in rows)
    t1 = max(s["end"] for s in rows)
    span_of_time = max(t1 - t0, 1e-12)
    lines = []
    for row in rows:
        begin = int(width * (row["start"] - t0) / span_of_time)
        length = max(int(width * (row["end"] - row["start"]) / span_of_time), 1)
        bar = " " * begin + "#" * min(length, width - begin)
        label = "  " * row["depth"] + row["name"]
        ms = (row["end"] - row["start"]) * 1000
        flags = []
        if row.get("error"):
            flags.append(f"error={row['error']}")
        for event in row.get("events", []):
            flags.append(event["name"])
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        lines.append(f"  {label:<38} {ms:>9.2f}ms |{bar:<{width}}|{suffix}")
    return lines


def critical_path(group: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """The chain of spans bounding the trace's wall time.

    From the root, repeatedly descend into the child whose *end* is latest —
    that child is what the parent was waiting on when it finished.
    """
    rows = tree_rows(group)
    if not rows:
        return []
    children: dict[str, list[dict[str, Any]]] = {}
    for row in rows:
        children.setdefault(row.get("parent_id") or "", []).append(row)
    path = [rows[0]]
    while True:
        kids = children.get(path[-1]["span_id"], [])
        if not kids:
            return path
        path.append(max(kids, key=lambda s: (s["end"], s["_order"])))


def self_times(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Aggregate self time (own duration minus direct children's) by
    (service, span name) across all traces — the bottleneck table."""
    child_time: dict[tuple[str, str], float] = {}
    for span in spans:
        parent_id = span.get("parent_id")
        if parent_id:
            key = (span["trace_id"], parent_id)
            child_time[key] = child_time.get(key, 0.0) + (
                span["end"] - span["start"]
            )
    totals: dict[tuple[str, str], dict[str, Any]] = {}
    for span in spans:
        own = span["end"] - span["start"]
        nested = child_time.get((span["trace_id"], span["span_id"]), 0.0)
        key = (str(span.get("service", "")), span["name"])
        row = totals.setdefault(
            key,
            {"service": key[0], "name": key[1], "spans": 0,
             "self_s": 0.0, "total_s": 0.0},
        )
        row["spans"] += 1
        row["total_s"] += own
        row["self_s"] += max(own - nested, 0.0)
    return sorted(
        totals.values(),
        key=lambda r: (-r["self_s"], r["service"], r["name"]),
    )


def report_lines(spans: list[dict[str, Any]], *, name: str = "") -> list[str]:
    """The full human-readable report for one export."""
    lines: list[str] = []
    groups = _by_trace(spans)
    for trace_id, group in groups.items():
        t0 = min(s["start"] for s in group)
        t1 = max(s["end"] for s in group)
        errors = sum(1 for s in group if s.get("error"))
        lines.append(
            f"trace {trace_id[:16]}  spans={len(group)} errors={errors} "
            f"wall={1000 * (t1 - t0):.2f}ms"
        )
        lines.extend(waterfall_lines(group))
        path = critical_path(group)
        lines.append(
            "  critical path: "
            + " -> ".join(s["name"] for s in path)
            + f"  ({1000 * (path[-1]['end'] - path[0]['start']):.2f}ms)"
        )
        lines.append("")
    bottlenecks = self_times(spans)
    if bottlenecks:
        lines.append("bottlenecks (self time, all traces):")
        for row in bottlenecks[:10]:
            lines.append(
                f"  {row['service']:<24} {row['name']:<28} "
                f"x{row['spans']:<5} self={1000 * row['self_s']:>9.2f}ms "
                f"total={1000 * row['total_s']:>9.2f}ms"
            )
    return lines


def _collect_files(paths: list[str]) -> list[Path] | None:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.jsonl")))
        elif path.is_file():
            files.append(path)
        else:
            print(f"no such file or directory: {path}")
            return None
    return files


def main(argv: list[str]) -> int:
    check = "--check" in argv
    paths = [a for a in argv if a != "--check"]
    if not paths:
        print(
            "usage: python -m repro.observability.report [--check] "
            "<trace-file-or-dir>..."
        )
        return 2
    files = _collect_files(paths)
    if files is None:
        return 2
    if check:
        total_problems: list[str] = []
        total_spans = 0
        for path in files:
            problems = check_file(path)
            if not problems:
                n = sum(
                    1 for line in path.read_text().splitlines() if line.strip()
                )
                total_spans += n
                print(f"ok   {path.name} ({n} spans)")
            else:
                total_problems.extend(problems)
                print(f"FAIL {path.name}")
                for problem in problems:
                    print(f"     {problem}")
        print(
            f"{len(files)} trace files, {total_spans} spans, "
            f"{len(total_problems)} violations"
        )
        return 1 if total_problems else 0
    for path in files:
        try:
            spans = load_spans(path.read_text(encoding="utf-8"), name=path.name)
        except (OSError, ValueError) as exc:
            print(f"FAIL {path.name}: {exc}")
            return 1
        print(f"== {path.name} ==")
        for line in report_lines(spans, name=path.name):
            print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
