"""The UDDI registry as a SOAP web service, plus a typed client."""

from __future__ import annotations

from typing import Any

from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer
from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    KeyedReference,
    TModel,
)
from repro.uddi.registry import UddiRegistry

UDDI_NAMESPACE = "urn:uddi-org:api_v2"


class _UddiSoapFacade:
    """Dict-in/dict-out methods exposed over SOAP (SOAP structs map cleanly
    onto the model's to_dict/from_dict forms)."""

    def __init__(self, registry: UddiRegistry):
        self._registry = registry

    def save_business(self, entity: dict[str, Any]) -> dict[str, Any]:
        """Publish (or update) a businessEntity; returns it with its key."""
        return self._registry.save_business(BusinessEntity.from_dict(entity)).to_dict()

    def save_tmodel(self, tmodel: dict[str, Any]) -> dict[str, Any]:
        """Publish a tModel (interface fingerprint); returns it with its key."""
        return self._registry.save_tmodel(TModel.from_dict(tmodel)).to_dict()

    def save_service(self, service: dict[str, Any]) -> dict[str, Any]:
        """Publish a businessService with its bindingTemplates."""
        return self._registry.save_service(BusinessService.from_dict(service)).to_dict()

    def save_binding(self, binding: dict[str, Any]) -> dict[str, Any]:
        """Add a bindingTemplate to an existing service."""
        return self._registry.save_binding(BindingTemplate.from_dict(binding)).to_dict()

    def find_business(self, name_pattern: str) -> list[dict[str, Any]]:
        """Inquiry: businesses whose name matches the pattern."""
        return [e.to_dict() for e in self._registry.find_business(name_pattern)]

    def find_service(
        self,
        name_pattern: str,
        business_key: str,
        category_refs: list[dict[str, str]],
        description_contains: str,
    ) -> list[dict[str, Any]]:
        """Inquiry: services by name/category/description-substring."""
        refs = [KeyedReference.from_dict(r) for r in category_refs or []]
        return [
            s.to_dict()
            for s in self._registry.find_service(
                name_pattern, business_key, refs, description_contains
            )
        ]

    def find_tmodel(self, name_pattern: str) -> list[dict[str, Any]]:
        """Inquiry: tModels whose name matches the pattern."""
        return [t.to_dict() for t in self._registry.find_tmodel(name_pattern)]

    def get_service_detail(self, key: str) -> dict[str, Any]:
        """Fetch one businessService by key."""
        return self._registry.get_service_detail(key).to_dict()

    def get_business_detail(self, key: str) -> dict[str, Any]:
        """Fetch one businessEntity by key."""
        return self._registry.get_business_detail(key).to_dict()

    def get_tmodel_detail(self, key: str) -> dict[str, Any]:
        """Fetch one tModel by key."""
        return self._registry.get_tmodel_detail(key).to_dict()

    def services_implementing(self, tmodel_key: str) -> list[dict[str, Any]]:
        """Services whose bindings implement the given interface tModel."""
        return [s.to_dict() for s in self._registry.services_implementing(tmodel_key)]


def deploy_uddi(
    network: VirtualNetwork,
    host: str = "uddi.gridforum.org",
    *,
    registry: UddiRegistry | None = None,
) -> tuple[UddiRegistry, str]:
    """Stand up a UDDI node on the virtual network; returns (registry, URL)."""
    registry = registry or UddiRegistry()
    server = HttpServer(host, network)
    service = SoapService("UDDI", UDDI_NAMESPACE)
    service.expose_object(_UddiSoapFacade(registry))
    endpoint = service.mount(server, "/uddi")
    return registry, endpoint


class UddiClient:
    """A typed client proxy to a remote UDDI node."""

    def __init__(self, network: VirtualNetwork, endpoint: str, *, source: str = "client"):
        self._soap = SoapClient(network, endpoint, UDDI_NAMESPACE, source=source)

    def save_business(self, entity: BusinessEntity) -> BusinessEntity:
        return BusinessEntity.from_dict(self._soap.call("save_business", entity.to_dict()))

    def save_tmodel(self, tmodel: TModel) -> TModel:
        return TModel.from_dict(self._soap.call("save_tmodel", tmodel.to_dict()))

    def save_service(self, service: BusinessService) -> BusinessService:
        return BusinessService.from_dict(
            self._soap.call("save_service", service.to_dict())
        )

    def save_binding(self, binding: BindingTemplate) -> BindingTemplate:
        return BindingTemplate.from_dict(
            self._soap.call("save_binding", binding.to_dict())
        )

    def find_business(self, name_pattern: str = "") -> list[BusinessEntity]:
        return [
            BusinessEntity.from_dict(d)
            for d in self._soap.call("find_business", name_pattern)
        ]

    def find_service(
        self,
        name_pattern: str = "",
        business_key: str = "",
        category_refs: list[KeyedReference] | None = None,
        description_contains: str = "",
    ) -> list[BusinessService]:
        return [
            BusinessService.from_dict(d)
            for d in self._soap.call(
                "find_service",
                name_pattern,
                business_key,
                [r.to_dict() for r in category_refs or []],
                description_contains,
            )
        ]

    def find_tmodel(self, name_pattern: str = "") -> list[TModel]:
        return [
            TModel.from_dict(d) for d in self._soap.call("find_tmodel", name_pattern)
        ]

    def get_service_detail(self, key: str) -> BusinessService:
        return BusinessService.from_dict(self._soap.call("get_service_detail", key))

    def get_business_detail(self, key: str) -> BusinessEntity:
        return BusinessEntity.from_dict(self._soap.call("get_business_detail", key))

    def get_tmodel_detail(self, key: str) -> TModel:
        return TModel.from_dict(self._soap.call("get_tmodel_detail", key))

    def services_implementing(self, tmodel_key: str) -> list[BusinessService]:
        return [
            BusinessService.from_dict(d)
            for d in self._soap.call("services_implementing", tmodel_key)
        ]
