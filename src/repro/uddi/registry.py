"""The UDDI registry: publish and inquiry APIs."""

from __future__ import annotations

import itertools

from repro.faults import DiscoveryError, InvalidRequestError
from repro.uddi.model import (
    STANDARD_TAXONOMIES,
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    KeyedReference,
    TModel,
)


class UddiRegistry:
    """An in-memory UDDI node.

    Inquiry follows the v2 API shape: ``find_business``/``find_service`` by
    name pattern (``%`` wildcard) and/or categoryBag match, ``get_*_detail``
    by key.  Category references must cite a registered tModel; only the
    standard commercial taxonomies and published interface tModels exist,
    which is exactly the limitation the paper ran into.
    """

    def __init__(self):
        self._businesses: dict[str, BusinessEntity] = {}
        self._services: dict[str, BusinessService] = {}
        self._tmodels: dict[str, TModel] = {}
        self._counter = itertools.count(1)
        for key, name in STANDARD_TAXONOMIES.items():
            self._tmodels[key] = TModel(key, name, "standard checked taxonomy")

    def _new_key(self, prefix: str) -> str:
        return f"uuid:{prefix}-{next(self._counter):08d}"

    # -- publish API ----------------------------------------------------------

    def save_business(self, entity: BusinessEntity) -> BusinessEntity:
        if not entity.key:
            entity.key = self._new_key("be")
        self._businesses[entity.key] = entity
        return entity

    def save_tmodel(self, tmodel: TModel) -> TModel:
        if not tmodel.key:
            tmodel.key = self._new_key("tm")
        self._tmodels[tmodel.key] = tmodel
        return tmodel

    def save_service(self, service: BusinessService) -> BusinessService:
        if service.business_key not in self._businesses:
            raise DiscoveryError(
                f"unknown businessKey {service.business_key!r}",
                {"businessKey": service.business_key},
            )
        for ref in service.category_bag:
            if ref.tmodel_key not in self._tmodels:
                raise InvalidRequestError(
                    f"categoryBag references unregistered tModel {ref.tmodel_key!r}",
                    {"tModelKey": ref.tmodel_key},
                )
        if not service.key:
            service.key = self._new_key("bs")
        for binding in service.bindings:
            if not binding.key:
                binding.key = self._new_key("bt")
            binding.service_key = service.key
        self._services[service.key] = service
        return service

    def save_binding(self, binding: BindingTemplate) -> BindingTemplate:
        service = self._services.get(binding.service_key)
        if service is None:
            raise DiscoveryError(
                f"unknown serviceKey {binding.service_key!r}",
                {"serviceKey": binding.service_key},
            )
        if not binding.key:
            binding.key = self._new_key("bt")
        service.bindings.append(binding)
        return binding

    def delete_service(self, service_key: str) -> None:
        if service_key not in self._services:
            raise DiscoveryError(f"unknown serviceKey {service_key!r}")
        del self._services[service_key]

    # -- inquiry API -------------------------------------------------------------

    @staticmethod
    def _name_matches(pattern: str, name: str) -> bool:
        """UDDI name match: case-insensitive, ``%`` is a trailing/leading
        wildcard (approximation of the v2 wildcard rules)."""
        if not pattern:
            return True
        pattern_l, name_l = pattern.lower(), name.lower()
        if pattern_l.startswith("%") and pattern_l.endswith("%") and len(pattern_l) > 1:
            return pattern_l.strip("%") in name_l
        if pattern_l.endswith("%"):
            return name_l.startswith(pattern_l[:-1])
        if pattern_l.startswith("%"):
            return name_l.endswith(pattern_l[1:])
        return name_l == pattern_l

    def find_business(self, name_pattern: str = "") -> list[BusinessEntity]:
        return [
            entity
            for entity in sorted(self._businesses.values(), key=lambda e: e.key)
            if self._name_matches(name_pattern, entity.name)
        ]

    def find_service(
        self,
        name_pattern: str = "",
        business_key: str = "",
        category_refs: list[KeyedReference] | None = None,
        description_contains: str = "",
    ) -> list[BusinessService]:
        """Inquiry over published services.

        ``category_refs`` match requires every reference to appear exactly in
        the service's categoryBag (tModelKey + keyValue).
        ``description_contains`` is the string-convention workaround the
        paper used: a case-insensitive substring scan over descriptions.
        """
        results: list[BusinessService] = []
        for service in sorted(self._services.values(), key=lambda s: s.key):
            if business_key and service.business_key != business_key:
                continue
            if not self._name_matches(name_pattern, service.name):
                continue
            if category_refs:
                bag = {(r.tmodel_key, r.key_value) for r in service.category_bag}
                if not all(
                    (ref.tmodel_key, ref.key_value) in bag for ref in category_refs
                ):
                    continue
            if (
                description_contains
                and description_contains.lower() not in service.description.lower()
            ):
                continue
            results.append(service)
        return results

    def find_tmodel(self, name_pattern: str = "") -> list[TModel]:
        return [
            tm
            for tm in sorted(self._tmodels.values(), key=lambda t: t.key)
            if self._name_matches(name_pattern, tm.name)
        ]

    def get_business_detail(self, key: str) -> BusinessEntity:
        if key not in self._businesses:
            raise DiscoveryError(f"unknown businessKey {key!r}")
        return self._businesses[key]

    def get_service_detail(self, key: str) -> BusinessService:
        if key not in self._services:
            raise DiscoveryError(f"unknown serviceKey {key!r}")
        return self._services[key]

    def get_tmodel_detail(self, key: str) -> TModel:
        if key not in self._tmodels:
            raise DiscoveryError(f"unknown tModelKey {key!r}")
        return self._tmodels[key]

    def services_implementing(self, tmodel_key: str) -> list[BusinessService]:
        """All services with a binding that implements the given interface
        tModel — the paper's cross-group 'who supports the common batch
        script interface' query."""
        return [
            service
            for service in sorted(self._services.values(), key=lambda s: s.key)
            if any(tmodel_key in b.tmodel_keys for b in service.bindings)
        ]
