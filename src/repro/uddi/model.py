"""UDDI data structures (v2 subset)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

# The standard checked taxonomies a 2002 UDDI registry ships with.  The
# paper's point: these describe *commercial* entities, so grid-portal
# capability metadata has nowhere structured to go.
STANDARD_TAXONOMIES = {
    "uddi:naics": "North American Industry Classification System",
    "uddi:unspsc": "Universal Standard Products and Services Classification",
    "uddi:iso3166": "ISO 3166 geographic taxonomy",
    "uddi:general-keywords": "General keywords (uncontrolled strings)",
}


@dataclass
class KeyedReference:
    """A categoryBag/identifierBag entry: (tModelKey, keyName, keyValue)."""

    tmodel_key: str
    key_name: str = ""
    key_value: str = ""

    def to_dict(self) -> dict[str, str]:
        return {
            "tModelKey": self.tmodel_key,
            "keyName": self.key_name,
            "keyValue": self.key_value,
        }

    @staticmethod
    def from_dict(data: dict[str, str]) -> "KeyedReference":
        return KeyedReference(
            data.get("tModelKey", ""),
            data.get("keyName", ""),
            data.get("keyValue", ""),
        )


@dataclass
class TModel:
    """A technical model: a named interface fingerprint with an overview URL
    (conventionally pointing at the WSDL)."""

    key: str
    name: str
    description: str = ""
    overview_url: str = ""

    def to_dict(self) -> dict[str, str]:
        return {
            "key": self.key,
            "name": self.name,
            "description": self.description,
            "overviewURL": self.overview_url,
        }

    @staticmethod
    def from_dict(data: dict[str, str]) -> "TModel":
        return TModel(
            data.get("key", ""),
            data.get("name", ""),
            data.get("description", ""),
            data.get("overviewURL", ""),
        )


@dataclass
class BindingTemplate:
    """A concrete endpoint of a service: access point + implemented tModels."""

    key: str
    service_key: str
    access_point: str
    tmodel_keys: list[str] = field(default_factory=list)
    wsdl_url: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "serviceKey": self.service_key,
            "accessPoint": self.access_point,
            "tModelKeys": list(self.tmodel_keys),
            "wsdlURL": self.wsdl_url,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "BindingTemplate":
        return BindingTemplate(
            data.get("key", ""),
            data.get("serviceKey", ""),
            data.get("accessPoint", ""),
            list(data.get("tModelKeys", [])),
            data.get("wsdlURL", ""),
        )


@dataclass
class BusinessService:
    """A published service belonging to a businessEntity."""

    key: str
    business_key: str
    name: str
    description: str = ""
    category_bag: list[KeyedReference] = field(default_factory=list)
    bindings: list[BindingTemplate] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "businessKey": self.business_key,
            "name": self.name,
            "description": self.description,
            "categoryBag": [ref.to_dict() for ref in self.category_bag],
            "bindings": [b.to_dict() for b in self.bindings],
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "BusinessService":
        return BusinessService(
            data.get("key", ""),
            data.get("businessKey", ""),
            data.get("name", ""),
            data.get("description", ""),
            [KeyedReference.from_dict(r) for r in data.get("categoryBag", [])],
            [BindingTemplate.from_dict(b) for b in data.get("bindings", [])],
        )


@dataclass
class BusinessEntity:
    """A publishing organization (a portal group, in the paper's mapping)."""

    key: str
    name: str
    description: str = ""
    contacts: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "name": self.name,
            "description": self.description,
            "contacts": list(self.contacts),
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "BusinessEntity":
        return BusinessEntity(
            data.get("key", ""),
            data.get("name", ""),
            data.get("description", ""),
            list(data.get("contacts", [])),
        )
