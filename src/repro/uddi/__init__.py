"""A UDDI v2-subset registry.

Implements the pieces of UDDI the paper exercised: businessEntities for the
portal groups, businessServices with bindingTemplates pointing at WSDL files
and SOAP endpoints, tModels for interface fingerprints, and the
category/identifier bags whose industry-taxonomy orientation the paper found
"obviously inappropriate" for describing queuing-system support — along with
the string-description workaround "this works only by convention".

The registry itself is exposed as a SOAP web service ("UDDI is a specialized
Web Service"), so lookup traffic shows up in the Figure 1 benchmark.
"""

from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    KeyedReference,
    TModel,
)
from repro.uddi.registry import UddiRegistry
from repro.uddi.service import UddiClient, deploy_uddi

__all__ = [
    "BindingTemplate",
    "BusinessEntity",
    "BusinessService",
    "KeyedReference",
    "TModel",
    "UddiRegistry",
    "UddiClient",
    "deploy_uddi",
]
