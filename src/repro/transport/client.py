"""An HTTP client with keep-alive connections and cookie sessions."""

from __future__ import annotations

from repro.transport.http import (
    HttpRequest,
    HttpResponse,
    Url,
    encode_query,
    parse_url,
)
from repro.transport.network import VirtualNetwork


class HttpClient:
    """A client endpoint on the virtual network.

    - Keep-alive: the first request to a host pays connection setup; later
      requests on the same client reuse the connection until :meth:`close`.
    - Cookies: ``Set-Cookie`` response headers are stored per host and sent
      back as ``Cookie`` — this is how :class:`repro.portlets.WebFormPortlet`
      "maintains session state with remote Tomcat servers".
    """

    def __init__(
        self,
        network: VirtualNetwork,
        source: str = "client",
        *,
        keep_alive: bool = True,
    ):
        self.network = network
        self.source = source
        self.keep_alive = keep_alive
        self._open_connections: set[str] = set()
        self._cookies: dict[str, dict[str, str]] = {}

    # -- cookie jar ----------------------------------------------------------

    def cookies_for(self, host: str) -> dict[str, str]:
        return dict(self._cookies.get(host, {}))

    def clear_cookies(self, host: str | None = None) -> None:
        if host is None:
            self._cookies.clear()
        else:
            self._cookies.pop(host, None)

    def _store_cookies(self, host: str, response: HttpResponse) -> None:
        set_cookie = response.headers.get("Set-Cookie")
        if not set_cookie:
            return
        jar = self._cookies.setdefault(host, {})
        for part in set_cookie.split(";"):
            part = part.strip()
            if "=" in part and part.split("=", 1)[0] not in ("Path", "Max-Age"):
                name, value = part.split("=", 1)
                jar[name] = value

    # -- requests ------------------------------------------------------------

    def request(
        self,
        method: str,
        url: str | Url,
        body: str = "",
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        target = parse_url(url) if isinstance(url, str) else url
        all_headers = dict(headers or {})
        jar = self._cookies.get(target.host)
        if jar:
            all_headers["Cookie"] = "; ".join(f"{k}={v}" for k, v in jar.items())
        request = HttpRequest(method, target, all_headers, body)
        fresh = not (self.keep_alive and target.host in self._open_connections)
        response = self.network.send(
            request, source=self.source, new_connection=fresh
        )
        if self.keep_alive:
            self._open_connections.add(target.host)
        self._store_cookies(target.host, response)
        return response

    def get(self, url: str | Url, headers: dict[str, str] | None = None) -> HttpResponse:
        return self.request("GET", url, "", headers)

    def post(
        self,
        url: str | Url,
        body: str,
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        return self.request("POST", url, body, headers)

    def post_form(
        self,
        url: str | Url,
        fields: dict[str, str],
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        all_headers = {"Content-Type": "application/x-www-form-urlencoded"}
        all_headers.update(headers or {})
        return self.request("POST", url, encode_query(fields), all_headers)

    def close(self, host: str | None = None) -> None:
        """Drop keep-alive connections (next request pays setup again)."""
        if host is None:
            self._open_connections.clear()
        else:
            self._open_connections.discard(host)
