"""An HTTP client with keep-alive connections, cookie sessions, and
per-endpoint circuit breakers."""

from __future__ import annotations

from repro.transport.http import (
    HttpRequest,
    HttpResponse,
    Url,
    encode_query,
    parse_url,
)
from repro.transport.network import TransportError, VirtualNetwork


class HttpClient:
    """A client endpoint on the virtual network.

    - Keep-alive: the first request to a host pays connection setup; later
      requests on the same client reuse the connection until :meth:`close`.
      A transport failure drops the connection, so the next attempt pays
      setup again (retries are not free).
    - Cookies: ``Set-Cookie`` response headers are stored per host and sent
      back as ``Cookie`` — this is how :class:`repro.portlets.WebFormPortlet`
      "maintains session state with remote Tomcat servers".
    - Circuit breakers: with a :class:`repro.resilience.breaker.
      CircuitBreakerPolicy`, each host gets a breaker; when it is open,
      requests fail locally with :class:`repro.resilience.breaker.
      BreakerOpenError` instead of paying wire latency to a dead provider.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        source: str = "client",
        *,
        keep_alive: bool = True,
        breaker_policy=None,
    ):
        self.network = network
        self.source = source
        self.keep_alive = keep_alive
        self.breaker_policy = breaker_policy
        self.breakers: dict[str, object] = {}
        #: called with (host, old_state, new_state) on breaker transitions
        self.breaker_listener = None
        self._open_connections: set[str] = set()
        self._cookies: dict[str, dict[str, str]] = {}

    # -- cookie jar ----------------------------------------------------------

    def cookies_for(self, host: str) -> dict[str, str]:
        return dict(self._cookies.get(host, {}))

    def clear_cookies(self, host: str | None = None) -> None:
        if host is None:
            self._cookies.clear()
        else:
            self._cookies.pop(host, None)

    def _store_cookies(self, host: str, response: HttpResponse) -> None:
        set_cookie = response.headers.get("Set-Cookie")
        if not set_cookie:
            return
        jar = self._cookies.setdefault(host, {})
        for part in set_cookie.split(";"):
            part = part.strip()
            if "=" in part and part.split("=", 1)[0] not in ("Path", "Max-Age"):
                name, value = part.split("=", 1)
                jar[name] = value

    # -- circuit breakers -----------------------------------------------------

    def breaker_for(self, host: str):
        """The host's breaker (created on first use), or ``None`` when no
        breaker policy is configured."""
        if self.breaker_policy is None:
            return None
        breaker = self.breakers.get(host)
        if breaker is None:
            from repro.resilience.breaker import CircuitBreaker

            breaker = CircuitBreaker(
                host,
                self.network.clock,
                self.breaker_policy,
                on_transition=self._on_breaker_transition,
            )
            self.breakers[host] = breaker
        return breaker

    def _on_breaker_transition(self, host: str, old: str, new: str) -> None:
        if self.breaker_listener is not None:
            self.breaker_listener(host, old, new)

    # -- requests ------------------------------------------------------------

    def request(
        self,
        method: str,
        url: str | Url,
        body: str = "",
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        target = parse_url(url) if isinstance(url, str) else url
        breaker = self.breaker_for(target.host)
        if breaker is not None:
            breaker.check()
        all_headers = dict(headers or {})
        jar = self._cookies.get(target.host)
        if jar:
            all_headers["Cookie"] = "; ".join(f"{k}={v}" for k, v in jar.items())
        request = HttpRequest(method, target, all_headers, body)
        fresh = not (self.keep_alive and target.host in self._open_connections)
        try:
            response = self.network.send(
                request, source=self.source, new_connection=fresh
            )
        except TransportError:
            # the connection is gone; a retry pays setup again
            self._open_connections.discard(target.host)
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        if self.keep_alive:
            self._open_connections.add(target.host)
        self._store_cookies(target.host, response)
        return response

    def get(self, url: str | Url, headers: dict[str, str] | None = None) -> HttpResponse:
        return self.request("GET", url, "", headers)

    def post(
        self,
        url: str | Url,
        body: str,
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        return self.request("POST", url, body, headers)

    def post_form(
        self,
        url: str | Url,
        fields: dict[str, str],
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        all_headers = {"Content-Type": "application/x-www-form-urlencoded"}
        all_headers.update(headers or {})
        return self.request("POST", url, encode_query(fields), all_headers)

    def close(self, host: str | None = None) -> None:
        """Drop keep-alive connections (next request pays setup again)."""
        if host is None:
            self._open_connections.clear()
        else:
            self._open_connections.discard(host)
