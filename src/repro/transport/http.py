"""HTTP request/response records and URL handling for the virtual network."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Url:
    """A parsed ``http://host/path?query`` URL (no ports: hosts are names on
    the virtual network)."""

    host: str
    path: str = "/"
    query: str = ""

    def __str__(self) -> str:
        url = f"http://{self.host}{self.path or '/'}"
        if self.query:
            url += f"?{self.query}"
        return url

    def with_path(self, path: str) -> "Url":
        return Url(self.host, path, "")

    def resolve(self, reference: str) -> "Url":
        """Resolve a link reference against this URL (absolute URLs,
        host-absolute paths, and relative paths)."""
        if reference.startswith("http://") or reference.startswith("https://"):
            return parse_url(reference)
        if reference.startswith("/"):
            path, _, query = reference.partition("?")
            return Url(self.host, path, query)
        base = self.path.rsplit("/", 1)[0]
        path, _, query = reference.partition("?")
        return Url(self.host, f"{base}/{path}", query)


def parse_url(url: str) -> Url:
    """Parse an absolute http(s) URL into a :class:`Url`.

    Malformed URLs raise the transport-class :class:`TransportError` (late
    import: :mod:`repro.transport.network` imports this module): on a
    dispatch path an unroutable URL is a transport failure, and the
    resilience layer already classifies those.
    """
    from repro.transport.network import TransportError

    for scheme in ("http://", "https://"):
        if url.startswith(scheme):
            rest = url[len(scheme):]
            break
    else:
        raise TransportError(f"not an absolute http URL: {url!r}")
    host, slash, tail = rest.partition("/")
    if not host:
        raise TransportError(f"URL has no host: {url!r}")
    path, _, query = (slash + tail).partition("?")
    return Url(host, path or "/", query)


def parse_query(query: str) -> dict[str, str]:
    """Parse a query/form-encoded string into a dict (last value wins)."""
    out: dict[str, str] = {}
    if not query:
        return out
    for pair in query.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        out[_unquote(key)] = _unquote(value)
    return out


def encode_query(params: dict[str, str]) -> str:
    """Form-encode a parameter dict."""
    return "&".join(f"{_quote(k)}={_quote(str(v))}" for k, v in params.items())


_SAFE = set(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_.~"
)


def _quote(text: str) -> str:
    out: list[str] = []
    for byte in text.encode("utf-8"):
        ch = chr(byte)
        if ch in _SAFE:
            out.append(ch)
        elif ch == " ":
            out.append("+")
        else:
            out.append(f"%{byte:02X}")
    return "".join(out)


def _unquote(text: str) -> str:
    out = bytearray()
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "+":
            out.append(ord(" "))
            i += 1
        elif ch == "%" and i + 2 < len(text) + 1:
            try:
                out.append(int(text[i + 1:i + 3], 16))
                i += 3
            except ValueError:
                out.append(ord("%"))
                i += 1
        else:
            out.extend(ch.encode("utf-8"))
            i += 1
    return out.decode("utf-8", errors="replace")


def _body_bytes(body: str) -> int:
    """Wire size of a body string.

    Raw binary payloads travel as latin-1 strings (one char per byte); text
    payloads as UTF-8.  Counting latin-1 first keeps binary transfers from
    being double-counted.
    """
    try:
        return len(body.encode("latin-1"))
    except UnicodeEncodeError:
        return len(body.encode("utf-8"))


@dataclass
class HttpRequest:
    """An HTTP request on the virtual wire."""

    method: str
    url: Url
    headers: dict[str, str] = field(default_factory=dict)
    body: str = ""

    @property
    def size(self) -> int:
        """Approximate bytes on the wire (request line + headers + body)."""
        head = len(self.method) + len(str(self.url)) + 12
        head += sum(len(k) + len(v) + 4 for k, v in self.headers.items())
        return head + _body_bytes(self.body)

    def form(self) -> dict[str, str]:
        """Decode a form-encoded POST body (or the query string for GET)."""
        if self.method == "GET":
            return parse_query(self.url.query)
        return parse_query(self.body)


@dataclass
class HttpResponse:
    """An HTTP response on the virtual wire."""

    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: str = ""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def size(self) -> int:
        head = 17 + sum(len(k) + len(v) + 4 for k, v in self.headers.items())
        return head + _body_bytes(self.body)
