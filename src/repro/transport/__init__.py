"""Simulated network transport.

The paper's services ran on web servers at Indiana University and SDSC; the
measurable claims are about *interaction shape*: how many connections and
round trips a protocol costs, and how message size scales.  This package
provides a deterministic in-process substitute:

- :mod:`repro.transport.clock` — a virtual clock advanced by network activity.
- :mod:`repro.transport.http` — HTTP request/response records and URL algebra.
- :mod:`repro.transport.network` — the :class:`VirtualNetwork`: named hosts,
  per-link latency and bandwidth, connection-setup cost, failure injection,
  and full wire accounting (:class:`WireStats`).
- :mod:`repro.transport.server` — a route-dispatching HTTP server to mount on
  a host.
- :mod:`repro.transport.client` — an HTTP client with cookie-based sessions
  (needed by :class:`repro.portlets.WebFormPortlet` to "maintain session
  state with remote Tomcat servers").
"""

from repro.transport.clock import SimClock
from repro.transport.http import (
    HttpRequest,
    HttpResponse,
    Url,
    parse_url,
)
from repro.transport.network import (
    LinkSpec,
    TransportError,
    VirtualNetwork,
    WireStats,
)
from repro.transport.server import HttpServer
from repro.transport.client import HttpClient

__all__ = [
    "SimClock",
    "HttpRequest",
    "HttpResponse",
    "Url",
    "parse_url",
    "LinkSpec",
    "TransportError",
    "VirtualNetwork",
    "WireStats",
    "HttpServer",
    "HttpClient",
]
