"""A route-dispatching HTTP server to mount on a virtual-network host."""

from __future__ import annotations

from typing import Callable

from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.network import ServiceCrash, VirtualNetwork

RouteHandler = Callable[[HttpRequest], HttpResponse]


class HttpServer:
    """Dispatches requests by path prefix, longest prefix wins.

    Each portal host (UI server, SOAP service provider, UDDI server,
    authentication service) is one ``HttpServer`` with one or more mounted
    endpoints.
    """

    def __init__(self, host: str, network: VirtualNetwork | None = None):
        self.host = host
        self.network = network
        self._routes: dict[str, RouteHandler] = {}
        if network is not None:
            network.register(host, self)

    def mount(self, path: str, handler: RouteHandler) -> None:
        """Mount a handler at a path prefix (``/soap``, ``/wsdl/...``)."""
        if not path.startswith("/"):
            # deployment-time wiring bug: must crash the deploy loudly, not
            # cross the wire as a classified request fault
            raise ValueError(f"mount path must start with '/': {path!r}")  # repro: ignore[REP901]
        self._routes[path.rstrip("/") or "/"] = handler

    def unmount(self, path: str) -> None:
        self._routes.pop(path.rstrip("/") or "/", None)

    def routes(self) -> list[str]:
        return sorted(self._routes)

    def __call__(self, request: HttpRequest) -> HttpResponse:
        path = request.url.path or "/"
        best: str | None = None
        for prefix in self._routes:
            if path == prefix or path.startswith(prefix.rstrip("/") + "/") or prefix == "/":
                if best is None or len(prefix) > len(best):
                    best = prefix
        if best is None:
            return HttpResponse(404, body=f"no handler for {path}")
        try:
            return self._routes[best](request)
        except ServiceCrash:
            raise  # the process died mid-request: no response ever leaves
        except Exception as exc:  # noqa: BLE001 - server boundary
            return HttpResponse(500, body=f"internal server error: {exc}")
