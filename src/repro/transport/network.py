"""The virtual network: hosts, links, wire accounting, failure injection."""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.transport.clock import SimClock
from repro.transport.http import HttpRequest, HttpResponse


class TransportError(ConnectionError):
    """A network-level failure (host down, injected fault, no route)."""


class ServiceCrash(TransportError):
    """The serving process died mid-request.

    Raised *inside* a handler to model process death: the caller observes a
    dropped connection (a transport failure, hence retryable), never a
    response.  Host disks (:class:`HostDisk`) survive the crash; process
    state does not.
    """


class HostDisk:
    """A host's durable storage: named append-only logs that survive
    :meth:`VirtualNetwork.take_down` / :meth:`VirtualNetwork.bring_up`.

    Process state (service objects, handlers) dies with the host; whatever a
    service wrote to its disk is still there when a fresh process attaches
    after restart.  The log entries themselves are managed by
    :class:`repro.durability.journal.Journal`; the disk just owns the lists.
    """

    def __init__(self, host: str):
        self.host = host
        self._logs: dict[str, list] = {}
        #: when True, appends must fail (the paper's canonical error: "the
        #: file didn't get transferred because the disk was full") — the
        #: journal layer maps this onto ``Portal.ResourceExhausted``
        self.full = False

    def log(self, name: str) -> list:
        """The named append-only log (created empty on first access)."""
        return self._logs.setdefault(name, [])

    def log_names(self) -> list[str]:
        return sorted(self._logs)

    def set_full(self, full: bool) -> None:
        """Inject (or clear) the disk-full condition.  Existing records
        stay readable; only new appends are refused while full."""
        self.full = bool(full)

    def wipe(self) -> None:
        """Destroy all durable state (disk replacement, not a crash)."""
        self._logs.clear()
        self.full = False


@dataclass
class LinkSpec:
    """Timing parameters of a (directed) link between two hosts.

    ``connect_latency`` models TCP(+TLS/GSI handshake) setup and is paid once
    per *connection*; ``latency`` is the one-way propagation delay paid per
    message; ``bandwidth`` (bytes/second) converts message size to serialization
    delay.  Defaults approximate a 2002 wide-area path between IU and SDSC.
    """

    latency: float = 0.020
    bandwidth: float = 1.25e6  # 10 Mbit/s
    connect_latency: float = 0.060

    def transfer_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.bandwidth


@dataclass
class WireStats:
    """Cumulative wire accounting for benchmarks and tests.

    ``requests`` / ``per_host_requests`` count *attempts* to any registered
    host, including ones that fail in flight (host down, injected fault,
    partition) — that is what lets tests assert a circuit breaker caps
    traffic to a dead provider.  ``partition_blocked`` counts attempts cut
    by an active partition (full, one-way, or a partial-loss drop), with
    ``per_pair_blocked`` keyed ``"source->host"`` so split-brain drills can
    assert exactly which directions went dark.  ``bytes_*`` only accumulate
    for delivered messages.
    """

    connections: int = 0
    requests: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    per_host_requests: dict[str, int] = field(default_factory=dict)
    partition_blocked: int = 0
    per_pair_blocked: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> "WireStats":
        return WireStats(
            self.connections,
            self.requests,
            self.bytes_sent,
            self.bytes_received,
            dict(self.per_host_requests),
            self.partition_blocked,
            dict(self.per_pair_blocked),
        )

    def delta(self, earlier: "WireStats") -> "WireStats":
        """Stats accumulated since an earlier :meth:`snapshot`."""
        return WireStats(
            self.connections - earlier.connections,
            self.requests - earlier.requests,
            self.bytes_sent - earlier.bytes_sent,
            self.bytes_received - earlier.bytes_received,
            {
                host: count - earlier.per_host_requests.get(host, 0)
                for host, count in self.per_host_requests.items()
            },
            self.partition_blocked - earlier.partition_blocked,
            {
                pair: count - earlier.per_pair_blocked.get(pair, 0)
                for pair, count in self.per_pair_blocked.items()
            },
        )


@dataclass(frozen=True)
class PartitionSpec:
    """One active network partition between two host groups.

    ``mode`` selects the failure shape:

    - ``"full"``: no traffic crosses in either direction (the classic
      split-brain cut);
    - ``"oneway"``: traffic from ``side_a`` to ``side_b`` is cut, replies
      and independent calls the other way still flow (an asymmetric route
      loss — the shape that breaks naive heartbeat protocols);
    - ``"partial"``: each crossing attempt is dropped independently with
      probability ``loss`` (a flaky inter-region trunk), drawn from the
      network's seeded PRNG so runs stay reproducible.
    """

    side_a: frozenset[str]
    side_b: frozenset[str]
    mode: str = "full"
    loss: float = 1.0

    def blocks(self, source: str, host: str) -> bool:
        """Whether this spec (deterministically) cuts source -> host.

        Partial partitions are probabilistic and resolved by the caller;
        this returns whether the pair *crosses* the cut in a blocked
        direction.
        """
        if source in self.side_a and host in self.side_b:
            return True
        if self.mode != "oneway" and source in self.side_b and host in self.side_a:
            return True
        return False


Handler = Callable[[HttpRequest], HttpResponse]


class VirtualNetwork:
    """An in-process network of named hosts.

    Hosts are registered with a request handler (usually an
    :class:`repro.transport.server.HttpServer`).  ``send`` routes a request,
    advances the shared virtual clock by the modelled transfer time, updates
    :class:`WireStats`, and applies any injected failures.  Everything is
    deterministic: jitter comes from a seeded PRNG.
    """

    def __init__(self, clock: SimClock | None = None, *, seed: int = 0):
        self.clock = clock or SimClock()
        self.stats = WireStats()
        self._hosts: dict[str, Handler] = {}
        self._default_link = LinkSpec()
        self._links: dict[tuple[str, str], LinkSpec] = {}
        self._down: set[str] = set()
        self._fail_next: dict[str, int] = {}
        self._error_rate: dict[str, float] = {}
        self._latency_spike: dict[str, tuple[float, float]] = {}
        self._flapping: dict[str, tuple[float, float, float]] = {}
        self._partitions: dict[int, PartitionSpec] = {}
        self._partition_ids = itertools.count(1)
        self._jitter = 0.0
        self._rng = random.Random(seed)
        self._disks: dict[str, HostDisk] = {}
        #: the ambient observability bundle, if installed (see
        #: repro.observability.runtime.Observability.install); clients and
        #: services discover it here and instrument themselves
        self.observability = None

    # -- topology ------------------------------------------------------------

    def register(self, host: str, handler: Handler) -> None:
        """Attach a request handler to a host name."""
        self._hosts[host] = handler

    def unregister(self, host: str) -> None:
        self._hosts.pop(host, None)

    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def disk(self, host: str) -> HostDisk:
        """The host's durable disk (created on first access).

        Disks are keyed by host name and survive :meth:`take_down`,
        :meth:`bring_up`, and :meth:`unregister` — a restarted service
        attaches to the same disk its previous incarnation journaled to.
        """
        existing = self._disks.get(host)
        if existing is None:
            existing = self._disks[host] = HostDisk(host)
        return existing

    def disks(self) -> list[HostDisk]:
        """Every host disk created so far, host-name sorted (the simtest
        journal oracle walks these after restarts)."""
        return [self._disks[host] for host in sorted(self._disks)]

    def set_default_link(self, link: LinkSpec) -> None:
        self._default_link = link

    def set_link(self, src: str, dst: str, link: LinkSpec) -> None:
        """Override timing for the directed link src -> dst."""
        self._links[(src, dst)] = link

    def link(self, src: str, dst: str) -> LinkSpec:
        return self._links.get((src, dst), self._default_link)

    def set_jitter(self, fraction: float) -> None:
        """Multiply transfer times by ``1 ± U(0, fraction)`` (deterministic)."""
        self._jitter = max(0.0, fraction)

    # -- failure injection -----------------------------------------------------

    def take_down(self, host: str) -> None:
        """Make a host unreachable until :meth:`bring_up`.  Idempotent:
        taking a down host down again is a no-op."""
        self._down.add(host)

    def bring_up(self, host: str) -> None:
        """Restore a host (idempotent), cancelling any flapping schedule."""
        self._down.discard(host)
        self._flapping.pop(host, None)

    def fail_next(self, host: str, times: int = 1) -> None:
        """Inject *times* transport failures for the next requests to host.

        Counts decrement once per failed request and never go negative;
        injecting zero failures is a no-op rather than clearing prior ones.
        """
        if times < 0:
            raise ValueError(f"cannot inject {times} failures")
        if times:
            self._fail_next[host] = self._fail_next.get(host, 0) + times

    def pending_failures(self, host: str) -> int:
        """How many injected :meth:`fail_next` failures are still queued."""
        return self._fail_next.get(host, 0)

    def clear_failures(self, host: str) -> int:
        """Drop any queued :meth:`fail_next` charges for *host*; returns how
        many were still armed (the heal-everything cleanup path)."""
        return self._fail_next.pop(host, 0)

    def set_error_rate(self, host: str, rate: float) -> None:
        """Fail each request to *host* independently with probability *rate*
        (drawn from the seeded PRNG — deterministic across runs).  Rate 0
        clears the fault."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"error rate must be in [0, 1]: {rate}")
        if rate:
            self._error_rate[host] = rate
        else:
            self._error_rate.pop(host, None)

    def set_latency_spike(
        self, host: str, probability: float, magnitude: float
    ) -> None:
        """With *probability*, add *magnitude* virtual seconds to a request
        to *host* — a garbage-collection pause or queue blip, not an error.
        Probability 0 clears the fault."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"spike probability must be in [0, 1]: {probability}")
        if probability and magnitude > 0:
            self._latency_spike[host] = (probability, magnitude)
        else:
            self._latency_spike.pop(host, None)

    def set_flapping(
        self, host: str, up_for: float, down_for: float, start: float | None = None
    ) -> None:
        """Make a host alternate reachable/unreachable on a clock-driven
        cycle: up for *up_for* seconds, then down for *down_for*, repeating
        from *start* (default: now).  :meth:`bring_up` cancels the schedule."""
        if up_for <= 0 or down_for <= 0:
            raise ValueError("flap phases must be positive")
        base = self.clock.now if start is None else float(start)
        self._flapping[host] = (up_for, down_for, base)

    def partition(self, side_a: set[str], side_b: set[str]) -> int:
        """Cut all traffic between two groups of hosts (both directions).
        Client sources count as hosts for membership purposes.  Returns a
        partition id for selective healing via :meth:`heal_partition`."""
        return self._add_partition(PartitionSpec(frozenset(side_a), frozenset(side_b)))

    def partition_oneway(self, src_side: set[str], dst_side: set[str]) -> int:
        """Cut only traffic *from* ``src_side`` *to* ``dst_side`` (asymmetric:
        the reverse direction still flows).  Returns a partition id."""
        return self._add_partition(
            PartitionSpec(frozenset(src_side), frozenset(dst_side), mode="oneway")
        )

    def partition_partial(
        self, side_a: set[str], side_b: set[str], loss: float
    ) -> int:
        """Drop each crossing attempt independently with probability *loss*
        (both directions, seeded PRNG).  Returns a partition id."""
        if not 0.0 < loss <= 1.0:
            raise ValueError(f"partial-partition loss must be in (0, 1]: {loss}")
        return self._add_partition(
            PartitionSpec(frozenset(side_a), frozenset(side_b), mode="partial",
                          loss=loss)
        )

    def _add_partition(self, spec: PartitionSpec) -> int:
        partition_id = next(self._partition_ids)
        self._partitions[partition_id] = spec
        return partition_id

    def heal_partition(self, partition_id: int) -> bool:
        """Remove one partition by id; returns whether it was active."""
        return self._partitions.pop(partition_id, None) is not None

    def heal_partitions(self) -> None:
        """Remove every network partition."""
        self._partitions.clear()

    def active_partitions(self) -> list[tuple[int, PartitionSpec]]:
        """The live partitions as (id, spec), id-sorted (for drills/portlets)."""
        return sorted(self._partitions.items())

    def is_up(self, host: str) -> bool:
        """Whether the host is currently reachable (down set + flap phase)."""
        if host in self._down:
            return False
        flap = self._flapping.get(host)
        if flap is not None:
            up_for, down_for, base = flap
            phase = (self.clock.now - base) % (up_for + down_for)
            if phase >= up_for:
                return False
        return True

    def _partitioned(self, source: str, host: str) -> bool:
        """Whether an attempt source -> host is cut right now.

        Full and one-way partitions block deterministically; a partial
        partition draws from the seeded PRNG per attempt (so two same-seed
        runs drop the same attempts).
        """
        for partition_id in sorted(self._partitions):
            spec = self._partitions[partition_id]
            if spec.mode == "partial":
                crosses = (source in spec.side_a and host in spec.side_b) or (
                    source in spec.side_b and host in spec.side_a
                )
                if crosses and self._rng.random() < spec.loss:
                    return True
            elif spec.blocks(source, host):
                return True
        return False

    def _note_partition_block(self, source: str, host: str) -> None:
        self.stats.partition_blocked += 1
        pair = f"{source}->{host}"
        self.stats.per_pair_blocked[pair] = (
            self.stats.per_pair_blocked.get(pair, 0) + 1
        )

    # -- the wire ------------------------------------------------------------

    def send(
        self,
        request: HttpRequest,
        *,
        source: str = "client",
        new_connection: bool = True,
    ) -> HttpResponse:
        """Deliver a request and return the response, advancing the clock.

        ``new_connection=False`` models a kept-alive connection (no
        connection-setup latency); the HTTP client below manages this and the
        xml_call experiment (C2) depends on it.
        """
        host = request.url.host
        if host not in self._hosts:
            raise TransportError(f"no route to host {host!r}")
        self.stats.requests += 1
        self.stats.per_host_requests[host] = (
            self.stats.per_host_requests.get(host, 0) + 1
        )
        if not self.is_up(host):
            raise TransportError(f"host {host!r} is down")
        if self._partitioned(source, host):
            self._note_partition_block(source, host)
            raise TransportError(
                f"network partition between {source!r} and {host!r}"
            )
        remaining = self._fail_next.get(host, 0)
        if remaining > 0:
            if remaining == 1:
                self._fail_next.pop(host)
            else:
                self._fail_next[host] = remaining - 1
            raise TransportError(f"injected transport failure contacting {host!r}")
        error_rate = self._error_rate.get(host, 0.0)
        if error_rate and self._rng.random() < error_rate:
            raise TransportError(f"transient transport failure contacting {host!r}")

        link = self.link(source, host)
        forward = 0.0
        if new_connection:
            self.stats.connections += 1
            forward += link.connect_latency
        forward += link.transfer_time(request.size)
        spike = self._latency_spike.get(host)
        if spike is not None and self._rng.random() < spike[0]:
            forward += spike[1]
        factor = (
            1.0 + self._rng.uniform(-self._jitter, self._jitter)
            if self._jitter
            else 1.0
        )

        # the clock advances by the forward-path time *before* the handler
        # runs, so the server observes the request's true arrival time (this
        # is what lets it shed work whose deadline passed in flight)
        self.clock.advance(forward * factor)
        self.stats.bytes_sent += request.size

        response = self._hosts[host](request)

        back = self.link(host, source).transfer_time(response.size)
        self.clock.advance(back * factor)
        self.stats.bytes_received += response.size
        return response

    def reset_stats(self) -> None:
        self.stats = WireStats()
