"""The virtual network: hosts, links, wire accounting, failure injection."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.transport.clock import SimClock
from repro.transport.http import HttpRequest, HttpResponse


class TransportError(ConnectionError):
    """A network-level failure (host down, injected fault, no route)."""


@dataclass
class LinkSpec:
    """Timing parameters of a (directed) link between two hosts.

    ``connect_latency`` models TCP(+TLS/GSI handshake) setup and is paid once
    per *connection*; ``latency`` is the one-way propagation delay paid per
    message; ``bandwidth`` (bytes/second) converts message size to serialization
    delay.  Defaults approximate a 2002 wide-area path between IU and SDSC.
    """

    latency: float = 0.020
    bandwidth: float = 1.25e6  # 10 Mbit/s
    connect_latency: float = 0.060

    def transfer_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.bandwidth


@dataclass
class WireStats:
    """Cumulative wire accounting for benchmarks and tests."""

    connections: int = 0
    requests: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    per_host_requests: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> "WireStats":
        return WireStats(
            self.connections,
            self.requests,
            self.bytes_sent,
            self.bytes_received,
            dict(self.per_host_requests),
        )

    def delta(self, earlier: "WireStats") -> "WireStats":
        """Stats accumulated since an earlier :meth:`snapshot`."""
        return WireStats(
            self.connections - earlier.connections,
            self.requests - earlier.requests,
            self.bytes_sent - earlier.bytes_sent,
            self.bytes_received - earlier.bytes_received,
            {
                host: count - earlier.per_host_requests.get(host, 0)
                for host, count in self.per_host_requests.items()
            },
        )


Handler = Callable[[HttpRequest], HttpResponse]


class VirtualNetwork:
    """An in-process network of named hosts.

    Hosts are registered with a request handler (usually an
    :class:`repro.transport.server.HttpServer`).  ``send`` routes a request,
    advances the shared virtual clock by the modelled transfer time, updates
    :class:`WireStats`, and applies any injected failures.  Everything is
    deterministic: jitter comes from a seeded PRNG.
    """

    def __init__(self, clock: SimClock | None = None, *, seed: int = 0):
        self.clock = clock or SimClock()
        self.stats = WireStats()
        self._hosts: dict[str, Handler] = {}
        self._default_link = LinkSpec()
        self._links: dict[tuple[str, str], LinkSpec] = {}
        self._down: set[str] = set()
        self._fail_next: dict[str, int] = {}
        self._jitter = 0.0
        self._rng = random.Random(seed)

    # -- topology ------------------------------------------------------------

    def register(self, host: str, handler: Handler) -> None:
        """Attach a request handler to a host name."""
        self._hosts[host] = handler

    def unregister(self, host: str) -> None:
        self._hosts.pop(host, None)

    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def set_default_link(self, link: LinkSpec) -> None:
        self._default_link = link

    def set_link(self, src: str, dst: str, link: LinkSpec) -> None:
        """Override timing for the directed link src -> dst."""
        self._links[(src, dst)] = link

    def link(self, src: str, dst: str) -> LinkSpec:
        return self._links.get((src, dst), self._default_link)

    def set_jitter(self, fraction: float) -> None:
        """Multiply transfer times by ``1 ± U(0, fraction)`` (deterministic)."""
        self._jitter = max(0.0, fraction)

    # -- failure injection -----------------------------------------------------

    def take_down(self, host: str) -> None:
        """Make a host unreachable until :meth:`bring_up`."""
        self._down.add(host)

    def bring_up(self, host: str) -> None:
        self._down.discard(host)

    def fail_next(self, host: str, times: int = 1) -> None:
        """Inject *times* transport failures for the next requests to host."""
        self._fail_next[host] = self._fail_next.get(host, 0) + times

    # -- the wire ------------------------------------------------------------

    def send(
        self,
        request: HttpRequest,
        *,
        source: str = "client",
        new_connection: bool = True,
    ) -> HttpResponse:
        """Deliver a request and return the response, advancing the clock.

        ``new_connection=False`` models a kept-alive connection (no
        connection-setup latency); the HTTP client below manages this and the
        xml_call experiment (C2) depends on it.
        """
        host = request.url.host
        if host not in self._hosts:
            raise TransportError(f"no route to host {host!r}")
        if host in self._down:
            raise TransportError(f"host {host!r} is down")
        if self._fail_next.get(host, 0) > 0:
            self._fail_next[host] -= 1
            raise TransportError(f"injected transport failure contacting {host!r}")

        link = self.link(source, host)
        elapsed = 0.0
        if new_connection:
            self.stats.connections += 1
            elapsed += link.connect_latency
        elapsed += link.transfer_time(request.size)

        self.stats.requests += 1
        self.stats.bytes_sent += request.size
        self.stats.per_host_requests[host] = (
            self.stats.per_host_requests.get(host, 0) + 1
        )

        response = self._hosts[host](request)

        back = self.link(host, source)
        elapsed += back.transfer_time(response.size)
        if self._jitter:
            elapsed *= 1.0 + self._rng.uniform(-self._jitter, self._jitter)
        self.clock.advance(elapsed)
        self.stats.bytes_received += response.size
        return response

    def reset_stats(self) -> None:
        self.stats = WireStats()
