"""A virtual clock.

All latency in the simulated network advances this clock rather than sleeping,
so benchmarks measure both real CPU cost (wall time of the in-process work)
and modelled network cost (virtual seconds) independently and depend on no
real timers.
"""

from __future__ import annotations


class SimClock:
    """Monotonic virtual time in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance time by a non-negative duration; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._now += seconds
        return self._now

    def reset(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
