"""A virtual clock.

All latency in the simulated network advances this clock rather than sleeping,
so benchmarks measure both real CPU cost (wall time of the in-process work)
and modelled network cost (virtual seconds) independently and depend on no
real timers.
"""

from __future__ import annotations


class SimClock:
    """Monotonic virtual time in seconds.

    ``advance`` uses Kahan (compensated) summation so that millions of tiny
    increments — a retry policy backing off in 1 ms steps, say — do not
    accumulate float rounding drift relative to the mathematically exact sum.
    """

    def __init__(self, start: float = 0.0):
        #: current virtual time — a plain attribute, not a property: every
        #: traced call reads it ~10 times (span starts/ends, RED samples,
        #: transport stamps), and descriptor dispatch at that rate shows
        #: up in the dispatch benchmark.  Treat as read-only; advance via
        #: :meth:`advance` / :meth:`sleep_until`.
        self.now = float(start)
        self._comp = 0.0  # Kahan compensation term

    def advance(self, seconds: float) -> float:
        """Advance time by a non-negative duration; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        y = seconds - self._comp
        t = self.now + y
        self._comp = (t - self.now) - y
        # compensation can momentarily make t dip below now by < 1 ulp;
        # clamp so time never runs backwards
        if t >= self.now:
            self.now = t
        return self.now

    def sleep_until(self, t: float) -> float:
        """Advance to absolute time *t* (no-op if *t* is in the past);
        returns the new time.  The virtual analogue of sleeping until a
        deadline or a breaker cooldown expiry."""
        if t > self.now:
            self.now = float(t)
            self._comp = 0.0
        return self.now

    def reset(self, start: float = 0.0) -> None:
        self.now = float(start)
        self._comp = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self.now:.6f})"
