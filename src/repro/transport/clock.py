"""A virtual clock.

All latency in the simulated network advances this clock rather than sleeping,
so benchmarks measure both real CPU cost (wall time of the in-process work)
and modelled network cost (virtual seconds) independently and depend on no
real timers.
"""

from __future__ import annotations


class SimClock:
    """Monotonic virtual time in seconds.

    ``advance`` uses Kahan (compensated) summation so that millions of tiny
    increments — a retry policy backing off in 1 ms steps, say — do not
    accumulate float rounding drift relative to the mathematically exact sum.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._comp = 0.0  # Kahan compensation term

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance time by a non-negative duration; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        y = seconds - self._comp
        t = self._now + y
        self._comp = (t - self._now) - y
        # compensation can momentarily make t dip below now by < 1 ulp;
        # clamp so time never runs backwards
        self._now = t if t >= self._now else self._now
        return self._now

    def sleep_until(self, t: float) -> float:
        """Advance to absolute time *t* (no-op if *t* is in the past);
        returns the new time.  The virtual analogue of sleeping until a
        deadline or a breaker cooldown expiry."""
        if t > self._now:
            self._now = float(t)
            self._comp = 0.0
        return self._now

    def reset(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._comp = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
