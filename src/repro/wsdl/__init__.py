"""WSDL 1.1-subset support.

The paper's interoperability method is: "we agreed to a common service
interface [in WSDL] ... and developed clients" independently.  This package
provides the pieces of that workflow:

- :mod:`repro.wsdl.model` — WSDL document model, generation from a live
  :class:`repro.soap.SoapService`, XML serialization, and parsing.
- :mod:`repro.wsdl.proxy` — publishing a WSDL document at an HTTP URL and
  building a dynamic :class:`repro.soap.SoapClient` from a (possibly remote)
  WSDL document, which is the "bind to the SSP" step of Figure 1.
"""

from repro.wsdl.model import (
    WsdlDocument,
    WsdlOperation,
    WsdlPart,
    generate_wsdl,
    parse_wsdl,
)
from repro.wsdl.proxy import client_from_wsdl, fetch_wsdl, publish_wsdl

__all__ = [
    "WsdlDocument",
    "WsdlOperation",
    "WsdlPart",
    "generate_wsdl",
    "parse_wsdl",
    "client_from_wsdl",
    "fetch_wsdl",
    "publish_wsdl",
]
