"""Publishing WSDL and binding clients from it (Figure 1's discovery flow)."""

from __future__ import annotations

from repro.soap.client import SoapClient
from repro.transport.client import HttpClient
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer
from repro.wsdl.model import WsdlDocument, parse_wsdl


def publish_wsdl(server: HttpServer, document: WsdlDocument, path: str) -> str:
    """Serve a WSDL document at ``http://<host><path>``; returns that URL.

    "The UDDI maintains links to the service providers' WSDL files" — those
    links point at URLs produced here.
    """
    text = document.serialize()

    def handler(request: HttpRequest) -> HttpResponse:
        return HttpResponse(200, {"Content-Type": "text/xml"}, text)

    server.mount(path, handler)
    return f"http://{server.host}{path}"


def fetch_wsdl(
    network: VirtualNetwork, url: str, *, source: str = "client"
) -> WsdlDocument:
    """Download and parse a WSDL document from the virtual network."""
    response = HttpClient(network, source).get(url)
    if not response.ok:
        raise ConnectionError(f"fetching WSDL {url} failed: HTTP {response.status}")
    return parse_wsdl(response.body)


def client_from_wsdl(
    network: VirtualNetwork,
    document: WsdlDocument | str,
    *,
    source: str = "client",
    http_client: HttpClient | None = None,
) -> SoapClient:
    """Bind a dynamic client proxy from a WSDL document (or its URL).

    This is the "client examines the UDDI for the desired service and then
    binds to the SSP" step: the returned proxy exposes every WSDL operation
    as a callable attribute.
    """
    if isinstance(document, str):
        document = fetch_wsdl(network, document, source=source)
    if not document.endpoint:
        raise ValueError("WSDL document has no soap:address endpoint")
    client = SoapClient(
        network,
        document.endpoint,
        document.target_namespace,
        source=source,
        http_client=http_client,
    )
    # attach the interface description for callers that introspect it
    client.wsdl = document  # type: ignore[attr-defined]
    return client
