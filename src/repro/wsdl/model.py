"""WSDL document model, generation, serialization, and parsing."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmlutil.element import XmlElement, parse_xml
from repro.xmlutil.qname import QName

WSDL_NS = "http://schemas.xmlsoap.org/wsdl/"
WSDL_SOAP_NS = "http://schemas.xmlsoap.org/wsdl/soap/"


@dataclass
class WsdlPart:
    """One message part: a named, xsd-typed parameter or return value."""

    name: str
    type: str = "xsd:anyType"


@dataclass
class WsdlOperation:
    """One portType operation with its input/output messages."""

    name: str
    documentation: str = ""
    inputs: list[WsdlPart] = field(default_factory=list)
    output: WsdlPart = field(default_factory=lambda: WsdlPart("return"))


@dataclass
class WsdlDocument:
    """A WSDL 1.1 ``definitions`` document (RPC/encoded style).

    The paper's services are single-interface: one portType, one SOAP
    binding, one service port.  ``endpoint`` is the SOAP address location.
    """

    service_name: str
    target_namespace: str
    endpoint: str
    operations: list[WsdlOperation] = field(default_factory=list)
    documentation: str = ""

    def operation(self, name: str) -> WsdlOperation | None:
        for op in self.operations:
            if op.name == name:
                return op
        return None

    def operation_names(self) -> list[str]:
        return [op.name for op in self.operations]

    # -- serialization ---------------------------------------------------------

    def to_xml(self) -> XmlElement:
        root = XmlElement(QName(WSDL_NS, "definitions"))
        root.set("name", self.service_name)
        root.set("targetNamespace", self.target_namespace)
        if self.documentation:
            root.child(QName(WSDL_NS, "documentation"), text=self.documentation)

        for op in self.operations:
            request = root.child(QName(WSDL_NS, "message"))
            request.set("name", f"{op.name}Request")
            for part in op.inputs:
                part_el = request.child(QName(WSDL_NS, "part"))
                part_el.set("name", part.name).set("type", part.type)
            response = root.child(QName(WSDL_NS, "message"))
            response.set("name", f"{op.name}Response")
            out = response.child(QName(WSDL_NS, "part"))
            out.set("name", op.output.name).set("type", op.output.type)

        port_type = root.child(QName(WSDL_NS, "portType"))
        port_type.set("name", f"{self.service_name}PortType")
        for op in self.operations:
            op_el = port_type.child(QName(WSDL_NS, "operation"))
            op_el.set("name", op.name)
            if op.documentation:
                op_el.child(QName(WSDL_NS, "documentation"), text=op.documentation)
            op_el.child(QName(WSDL_NS, "input")).set(
                "message", f"tns:{op.name}Request"
            )
            op_el.child(QName(WSDL_NS, "output")).set(
                "message", f"tns:{op.name}Response"
            )

        binding = root.child(QName(WSDL_NS, "binding"))
        binding.set("name", f"{self.service_name}SoapBinding")
        binding.set("type", f"tns:{self.service_name}PortType")
        soap_binding = binding.child(QName(WSDL_SOAP_NS, "binding"))
        soap_binding.set("style", "rpc")
        soap_binding.set("transport", "http://schemas.xmlsoap.org/soap/http")
        for op in self.operations:
            op_el = binding.child(QName(WSDL_NS, "operation"))
            op_el.set("name", op.name)
            op_el.child(QName(WSDL_SOAP_NS, "operation")).set(
                "soapAction", f"{self.target_namespace}#{op.name}"
            )

        service = root.child(QName(WSDL_NS, "service"))
        service.set("name", self.service_name)
        port = service.child(QName(WSDL_NS, "port"))
        port.set("name", f"{self.service_name}Port")
        port.set("binding", f"tns:{self.service_name}SoapBinding")
        port.child(QName(WSDL_SOAP_NS, "address")).set("location", self.endpoint)
        return root

    def serialize(self, indent: int | None = 2) -> str:
        return self.to_xml().serialize(indent=indent, declaration=True)


def generate_wsdl(service, endpoint: str) -> WsdlDocument:
    """Generate a WSDL document from a live :class:`repro.soap.SoapService`.

    Parameter types default to ``xsd:anyType`` — the string-heavy interfaces
    the paper favours serialize faithfully under the SOAP-encoding layer
    regardless, and the typed SOAP encoding carries ``xsi:type`` hints.
    """
    operations = [
        WsdlOperation(
            name=exposed.name,
            documentation=exposed.doc,
            inputs=[WsdlPart(param) for param in exposed.param_names],
        )
        for exposed in service.methods.values()
    ]
    return WsdlDocument(
        service_name=service.name,
        target_namespace=service.namespace,
        endpoint=endpoint,
        operations=operations,
    )


def parse_wsdl(source: str | XmlElement) -> WsdlDocument:
    """Parse a WSDL document back into the model."""
    root = parse_xml(source) if isinstance(source, str) else source
    if root.tag != QName(WSDL_NS, "definitions"):
        raise ValueError(f"not a WSDL definitions document: {root.tag}")

    messages: dict[str, list[WsdlPart]] = {}
    for message in root.findall(QName(WSDL_NS, "message")):
        parts = [
            WsdlPart(p.get("name", "") or "", p.get("type", "xsd:anyType") or "xsd:anyType")
            for p in message.findall(QName(WSDL_NS, "part"))
        ]
        messages[message.get("name", "") or ""] = parts

    operations: list[WsdlOperation] = []
    port_type = root.find(QName(WSDL_NS, "portType"))
    if port_type is not None:
        for op_el in port_type.findall(QName(WSDL_NS, "operation")):
            name = op_el.get("name", "") or ""
            doc = op_el.findtext(QName(WSDL_NS, "documentation")).strip()
            input_el = op_el.find(QName(WSDL_NS, "input"))
            output_el = op_el.find(QName(WSDL_NS, "output"))
            inputs: list[WsdlPart] = []
            output = WsdlPart("return")
            if input_el is not None:
                ref = (input_el.get("message", "") or "").split(":", 1)[-1]
                inputs = messages.get(ref, [])
            if output_el is not None:
                ref = (output_el.get("message", "") or "").split(":", 1)[-1]
                outs = messages.get(ref, [])
                if outs:
                    output = outs[0]
            operations.append(WsdlOperation(name, doc, inputs, output))

    endpoint = ""
    service_el = root.find(QName(WSDL_NS, "service"))
    service_name = root.get("name", "") or ""
    if service_el is not None:
        service_name = service_el.get("name", service_name) or service_name
        port = service_el.find(QName(WSDL_NS, "port"))
        if port is not None:
            address = port.find(QName(WSDL_SOAP_NS, "address"))
            if address is not None:
                endpoint = address.get("location", "") or ""

    return WsdlDocument(
        service_name=service_name,
        target_namespace=root.get("targetNamespace", "") or "",
        endpoint=endpoint,
        operations=operations,
        documentation=root.findtext(QName(WSDL_NS, "documentation")).strip(),
    )
