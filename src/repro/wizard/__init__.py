"""The schema wizard (Figure 3).

"A Java class (SchemaParser ...) is initialized with a URL for the desired
schema ... creates an in-memory representation of the schema using Castor's
Schema Object Model ... also invokes Castor's source generator to create
Java classes that are data bindings for the schema ... we can also automate
the view ... by defining JSP templates (in Velocity) for several different
schema constituent types: single simple types, enumerated simple types,
unbounded simple types, and complex types."

The pipeline here is stage-for-stage the same:

  XSD (URL or object) -> SOM -> generated binding classes
                              -> Velocity-style nuggets -> an XHTML form page
                              -> deployed web application (render + save)

with the round trip: submitted forms marshal to schema instances, and "old
instances can be read in and unmarshaled to fill out the form elements."
"""

from repro.wizard.templates import wizard_templates
from repro.wizard.generator import SchemaWizard, WizardWebApp

__all__ = ["wizard_templates", "SchemaWizard", "WizardWebApp"]
