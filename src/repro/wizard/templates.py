"""The wizard's view templates, one per schema constituent type.

Exactly the four constituent types the paper lists — single simple,
enumerated simple, unbounded simple, and complex — plus the page shell that
assembles the nuggets (the analogue of the ``<%@ include %>`` directives).
"""

from __future__ import annotations

from repro.template.engine import TemplateLoader

SIMPLE_SINGLE = """\
<p class="field">
  <label for="$!name">$!label</label>
  <input type="text" name="$!name" id="$!name" value="$!value"/>#if($doc) <span class="doc">$!doc</span>#end
</p>
"""

SIMPLE_ENUMERATED = """\
<p class="field">
  <label for="$!name">$!label</label>
  <select name="$!name" id="$!name">
#foreach($opt in $options)    <option value="$!opt.value"#if($opt.selected) selected="selected"#end>$!opt.value</option>
#end  </select>#if($doc) <span class="doc">$!doc</span>#end
</p>
"""

SIMPLE_UNBOUNDED = """\
<p class="field">
  <label for="$!name">$!label (one per line)</label>
  <textarea name="$!name" id="$!name" rows="4" cols="40">$!value</textarea>#if($doc) <span class="doc">$!doc</span>#end
</p>
"""

COMPLEX_OPEN = """\
<fieldset class="complex">
  <legend>$!label</legend>#if($doc) <span class="doc">$!doc</span>#end
"""

COMPLEX_CLOSE = """\
</fieldset>
"""

PAGE = """\
<html>
<head><title>$!title</title></head>
<body>
<h1>$!title</h1>
#if($instances)<div class="instances">
<p>Saved instances:</p>
<ul>
#foreach($inst in $instances)  <li><a href="$!base?instance=$!inst">$!inst</a></li>
#end</ul>
</div>
#end<form method="POST" action="$!action">
<p class="field"><label for="instanceName">Instance name</label>
<input type="text" name="instanceName" id="instanceName" value="$!instanceName"/></p>
$body<p><input type="submit" value="Save"/></p>
</form>
</body>
</html>
"""

SAVED = """\
<html>
<head><title>$!title</title></head>
<body>
<h1>Saved</h1>
<p>Instance <b>$!instanceName</b> saved#if($valid) and validated#else with $issueCount validation issue(s)#end.</p>
#if($issues)<ul class="issues">
#foreach($issue in $issues)  <li>$!issue</li>
#end</ul>
#end<p><a href="$!base">Back to the form</a></p>
</body>
</html>
"""


def wizard_templates() -> TemplateLoader:
    """The standard wizard template set."""
    return TemplateLoader(
        {
            "simple_single": SIMPLE_SINGLE,
            "simple_enumerated": SIMPLE_ENUMERATED,
            "simple_unbounded": SIMPLE_UNBOUNDED,
            "complex_open": COMPLEX_OPEN,
            "complex_close": COMPLEX_CLOSE,
            "page": PAGE,
            "saved": SAVED,
        }
    )
