"""The SchemaParser/wizard pipeline and its deployed web application."""

from __future__ import annotations


from repro.faults import SchemaError
from repro.template.engine import TemplateLoader
from repro.transport.client import HttpClient
from repro.transport.http import HttpRequest, HttpResponse, encode_query
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer
from repro.wizard.templates import wizard_templates
from repro.xmlutil.binding import BoundObject, bind_schema
from repro.xmlutil.element import XmlElement, parse_xml
from repro.xmlutil.schema import (
    ElementType,
    XsdComplexType,
    XsdElement,
    XsdSchema,
    XsdSimpleType,
    parse_schema,
)
from repro.xmlutil.validation import SchemaValidator


class SchemaWizard:
    """The SchemaParser analogue: schema in, form pages + data classes out.

    ``SchemaWizard(network).load(url)`` fetches and validates the schema
    (stage 1), ``classes()`` runs the source generator (stage 2),
    ``render_form(...)`` runs the template engine over the SOM (stage 3),
    and ``deploy(...)`` mounts the result as a web application (stage 4).
    """

    def __init__(
        self,
        network: VirtualNetwork | None = None,
        *,
        templates: TemplateLoader | None = None,
        source_host: str = "wizard-client",
    ):
        self.network = network
        self.templates = templates or wizard_templates()
        self.source_host = source_host
        self.schema: XsdSchema | None = None
        self._classes: dict[str, type[BoundObject]] | None = None

    # -- stage 1: load and validate the schema, build the SOM --------------------

    def load(self, source: str | XsdSchema) -> XsdSchema:
        """Accepts a schema URL (fetched over the network), an XSD document
        string, or an already-built SOM."""
        if isinstance(source, XsdSchema):
            self.schema = source.resolve()
        elif source.startswith("http://") or source.startswith("https://"):
            if self.network is None:
                raise SchemaError("wizard has no network to fetch the schema URL")
            response = HttpClient(self.network, self.source_host).get(source)
            if not response.ok:
                raise SchemaError(
                    f"fetching schema {source} failed: HTTP {response.status}"
                )
            self.schema = parse_schema(response.body)
        else:
            try:
                self.schema = parse_schema(source)
            except ValueError as exc:
                raise SchemaError(f"invalid schema document: {exc}") from exc
        self._classes = None
        return self.schema

    def _require_schema(self) -> XsdSchema:
        if self.schema is None:
            raise SchemaError("no schema loaded")
        return self.schema

    # -- stage 2: the source generator --------------------------------------------

    def classes(self, package: str = "") -> dict[str, type[BoundObject]]:
        """Generate (and cache) the data-binding classes — "one JavaBean
        class per schema element"."""
        if self._classes is None:
            self._classes = bind_schema(self._require_schema(), class_prefix=package)
        return self._classes

    # -- stage 3: the view — map the SOM onto templates ---------------------------------

    def _constituent(self, etype: ElementType) -> str:
        """Classify an element type into the four templated kinds."""
        schema = self._require_schema()
        etype = schema.resolve_type(etype)
        if isinstance(etype, XsdComplexType):
            return "complex"
        if isinstance(etype, XsdSimpleType) and etype.enumeration:
            return "enumerated"
        return "simple"

    def field_names(self, root: str) -> list[str]:
        """The dotted form-field names the generated form will contain."""
        names: list[str] = []

        def visit(decl: XsdElement, path: str) -> None:
            schema = self._require_schema()
            etype = schema.resolve_type(decl.type)
            if isinstance(etype, XsdComplexType):
                for attr in etype.attributes:
                    names.append(f"{path}.@{attr.name}")
                for child in etype.sequence:
                    visit(child, f"{path}.{child.name}")
            else:
                names.append(path)

        root_decl = self._root_decl(root)
        visit(root_decl, root_decl.name)
        return names

    def _root_decl(self, root: str) -> XsdElement:
        schema = self._require_schema()
        decl = schema.find_element(root)
        if decl is None:
            raise SchemaError(f"schema has no global element {root!r}")
        return decl

    def render_form_body(
        self, root: str, values: dict[str, str] | None = None
    ) -> str:
        """Render the nugget stack for the root element (no page shell)."""
        values = values or {}
        parts: list[str] = []
        self._render_element(self._root_decl(root), self._root_decl(root).name,
                             parts, values)
        return "".join(parts)

    def _render_element(
        self,
        decl: XsdElement,
        path: str,
        parts: list[str],
        values: dict[str, str],
    ) -> None:
        schema = self._require_schema()
        etype = schema.resolve_type(decl.type)
        label = decl.name
        doc = decl.documentation
        if isinstance(etype, XsdComplexType):
            parts.append(
                self.templates.render(
                    "complex_open", label=label, doc=doc or etype.documentation
                )
            )
            for attr in etype.attributes:
                parts.append(
                    self.templates.render(
                        "simple_single",
                        name=f"{path}.@{attr.name}",
                        label=f"{attr.name} (attribute)",
                        value=values.get(f"{path}.@{attr.name}", attr.default or ""),
                        doc=attr.documentation,
                    )
                )
            for child in etype.sequence:
                self._render_element(child, f"{path}.{child.name}", parts, values)
            parts.append(self.templates.render("complex_close"))
            return
        value = values.get(path, decl.default or "")
        if decl.repeated:
            parts.append(
                self.templates.render(
                    "simple_unbounded", name=path, label=label, value=value, doc=doc
                )
            )
            return
        if isinstance(etype, XsdSimpleType) and etype.enumeration:
            selected = value or (etype.enumeration[0] if etype.enumeration else "")
            options = [
                {"value": option, "selected": option == selected}
                for option in etype.enumeration
            ]
            parts.append(
                self.templates.render(
                    "simple_enumerated", name=path, label=label,
                    options=options, doc=doc,
                )
            )
            return
        parts.append(
            self.templates.render(
                "simple_single", name=path, label=label, value=value, doc=doc
            )
        )

    def render_page(
        self,
        root: str,
        *,
        action: str,
        base: str,
        title: str = "",
        values: dict[str, str] | None = None,
        instances: list[str] | None = None,
        instance_name: str = "",
    ) -> str:
        """Assemble the final page from nuggets (the JSP-include step)."""
        return self.templates.render(
            "page",
            title=title or f"{root} editor",
            action=action,
            base=base,
            body=self.render_form_body(root, values),
            instances=instances or [],
            instanceName=instance_name,
        )

    # -- the form <-> instance round trip ------------------------------------------------

    def form_to_instance(self, root: str, form: dict[str, str]) -> XmlElement:
        """Marshal submitted form fields back to an XML schema instance."""
        decl = self._root_decl(root)
        return self._build_element(decl, decl.name, form)

    def _build_element(
        self, decl: XsdElement, path: str, form: dict[str, str]
    ) -> XmlElement:
        schema = self._require_schema()
        etype = schema.resolve_type(decl.type)
        node = XmlElement(decl.name)
        if isinstance(etype, XsdComplexType):
            for attr in etype.attributes:
                raw = form.get(f"{path}.@{attr.name}", attr.default or "")
                if raw or attr.required:
                    node.set(attr.name, raw)
            for child in etype.sequence:
                child_path = f"{path}.{child.name}"
                if self._constituent(child.type) == "complex":
                    touched = any(
                        key.startswith(child_path + ".") and value.strip()
                        for key, value in form.items()
                    )
                    if touched or child.min_occurs > 0:
                        node.append(self._build_element(child, child_path, form))
                    continue
                raw = form.get(child_path, "")
                if child.repeated:
                    items = [line.strip() for line in raw.splitlines() if line.strip()]
                    for item in items:
                        node.child(child.name, text=item)
                elif raw:
                    node.child(child.name, text=raw)
                elif child.min_occurs > 0:
                    node.child(child.name, text=child.default or "")
            return node
        raw = form.get(path, decl.default or "")
        node.set_text(raw)
        return node

    def instance_to_values(self, root: str, instance: XmlElement) -> dict[str, str]:
        """Flatten an instance back into form values (loading old sessions)."""
        values: dict[str, str] = {}

        def visit(decl: XsdElement, node: XmlElement, path: str) -> None:
            schema = self._require_schema()
            etype = schema.resolve_type(decl.type)
            if isinstance(etype, XsdComplexType):
                for attr in etype.attributes:
                    raw = node.get(attr.name)
                    if raw is not None:
                        values[f"{path}.@{attr.name}"] = raw
                for child in etype.sequence:
                    matches = node.findall(child.name)
                    child_path = f"{path}.{child.name}"
                    if not matches:
                        continue
                    if isinstance(schema.resolve_type(child.type), XsdComplexType):
                        visit(child, matches[0], child_path)
                    elif child.repeated:
                        values[child_path] = "\n".join(m.text for m in matches)
                    else:
                        values[child_path] = matches[0].text
            else:
                values[path] = node.text

        decl = self._root_decl(root)
        visit(decl, instance, decl.name)
        return values

    # -- stage 4: deploy as a web application ---------------------------------------------

    def deploy(
        self,
        server: HttpServer,
        project: str,
        root: str,
        *,
        title: str = "",
    ) -> "WizardWebApp":
        """Mount the generated form as ``/webapps/<project>`` on *server*
        (the ``$TOMCAT_HOME/webapps/<project_name>`` step)."""
        app = WizardWebApp(self, server.host, project, root, title=title)
        server.mount(f"/webapps/{project}", app.handle)
        return app


class WizardWebApp:
    """The deployed form application: GET renders, POST saves instances."""

    def __init__(
        self,
        wizard: SchemaWizard,
        host: str,
        project: str,
        root: str,
        *,
        title: str = "",
    ):
        self.wizard = wizard
        self.host = host
        self.project = project
        self.root = root
        self.title = title or f"{project}: {root}"
        self.base_path = f"/webapps/{project}"
        self.instances: dict[str, str] = {}  # name -> serialized XML
        self.saves = 0

    # -- request handling --------------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        if request.method == "GET":
            return self._render(request)
        if request.method == "POST":
            return self._save(request)
        return HttpResponse(405, body="GET or POST only")

    def _render(self, request: HttpRequest) -> HttpResponse:
        params = request.form()
        values: dict[str, str] = {}
        instance_name = params.get("instance", "")
        if instance_name and instance_name in self.instances:
            instance = parse_xml(self.instances[instance_name])
            values = self.wizard.instance_to_values(self.root, instance)
        page = self.wizard.render_page(
            self.root,
            action=f"{self.base_path}/save",
            base=self.base_path,
            title=self.title,
            values=values,
            instances=sorted(self.instances),
            instance_name=instance_name,
        )
        return HttpResponse(200, {"Content-Type": "text/html"}, page)

    def _save(self, request: HttpRequest) -> HttpResponse:
        form = request.form()
        name = form.get("instanceName", "") or f"instance-{self.saves + 1}"
        instance = self.wizard.form_to_instance(self.root, form)
        issues = SchemaValidator(self.wizard._require_schema()).validate(instance)
        self.instances[name] = instance.serialize(declaration=True)
        self.saves += 1
        page = self.wizard.templates.render(
            "saved",
            title=self.title,
            instanceName=name,
            base=self.base_path,
            valid=not issues,
            issueCount=len(issues),
            issues=[str(issue) for issue in issues],
        )
        return HttpResponse(200, {"Content-Type": "text/html"}, page)

    # -- programmatic access (used by tests and benchmarks) ----------------------------

    def save_instance(self, name: str, values: dict[str, str]) -> list[str]:
        """Save an instance directly from a value map; returns issues."""
        instance = self.wizard.form_to_instance(self.root, values)
        issues = SchemaValidator(self.wizard._require_schema()).validate(instance)
        self.instances[name] = instance.serialize(declaration=True)
        self.saves += 1
        return [str(issue) for issue in issues]

    def url(self) -> str:
        return f"http://{self.host}{self.base_path}"

    def form_url(self, instance: str = "") -> str:
        if instance:
            return f"{self.url()}?{encode_query({'instance': instance})}"
        return self.url()
