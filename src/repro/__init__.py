"""Interoperable Web Services for Computational Portals — a reproduction.

A full Python reimplementation of the system described in M. Pierce,
G. Fox, C. Youn, S. Mock, K. Mueller, O. Balsoy, "Interoperable Web Services
for Computational Portals", SC 2002 — including every substrate the paper's
services sat on (SOAP/WSDL/UDDI stacks, a simulated grid with four batch
schedulers, an SRB, Kerberos/GSI/SAML security, a mini CORBA ORB for the
legacy WebFlow system, a Velocity-style template engine, and a Jetspeed-like
portlet container), all running over a deterministic in-process virtual
network.

Quick start::

    from repro.portal import PortalDeployment, UserInterfaceServer

    deployment = PortalDeployment.build()
    ui = UserInterfaceServer(deployment)
    ui.login("alice", "alpine")
    shell = ui.make_shell("alice")
    print(shell.run("runapp Gaussian modi4.iu.edu basisSize=100"))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

__version__ = "1.0.0"

__all__ = [
    "faults",
    "headers",
    "xmlutil",
    "template",
    "transport",
    "soap",
    "wsdl",
    "uddi",
    "discovery",
    "security",
    "grid",
    "corba",
    "srb",
    "services",
    "appws",
    "wizard",
    "portlets",
    "portal",
]
