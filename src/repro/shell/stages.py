"""The typed stage catalog: one stage class per core-service command.

Each stage is the workflow-engine form of a §6 shell command: it names the
core service it drives, declares its output ports, and knows how to turn
resolved input port contents into SOAP calls.  Stages carry their own
resilience budget (``retries`` attempts, ``deadline`` virtual seconds per
attempt) which the executor delegates to :mod:`repro.resilience`, and every
concrete stage declares an explicit idempotency key — the REP801 contract —
so a re-driven stage deduplicates instead of double-submitting.

Stage ``execute`` methods receive a :class:`StageContext` (built by the
executor) and the resolved input contents; they return ``{port: content}``.
They never touch the provenance store or the journal — sealing outputs is
the executor's job, which is what keeps the immutability discipline in one
place.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass

from repro.faults import WorkflowError


@dataclass(frozen=True)
class Binding:
    """One wired input: either a reference to another stage's output port
    (``kind == "ref"``) or an inline constant (``kind == "const"``)."""

    kind: str
    stage: str = ""
    port: str = ""
    value: str = ""

    def to_dict(self) -> dict:
        if self.kind == "ref":
            return {"kind": "ref", "stage": self.stage, "port": self.port}
        return {"kind": "const", "value": self.value}


def ref(stage: str, port: str = "out") -> Binding:
    """Bind an input to another stage's named output port."""
    return Binding(kind="ref", stage=stage, port=port)


def const(value: str) -> Binding:
    """Bind an input to an inline constant (content-addressed at run
    start, so constants participate in provenance like any other blob)."""
    return Binding(kind="const", value=str(value))


class WorkflowStage:
    """One node of the DAG: a named command with wired input ports.

    Subclasses set ``kind`` and ``output_ports``, implement ``execute``,
    and *must* declare an explicit ``idempotency_key`` — there is no
    inherited default, by design: the key is the stage's contract with the
    durable services it drives, and an implicit one is how double
    submissions happen.  The REP801 checker enforces the declaration.
    """

    kind = "stage"
    output_ports: tuple[str, ...] = ("out",)

    def __init__(
        self,
        name: str,
        *,
        inputs: dict[str, Binding] | None = None,
        retries: int = 3,
        deadline: float = 30.0,
    ):
        self.name = name
        self.inputs: dict[str, Binding] = dict(inputs or {})
        self.retries = int(retries)
        self.deadline = float(deadline)

    def _require_input(self, port: str) -> None:
        if port not in self.inputs:
            raise WorkflowError(
                f"stage {self.name!r} ({self.kind}) requires an input "
                f"bound to port {port!r}",
                {"stage": self.name, "port": port},
            )

    def command(self) -> dict:
        """The stage's own parameters, canonically — what the provenance
        record stores between ``inputs`` and ``outputs``."""
        return {}

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "command": self.command(),
            "inputs": {
                port: self.inputs[port].to_dict()
                for port in sorted(self.inputs)
            },
            "outputs": list(self.output_ports),
            "retries": self.retries,
            "deadline": self.deadline,
        }

    def idempotency_key(self, run: str) -> str:
        raise NotImplementedError(
            f"stage class {type(self).__name__} must declare an explicit "
            "idempotency_key"
        )

    def execute(self, ctx: "StageContext", inputs: dict[str, str]) -> dict[str, str]:
        raise NotImplementedError


class BatchScriptStage(WorkflowStage):
    """Generate a batch script through the common BSG interface (§3.1);
    routed to whichever provider supports the scheduler."""

    kind = "batch-script"
    output_ports = ("script",)

    def __init__(
        self,
        name: str,
        *,
        scheduler: str,
        params: dict[str, str] | None = None,
        **kw,
    ):
        super().__init__(name, **kw)
        self.scheduler = scheduler.upper()
        self.params = {
            key: str(value) for key, value in sorted((params or {}).items())
        }

    def command(self) -> dict:
        return {"scheduler": self.scheduler, "params": dict(self.params)}

    def idempotency_key(self, run: str) -> str:
        return f"wf:{run}:{self.name}:bsg"

    def execute(self, ctx, inputs):
        script = ctx.call_bsg(
            self.scheduler, "generateScript", self.scheduler, self.params
        )
        return {"script": script}


class GlobusrunStage(WorkflowStage):
    """Submit a jobs XML batch durably and collect its results.

    The ``jobs`` input port carries the batch document (typically a
    :class:`MetaScheduleStage`'s ``placed`` output).  Submission goes
    through ``submit_async`` under this stage's idempotency key, so a
    re-driven stage is handed the originally accepted batch id and
    ``result`` returns the recorded outcome instead of re-running jobs.
    Extra bound ports (a generated script, staged data) ride along as
    provenance inputs.
    """

    kind = "globusrun"
    output_ports = ("results",)

    def __init__(self, name: str, **kw):
        super().__init__(name, **kw)
        self._require_input("jobs")

    def idempotency_key(self, run: str) -> str:
        return f"wf:{run}:{self.name}:globusrun"

    def execute(self, ctx, inputs):
        batch = ctx.call(
            "globusrun", "submit_async", inputs["jobs"], idempotent=True
        )
        return {"results": ctx.call("globusrun", "result", batch)}


class MetaScheduleStage(WorkflowStage):
    """Fill in host-less jobs through the MetaScheduler's placement policy.

    The ``jobs`` input is a batch document whose ``<job>`` elements may
    omit ``host``; the output is the placed document.  Placement and
    submission are deliberately *separate* stages: the placed XML is
    sealed into provenance, so a crash between placement and submission
    resumes with the recorded placement instead of re-consulting load
    signals that have since moved.
    """

    kind = "metaschedule"
    output_ports = ("placed",)

    def __init__(self, name: str, **kw):
        super().__init__(name, **kw)
        self._require_input("jobs")

    def idempotency_key(self, run: str) -> str:
        return f"wf:{run}:{self.name}:metaschedule"

    def execute(self, ctx, inputs):
        placed = ctx.call(
            "metascheduler", "place", inputs["jobs"], idempotent=True
        )
        return {"placed": placed}


class SrbGetStage(WorkflowStage):
    """Read a file out of the SRB (§3.2 ``cat``) onto the ``data`` port."""

    kind = "srb-get"
    output_ports = ("data",)

    def __init__(self, name: str, *, path: str, **kw):
        super().__init__(name, **kw)
        self.path = path

    def command(self) -> dict:
        return {"path": self.path}

    def idempotency_key(self, run: str) -> str:
        return f"wf:{run}:{self.name}:srb-get"

    def execute(self, ctx, inputs):
        return {"data": ctx.call("srb", "cat", self.path)}


class SrbPutStage(WorkflowStage):
    """Store input contents into the SRB (§3.2 ``put``).

    All bound input ports are concatenated in port-name order — the
    collect step of a fan-out sweep — and the stored path plus byte count
    come back on ``stored``.
    """

    kind = "srb-put"
    output_ports = ("stored",)

    def __init__(self, name: str, *, path: str, **kw):
        super().__init__(name, **kw)
        self.path = path
        if not self.inputs:
            raise WorkflowError(
                f"stage {name!r} (srb-put) needs at least one input port "
                "to store",
                {"stage": name},
            )

    def command(self) -> dict:
        return {"path": self.path}

    def idempotency_key(self, run: str) -> str:
        return f"wf:{run}:{self.name}:srb-put"

    def execute(self, ctx, inputs):
        data = "\n".join(inputs[port] for port in sorted(inputs))
        encoded = base64.b64encode(data.encode("utf-8")).decode("ascii")
        size = ctx.call("srb", "put", self.path, encoded, idempotent=True)
        return {"stored": f"{self.path}:{size}"}


class SoapCallStage(WorkflowStage):
    """The generic escape hatch: one SOAP operation on any deployed service.

    ``args`` mixes literal strings and :class:`Binding`\\ s; bindings are
    registered as input ports (``arg0``, ``arg1``, ...) so the DAG layer
    validates them, and :class:`~repro.shell.dag.Workflow` checks call
    arity against the service's WSDL when one is on file.
    """

    kind = "soap-call"
    output_ports = ("out",)

    def __init__(
        self,
        name: str,
        *,
        service: str,
        method: str,
        args: list | tuple = (),
        **kw,
    ):
        inputs = dict(kw.pop("inputs", None) or {})
        self.arg_slots: list[tuple[str, str]] = []  # ("port"|"literal", value)
        for index, arg in enumerate(args):
            if isinstance(arg, Binding):
                port = f"arg{index}"
                inputs[port] = arg
                self.arg_slots.append(("port", port))
            else:
                self.arg_slots.append(("literal", str(arg)))
        super().__init__(name, inputs=inputs, **kw)
        self.service = service
        self.method = method

    @property
    def args(self) -> list[tuple[str, str]]:
        return list(self.arg_slots)

    def command(self) -> dict:
        return {
            "service": self.service,
            "method": self.method,
            "args": [list(slot) for slot in self.arg_slots],
        }

    def idempotency_key(self, run: str) -> str:
        return f"wf:{run}:{self.name}:{self.service}.{self.method}"

    def execute(self, ctx, inputs):
        params = [
            inputs[value] if slot == "port" else value
            for slot, value in self.arg_slots
        ]
        result = ctx.call(self.service, self.method, *params, idempotent=True)
        return {"out": "" if result is None else str(result)}
