"""The offline workflow reporter: provenance trees and DAG critical paths.

``provenance_tree`` renders a run's sealed records as an indented tree —
deliberately from *content only* (stage names, statuses, full content
addresses), never from clocks, attempt counts, or trace ids, so the tree
of a crashed-and-resumed run is byte-identical to the uninterrupted
same-seed run's.  That byte identity is the acceptance check the simtest
oracle and the property tests lean on.

``critical_path`` is the timing view: per-stage elapsed times come from
the executor's journal (``stage-done`` records), and the longest
weighted path through the DAG is the lower bound an ideally-wide
executor cannot beat.  Comparing it to the journal's actual makespan
says how much of the schedule was width-limited.
"""

from __future__ import annotations

from repro.shell.dag import Workflow
from repro.shell.provenance import ProvenanceStore


def provenance_tree(store: ProvenanceStore, run: str) -> str:
    """Render one run's provenance chain as a deterministic tree.

    A stage with several parents renders fully under its first parent
    (sorted order) and as a one-line back-reference elsewhere.
    """
    by_stage: dict[str, tuple[str, dict]] = {}
    for address, record in store.records().items():
        if record.get("run") == run:
            by_stage[record["stage"]] = (address, record)
    children: dict[str, list[str]] = {stage: [] for stage in by_stage}
    roots: list[str] = []
    for stage in sorted(by_stage):
        _, record = by_stage[stage]
        parents = sorted(
            name for name in record.get("parents", {}) if name in by_stage
        )
        if parents:
            children[parents[0]].append(stage)
        else:
            roots.append(stage)
    lines: list[str] = [f"workflow run {run}: {len(by_stage)} stage record(s)"]

    def walk(stage: str, depth: int) -> None:
        address, record = by_stage[stage]
        indent = "  " * depth
        status = record.get("status", "ok")
        line = f"{indent}- {stage} [{record.get('kind', '?')}] {status} {address}"
        if status != "ok":
            line += f" error={record.get('error', {}).get('code', '?')}"
        lines.append(line)
        for port in sorted(record.get("outputs", {})):
            lines.append(f"{indent}    {port} = {record['outputs'][port]}")
        extra = sorted(record.get("parents", {}))[1:]
        for parent in extra:
            lines.append(f"{indent}    (also from {parent})")
        for child in sorted(children[stage]):
            walk(child, depth + 1)

    for root in sorted(roots):
        walk(root, 1)
    return "\n".join(lines)


def stage_timings(journal) -> dict[str, float]:
    """Stage -> elapsed virtual seconds, latest ``stage-done`` per stage."""
    timings: dict[str, float] = {}
    for entry in journal.by_kind("stage-done"):
        timings[entry.data["stage"]] = float(entry.data.get("elapsed", 0.0))
    return timings


def critical_path(workflow: Workflow, timings: dict[str, float]) -> dict:
    """The longest weighted root-to-leaf path through the DAG.

    ``timings`` maps stage -> elapsed seconds (missing stages count 0.0 —
    they never ran).  Returns ``{"length": seconds, "path": [stages]}``;
    the length is the makespan lower bound no executor width can beat.
    """
    total: dict[str, float] = {}
    via: dict[str, str] = {}
    for name in workflow.topo_order():
        best_parent, best = "", 0.0
        for parent in workflow.parents(name):
            if total.get(parent, 0.0) > best or not best_parent:
                best_parent, best = parent, total.get(parent, 0.0)
        total[name] = timings.get(name, 0.0) + best
        if best_parent:
            via[name] = best_parent
    if not total:
        return {"length": 0.0, "path": []}
    tail = sorted(total, key=lambda name: (-total[name], name))[0]
    path = [tail]
    while path[-1] in via:
        path.append(via[path[-1]])
    return {"length": total[tail], "path": list(reversed(path))}


def render_report(
    workflow: Workflow, store: ProvenanceStore, journal, run: str
) -> str:
    """The full offline report: tree, timings, critical path, makespan."""
    timings = stage_timings(journal)
    path = critical_path(workflow, timings)
    starts = journal.by_kind("wf-start")
    dones = journal.by_kind("stage-done")
    makespan = 0.0
    if starts and dones:
        makespan = max(0.0, dones[-1].t - starts[0].t)
    lines = [
        f"workflow {workflow.name!r} digest {workflow.digest()[:16]}…",
        provenance_tree(store, run),
        "",
        f"makespan: {makespan:.6f}s over {len(timings)} stage(s)",
        f"critical path ({path['length']:.6f}s): "
        + (" -> ".join(path["path"]) or "(none)"),
    ]
    problems = store.verify()
    lines.append(
        "provenance chain: OK"
        if not problems
        else "provenance chain: " + "; ".join(problems)
    )
    return "\n".join(lines)
