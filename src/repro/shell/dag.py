"""The workflow definition layer: typed stages wired into a validated DAG.

The paper's §6 "distributed operating system" sketches a portal shell of
composable core-service commands connected by pipes.  A pipe is a DAG of
width one; this module is the general form: stages (each one core-service
call — batch script generation, Globusrun, SRB, the metascheduler) are
wired together through *named ports*, and the whole graph is validated at
build time so a portal user learns about a dangling input or a cycle when
the workflow is *defined*, not three stages into a two-hour sweep.

Validation covers:

* duplicate or empty stage names;
* input bindings referencing an unknown stage or an undeclared output port;
* cycles (Kahn's algorithm over the binding edges);
* for the generic SOAP-call stage, call arity against the target service's
  WSDL operation signature.

Everything about a :class:`Workflow` is canonically serializable
(:meth:`Workflow.to_dict` / :meth:`Workflow.digest`), because the
provenance store records *which* definition produced an output and the
resuming executor refuses a journal written by a different definition.
"""

from __future__ import annotations

import hashlib
import json

from repro.faults import WorkflowError
from repro.shell.stages import (
    Binding,
    SoapCallStage,
    WorkflowStage,
    const,
    ref,
)
from repro.wsdl.model import WsdlDocument

__all__ = ["Binding", "Workflow", "const", "ref"]


class Workflow:
    """A named, validated DAG of :class:`WorkflowStage` instances."""

    def __init__(
        self,
        name: str,
        stages: list[WorkflowStage],
        *,
        wsdls: dict[str, WsdlDocument] | None = None,
    ):
        """Validate and freeze the definition.

        ``wsdls`` maps a service short name to its parsed WSDL document;
        every :class:`SoapCallStage` targeting a mapped service has its
        method existence and argument arity checked at build time.
        """
        self.name = name
        self.stages: dict[str, WorkflowStage] = {}
        self._wsdls = dict(wsdls or {})
        for stage in stages:
            if not stage.name:
                raise WorkflowError(
                    f"workflow {name!r} contains a stage with an empty name"
                )
            if stage.name in self.stages:
                raise WorkflowError(
                    f"workflow {name!r} defines stage {stage.name!r} twice",
                    {"stage": stage.name},
                )
            self.stages[stage.name] = stage
        self._parents: dict[str, tuple[str, ...]] = {}
        self._children: dict[str, tuple[str, ...]] = {}
        self._validate_bindings()
        self._order = self._topo_order()
        self._validate_arity()

    # -- validation -----------------------------------------------------------

    def _validate_bindings(self) -> None:
        children: dict[str, set[str]] = {name: set() for name in self.stages}
        for name in sorted(self.stages):
            stage = self.stages[name]
            parents: set[str] = set()
            for port in sorted(stage.inputs):
                binding = stage.inputs[port]
                if binding.kind == "const":
                    continue
                if binding.kind != "ref":
                    raise WorkflowError(
                        f"stage {name!r} input {port!r} has unknown binding "
                        f"kind {binding.kind!r}",
                        {"stage": name, "port": port},
                    )
                producer = self.stages.get(binding.stage)
                if producer is None:
                    raise WorkflowError(
                        f"stage {name!r} input {port!r} references unknown "
                        f"stage {binding.stage!r} — dangling input",
                        {"stage": name, "port": port, "ref": binding.stage},
                    )
                if binding.stage == name:
                    raise WorkflowError(
                        f"stage {name!r} input {port!r} references itself",
                        {"stage": name, "port": port},
                    )
                if binding.port not in producer.output_ports:
                    raise WorkflowError(
                        f"stage {name!r} input {port!r} references "
                        f"undeclared output port {binding.port!r} of stage "
                        f"{binding.stage!r} (has: "
                        f"{', '.join(producer.output_ports)})",
                        {"stage": name, "port": port, "ref": binding.stage},
                    )
                parents.add(binding.stage)
                children[binding.stage].add(name)
            self._parents[name] = tuple(sorted(parents))
        for name in sorted(children):
            self._children[name] = tuple(sorted(children[name]))

    def _topo_order(self) -> tuple[str, ...]:
        """Kahn's algorithm with a sorted ready set: deterministic order,
        and the cycle check in the same pass."""
        remaining = {name: set(self._parents[name]) for name in self.stages}
        order: list[str] = []
        while remaining:
            ready = sorted(
                name for name, parents in remaining.items() if not parents
            )
            if not ready:
                cycle = ", ".join(sorted(remaining))
                raise WorkflowError(
                    f"workflow {self.name!r} contains a cycle among stages: "
                    f"{cycle}",
                    {"stages": cycle},
                )
            for name in ready:
                order.append(name)
                del remaining[name]
                for other in sorted(remaining):
                    remaining[other].discard(name)
        return tuple(order)

    def _validate_arity(self) -> None:
        for name in sorted(self.stages):
            stage = self.stages[name]
            if not isinstance(stage, SoapCallStage):
                continue
            wsdl = self._wsdls.get(stage.service)
            if wsdl is None:
                continue  # no contract on file; runtime faults still apply
            operation = wsdl.operation(stage.method)
            if operation is None:
                raise WorkflowError(
                    f"stage {name!r} calls {stage.method!r} which "
                    f"{wsdl.service_name!r} does not define (has: "
                    f"{', '.join(wsdl.operation_names())})",
                    {"stage": name, "method": stage.method},
                )
            if len(stage.args) != len(operation.inputs):
                raise WorkflowError(
                    f"stage {name!r} passes {len(stage.args)} argument(s) "
                    f"to {stage.method!r} but the WSDL declares "
                    f"{len(operation.inputs)} part(s)",
                    {
                        "stage": name,
                        "method": stage.method,
                        "given": str(len(stage.args)),
                        "declared": str(len(operation.inputs)),
                    },
                )

    # -- structure ------------------------------------------------------------

    def parents(self, name: str) -> tuple[str, ...]:
        """The stages whose outputs *name* consumes, sorted."""
        return self._parents[name]

    def children(self, name: str) -> tuple[str, ...]:
        """The stages consuming *name*'s outputs, sorted."""
        return self._children[name]

    def topo_order(self) -> tuple[str, ...]:
        """A deterministic topological order of the stage names."""
        return self._order

    def roots(self) -> tuple[str, ...]:
        """Stages with no parents, sorted."""
        return tuple(
            name for name in sorted(self.stages) if not self._parents[name]
        )

    def descendants(self, name: str) -> tuple[str, ...]:
        """Every stage downstream of *name* (the branch a terminal failure
        of *name* blocks), sorted."""
        seen: set[str] = set()
        frontier = list(self._children[name])
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._children[current])
        return tuple(sorted(seen))

    # -- canonical form --------------------------------------------------------

    def to_dict(self) -> dict:
        """The definition in canonical, content-addressable form."""
        return {
            "schema": "repro.shell.workflow/v1",
            "name": self.name,
            "stages": {
                name: self.stages[name].to_dict()
                for name in sorted(self.stages)
            },
        }

    def digest(self) -> str:
        """sha256 of the canonical definition — stamped into journals so a
        resume against a different definition is refused, not misapplied."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
