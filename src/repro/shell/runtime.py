"""Binding the stage catalog to a live deployment.

:class:`WorkflowRuntime` owns one cached :class:`~repro.soap.client.SoapClient`
per core service, built *without* a client-side retry policy — the executor
drives retries itself through :mod:`repro.resilience` so a stage's budget is
accounted in exactly one place.  :class:`StageContext` is the narrow surface
a stage's ``execute`` sees: ``call`` attaches the stage's per-attempt
deadline and (when asked) its idempotency key, and ``call_bsg`` routes a
scheduler name to whichever batch-script provider supports it, mirroring
the portal shell's ``genscript`` command.
"""

from __future__ import annotations

from repro.appws.service import APPWS_NAMESPACE
from repro.loadmgmt.metascheduler import METASCHEDULER_NAMESPACE
from repro.resilience.policy import NO_RETRY
from repro.services.batchscript import BSG_NAMESPACE
from repro.services.context import CONTEXT_NAMESPACE
from repro.services.datamgmt import SRBWS_NAMESPACE
from repro.services.jobsubmit import GLOBUSRUN_NAMESPACE
from repro.services.monitoring import MONITORING_NAMESPACE
from repro.soap.client import SoapClient

#: service short name -> SOAP namespace, for every endpoint a stock
#: :class:`~repro.portal.uiserver.PortalDeployment` exposes
SERVICE_NAMESPACES: dict[str, str] = {
    "globusrun": GLOBUSRUN_NAMESPACE,
    "metascheduler": METASCHEDULER_NAMESPACE,
    "monitoring": MONITORING_NAMESPACE,
    "srb": SRBWS_NAMESPACE,
    "context": CONTEXT_NAMESPACE,
    "bsg-iu": BSG_NAMESPACE,
    "bsg-sdsc": BSG_NAMESPACE,
    "appws": APPWS_NAMESPACE,
}

#: schedulers the IU generator supports; everything else routes to SDSC
IU_SCHEDULERS = ("GRD", "PBS")


class WorkflowRuntime:
    """Lazily-built SOAP clients for every service the stage catalog drives."""

    def __init__(
        self,
        network,
        endpoints: dict[str, tuple[str, str]],
        *,
        source: str = "ui.gridportal.org",
        resilience_log=None,
    ):
        """``endpoints`` maps service short name -> (url, namespace)."""
        self.network = network
        self.source = source
        self.resilience_log = resilience_log
        self._endpoints = dict(endpoints)
        self._clients: dict[str, SoapClient] = {}

    @classmethod
    def from_deployment(
        cls, deployment, *, source: str = "ui.gridportal.org"
    ) -> "WorkflowRuntime":
        """Wire a runtime over every known endpoint of a deployment."""
        endpoints = {
            service: (deployment.endpoints[service], namespace)
            for service, namespace in sorted(SERVICE_NAMESPACES.items())
            if service in deployment.endpoints
        }
        return cls(
            deployment.network,
            endpoints,
            source=source,
            resilience_log=deployment.resilience,
        )

    def register(self, service: str, endpoint: str, namespace: str) -> None:
        """Expose an extra endpoint to :class:`SoapCallStage` by short name."""
        self._endpoints[service] = (endpoint, namespace)
        self._clients.pop(service, None)

    def services(self) -> tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    def client(self, service: str) -> SoapClient:
        """The cached no-retry client for a service; the executor owns
        the retry loop, so a failed attempt surfaces immediately."""
        if service not in self._clients:
            if service not in self._endpoints:
                raise KeyError(f"unknown workflow service {service!r}")
            url, namespace = self._endpoints[service]
            self._clients[service] = SoapClient(
                self.network,
                url,
                namespace,
                source=self.source,
                retry_policy=NO_RETRY,
                resilience_log=self.resilience_log,
                service_name=f"workflow:{service}",
            )
        return self._clients[service]

    def bsg_for(self, scheduler: str) -> str:
        """Which batch-script provider speaks *scheduler* (the §3.1 common
        interface makes them substitutable; routing picks the one whose
        advertised scheduler list matches)."""
        return "bsg-iu" if scheduler.upper() in IU_SCHEDULERS else "bsg-sdsc"


class StageContext:
    """What one stage attempt may do: deadline-bounded SOAP calls under
    the stage's idempotency key."""

    def __init__(self, runtime: WorkflowRuntime, stage, key: str):
        self.runtime = runtime
        self.stage = stage
        self.key = key

    def call(self, service: str, method: str, *args, idempotent: bool = False):
        """One SOAP call bounded by the stage's per-attempt deadline.

        ``idempotent=True`` sends the stage's key as the idempotency
        header so a durable service deduplicates re-driven attempts
        (crash-resume, retry after an ambiguous timeout).
        """
        return self.runtime.client(service).call(
            method,
            *args,
            timeout=self.stage.deadline,
            idempotency_key=self.key if idempotent else "",
        )

    def call_bsg(self, scheduler: str, method: str, *args):
        """Route a batch-script call to the provider supporting *scheduler*."""
        return self.call(self.runtime.bsg_for(scheduler), method, *args)
