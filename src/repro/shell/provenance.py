"""The immutable, content-addressed provenance store.

Every stage output is a *blob* addressed by the sha256 of its bytes; every
completed stage attempt seals a ``repro.shell.provenance/v1`` *record* —
itself content-addressed over its canonical JSON — linking input blob
addresses, the stage's command, output blob addresses, and the parent
stages' record addresses.  Records referencing records by content address
form a Merkle chain: re-running any prefix of a workflow either reproduces
byte-identical content (same address — a no-op ``seal``) or produces *new*
addresses, but can never change what an existing address means.  That is
the WebMEV discipline the roadmap asks for: no in-place modification,
every intermediate addressable.

Two deliberate exclusions keep addresses stable across crash-resume:

* no virtual-clock timestamps and no attempt counts in sealed records —
  both diverge between an uninterrupted run and a resumed one (timings
  live in the executor's journal instead);
* no trace ids in sealed records — the exemplar span of a resumed stage is
  a different span.  Trace links ride in a *side channel*
  (:meth:`ProvenanceStore.link_trace`), journaled but outside the chain.

The store itself follows the write-ahead discipline of
:mod:`repro.durability`: every blob and record is appended to a journal
*before* it is registered in memory, so a post-crash store rebuilt over
the same journal resolves every address the pre-crash store ever handed
out.
"""

from __future__ import annotations

import hashlib
import json

from repro.faults import ResourceNotFoundError, WorkflowError

#: the record schema this store seals and verifies
PROVENANCE_SCHEMA = "repro.shell.provenance/v1"


def _canonical(value: dict) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def content_address(text: str) -> str:
    """The sha256 address of a byte payload (its UTF-8 encoding)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def make_record(
    *,
    workflow: str,
    workflow_digest: str,
    run: str,
    stage: str,
    kind: str,
    command: dict,
    inputs: dict[str, str],
    outputs: dict[str, str],
    parents: dict[str, str],
    status: str = "ok",
    error: dict[str, str] | None = None,
) -> dict:
    """Assemble a v1 record dict (not yet sealed).

    ``inputs``/``outputs`` map port name -> blob address; ``parents`` maps
    parent stage name -> parent *record* address (the Merkle link).
    """
    record = {
        "schema": PROVENANCE_SCHEMA,
        "workflow": workflow,
        "workflow_digest": workflow_digest,
        "run": run,
        "stage": stage,
        "kind": kind,
        "command": command,
        "inputs": {port: inputs[port] for port in sorted(inputs)},
        "outputs": {port: outputs[port] for port in sorted(outputs)},
        "parents": {name: parents[name] for name in sorted(parents)},
        "status": status,
    }
    if error:
        record["error"] = {key: str(error[key]) for key in sorted(error)}
    return record


class ProvenanceStore:
    """Content-addressed blobs and sealed records, with journal replay.

    Pass a :class:`~repro.durability.journal.Journal` to make the store
    durable; ``__init__`` replays any existing ``wf-blob`` / ``wf-prov`` /
    ``wf-trace`` records, so recovery is just "open a store over the same
    journal".  Without a journal the store is memory-only (handy for
    property tests).
    """

    def __init__(self, journal=None):
        self._journal = journal
        self._blobs: dict[str, str] = {}
        self._records: dict[str, str] = {}  # address -> canonical JSON
        self._traces: dict[str, str] = {}  # record address -> trace id
        if journal is not None:
            for entry in journal.records():
                if entry.kind == "wf-blob":
                    content = entry.data["content"]
                    self._blobs[content_address(content)] = content
                elif entry.kind == "wf-prov":
                    canonical = entry.data["record"]
                    self._records[content_address(canonical)] = canonical
                elif entry.kind == "wf-trace":
                    self._traces[entry.data["record"]] = entry.data["trace"]

    # -- blobs ---------------------------------------------------------------

    def put_blob(self, content: str) -> str:
        """Store a payload, returning its address.  Idempotent: the same
        bytes land at the same address, and re-putting is a no-op (no
        journal append, nothing overwritten)."""
        content = str(content)
        address = content_address(content)
        if address not in self._blobs:
            if self._journal is not None:
                self._journal.append("wf-blob", content=content)
            self._blobs[address] = content
        return address

    def blob(self, address: str) -> str:
        if address not in self._blobs:
            raise ResourceNotFoundError(
                f"no blob at address {address!r}", {"address": address}
            )
        return self._blobs[address]

    def has_blob(self, address: str) -> bool:
        return address in self._blobs

    # -- records -------------------------------------------------------------

    def seal(self, record: dict) -> str:
        """Durably freeze a record, returning its content address.

        Idempotent by construction: identical content seals to the same
        address and is not re-journaled.  A record is never *updated* —
        there is no API for that — and :meth:`record` returns a fresh
        parse of the stored canonical JSON, so a caller mutating the
        returned dict cannot reach the sealed state.
        """
        if record.get("schema") != PROVENANCE_SCHEMA:
            raise WorkflowError(
                f"refusing to seal record with schema "
                f"{record.get('schema')!r} (want {PROVENANCE_SCHEMA!r})",
                {"schema": str(record.get("schema"))},
            )
        canonical = _canonical(record)
        address = content_address(canonical)
        if address not in self._records:
            if self._journal is not None:
                self._journal.append("wf-prov", record=canonical)
            self._records[address] = canonical
        return address

    def record(self, address: str) -> dict:
        if address not in self._records:
            raise ResourceNotFoundError(
                f"no provenance record at address {address!r}",
                {"address": address},
            )
        return json.loads(self._records[address])

    def has_record(self, address: str) -> bool:
        return address in self._records

    def records(self) -> dict[str, dict]:
        """Every sealed record, address -> fresh parse, sorted by address."""
        return {
            address: json.loads(self._records[address])
            for address in sorted(self._records)
        }

    # -- the trace side channel ----------------------------------------------

    def link_trace(self, address: str, trace_id: str) -> None:
        """Attach the exemplar trace id for a sealed record.

        Deliberately *outside* the sealed content: a resumed stage re-runs
        under a new trace, and linking it must not change the record's
        address.  First link wins — the exemplar is the trace that did
        the work, not the latest one to mention it.
        """
        if address not in self._records:
            raise ResourceNotFoundError(
                f"cannot link trace to unknown record {address!r}",
                {"address": address},
            )
        if not trace_id or address in self._traces:
            return
        if self._journal is not None:
            self._journal.append("wf-trace", record=address, trace=trace_id)
        self._traces[address] = trace_id

    def exemplar(self, address: str) -> str:
        """The linked exemplar trace id, or ``""``."""
        return self._traces.get(address, "")

    # -- integrity -----------------------------------------------------------

    def verify(self) -> list[str]:
        """Recompute every address and walk every link; return problems.

        An empty list means the chain holds: every blob and record hashes
        to its address, every record is schema-valid, and every input,
        output, and parent reference resolves within the store.
        """
        problems: list[str] = []
        for address in sorted(self._blobs):
            if content_address(self._blobs[address]) != address:
                problems.append(f"blob {address}: content does not hash to address")
        for address in sorted(self._records):
            canonical = self._records[address]
            if content_address(canonical) != address:
                problems.append(
                    f"record {address}: content does not hash to address"
                )
            record = json.loads(canonical)
            if record.get("schema") != PROVENANCE_SCHEMA:
                problems.append(f"record {address}: bad schema")
                continue
            for port in sorted(record.get("inputs", {})):
                blob = record["inputs"][port]
                if blob not in self._blobs:
                    problems.append(
                        f"record {address}: input {port!r} -> missing blob {blob}"
                    )
            for port in sorted(record.get("outputs", {})):
                blob = record["outputs"][port]
                if blob not in self._blobs:
                    problems.append(
                        f"record {address}: output {port!r} -> missing blob {blob}"
                    )
            for parent in sorted(record.get("parents", {})):
                link = record["parents"][parent]
                if link not in self._records:
                    problems.append(
                        f"record {address}: parent {parent!r} -> "
                        f"missing record {link}"
                    )
        return problems
