"""The deterministic workflow executor.

Drives a validated :class:`~repro.shell.dag.Workflow` over a live
deployment on the virtual clock.  Determinism is the design center:

* the ready set is tie-broken by a *seeded* priority — the sha256 of
  ``"{seed}:{stage}"`` — so two same-seed runs start stages in the same
  order regardless of dict history;
* stage concurrency is bounded (``max_width``) and each attempt passes
  through the deployment's admission controller, so workflow fan-out
  competes for service capacity like any other portal client;
* per-stage retry/deadline budgets are delegated to
  :mod:`repro.resilience`: attempts back off under a per-stage seeded
  PRNG, honour server ``retryAfter`` hints, and the stage's ``deadline``
  rides to the service as a SOAP deadline header.

Everything the executor decides is journaled *before* it is acted on
(:mod:`repro.durability` write-ahead discipline), and every sealed stage
lands in the :class:`~repro.shell.provenance.ProvenanceStore` backed by
the same journal.  Recovery is therefore structural: build a new executor
over the surviving journal and call :meth:`WorkflowExecutor.run` — the
constructor replays ``stage-done`` records into the completed/failed
maps, and only unfinished stages are re-driven.  Stage idempotency keys
are stable across attempts *and* incarnations, so a stage that was
accepted by a durable service before the crash deduplicates instead of
double-submitting.

A :class:`~repro.transport.network.ServiceCrash` is *not* retried: it is
the simulation's process-death primitive, and the executor dies with it —
exactly the mid-DAG crash the journal protects against.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.faults import PortalError, WorkflowError, retry_after_hint
from repro.resilience.policy import RetryPolicy, is_retryable
from repro.shell.dag import Workflow
from repro.shell.provenance import ProvenanceStore, make_record
from repro.shell.runtime import StageContext, WorkflowRuntime
from repro.soap.message import SoapFaultError
from repro.transport.network import ServiceCrash, TransportError

#: exception families a stage attempt may surface without killing the
#: executor (classified into the failure record when retries exhaust)
STAGE_ERRORS = (PortalError, SoapFaultError, TransportError, ConnectionError)


@dataclass
class WorkflowResult:
    """What one :meth:`WorkflowExecutor.run` call accomplished."""

    run: str
    workflow: str
    #: stage -> sealed record address, every stage finished so far
    completed: dict[str, str] = field(default_factory=dict)
    #: stage -> sealed failure-record address
    failed: dict[str, str] = field(default_factory=dict)
    #: stages blocked behind a failed ancestor, sorted
    skipped: tuple[str, ...] = ()
    #: stages *this call* drove, in start order (the determinism witness)
    stage_order: tuple[str, ...] = ()
    #: virtual seconds from wf-start to the last stage completion
    makespan: float = 0.0

    @property
    def done(self) -> bool:
        return not self.failed

    def to_dict(self) -> dict:
        return {
            "run": self.run,
            "workflow": self.workflow,
            "completed": dict(sorted(self.completed.items())),
            "failed": dict(sorted(self.failed.items())),
            "skipped": list(self.skipped),
            "stage_order": list(self.stage_order),
            "makespan": self.makespan,
        }


class WorkflowExecutor:
    """One (resumable) run of one workflow against one deployment."""

    def __init__(
        self,
        workflow: Workflow,
        runtime: WorkflowRuntime,
        *,
        journal=None,
        store: ProvenanceStore | None = None,
        run_id: str = "run-0",
        seed: int = 0,
        admission=None,
        max_width: int = 4,
    ):
        """``journal`` makes the run durable (and resumable: a non-empty
        journal is *recovered from*, not restarted).  ``store`` defaults
        to a :class:`ProvenanceStore` over the same journal.  ``admission``
        is the deployment's controller bounding stage attempts;
        ``max_width`` caps the admission window the scheduler exposes
        (stages are driven one at a time so the start order stays a pure
        function of the settled set).
        """
        self.workflow = workflow
        self.runtime = runtime
        self.journal = journal
        self.store = store if store is not None else ProvenanceStore(journal)
        self.run_id = run_id
        self.seed = seed
        self.admission = admission
        self.max_width = max(1, int(max_width))
        self.clock = runtime.network.clock
        self.completed: dict[str, str] = {}  # stage -> record address
        self.failed: dict[str, str] = {}
        self._outputs: dict[str, dict[str, str]] = {}  # stage -> port -> blob
        self._started_at: float | None = None
        self._finished_at: float | None = None
        if journal is not None and len(journal):
            self._recover()
        elif journal is not None:
            journal.append(
                "wf-start",
                run=run_id,
                workflow=workflow.name,
                digest=workflow.digest(),
                seed=seed,
            )

    # -- recovery --------------------------------------------------------------

    def _recover(self) -> None:
        starts = self.journal.by_kind("wf-start")
        if not starts:
            raise WorkflowError(
                "journal has records but no wf-start; refusing to resume",
                {"journal": self.journal.name},
            )
        head = starts[0].data
        if head.get("digest") != self.workflow.digest():
            raise WorkflowError(
                f"journal {self.journal.name!r} was written by workflow "
                f"{head.get('workflow')!r} (digest {head.get('digest')!r}); "
                "refusing to resume a different definition",
                {"journal": self.journal.name, "digest": str(head.get("digest"))},
            )
        self.run_id = str(head.get("run", self.run_id))
        self.seed = int(head.get("seed", self.seed))
        self._started_at = starts[0].t
        for entry in self.journal.by_kind("stage-done"):
            stage = entry.data["stage"]
            address = entry.data["record"]
            if entry.data.get("status") == "ok":
                self.completed[stage] = address
                self._outputs[stage] = dict(entry.data.get("outputs", {}))
            else:
                self.failed[stage] = address
            self._finished_at = entry.t

    # -- scheduling ------------------------------------------------------------

    def _priority(self, stage: str) -> str:
        return hashlib.sha256(f"{self.seed}:{stage}".encode("utf-8")).hexdigest()

    def blocked(self) -> tuple[str, ...]:
        """Stages that can never run: downstream of a failed stage."""
        out: set[str] = set()
        for name in sorted(self.failed):
            out.update(self.workflow.descendants(name))
        out -= set(self.completed)
        out -= set(self.failed)
        return tuple(sorted(out))

    def _ready(self) -> list[str]:
        settled = set(self.completed) | set(self.failed) | set(self.blocked())
        ready = [
            name
            for name in self.workflow.stages
            if name not in settled
            and all(p in self.completed for p in self.workflow.parents(name))
        ]
        ready.sort(key=lambda name: (self._priority(name), name))
        return ready

    def pending(self) -> tuple[str, ...]:
        """Stages not yet settled (neither finished, failed, nor blocked)."""
        settled = set(self.completed) | set(self.failed) | set(self.blocked())
        return tuple(sorted(set(self.workflow.stages) - settled))

    # -- driving ---------------------------------------------------------------

    def run(self, *, max_stages: int | None = None) -> WorkflowResult:
        """Drive ready stages until the DAG settles (or *max_stages* were
        driven this call — the hook tests use to stop mid-DAG)."""
        if self._started_at is None:
            self._started_at = self.clock.now
        order: list[str] = []
        while True:
            if max_stages is not None and len(order) >= max_stages:
                break
            # recompute after every stage: the next stage to start is a pure
            # function of the settled set, so a resumed executor continues in
            # exactly the order the uninterrupted run would have used — wave
            # batching would let a mid-wave crash reshuffle submission order
            # (and with it service-side id allocation) on resume
            ready = self._ready()
            if not ready:
                break
            name = ready[0]
            order.append(name)
            self._drive(name)
        if self.journal is not None and not self.pending():
            if not self.journal.by_kind("wf-done"):
                self.journal.append(
                    "wf-done",
                    run=self.run_id,
                    completed=len(self.completed),
                    failed=len(self.failed),
                )
        makespan = 0.0
        if self._started_at is not None and self._finished_at is not None:
            makespan = max(0.0, self._finished_at - self._started_at)
        return WorkflowResult(
            run=self.run_id,
            workflow=self.workflow.name,
            completed=dict(self.completed),
            failed=dict(self.failed),
            skipped=self.blocked(),
            stage_order=tuple(order),
            makespan=makespan,
        )

    # -- one stage -------------------------------------------------------------

    def _resolve_inputs(self, stage) -> tuple[dict[str, str], dict[str, str]]:
        """(port -> blob address, port -> blob content) for a ready stage."""
        addresses: dict[str, str] = {}
        for port in sorted(stage.inputs):
            binding = stage.inputs[port]
            if binding.kind == "const":
                addresses[port] = self.store.put_blob(binding.value)
            else:
                addresses[port] = self._outputs[binding.stage][binding.port]
        return addresses, {
            port: self.store.blob(addr) for port, addr in addresses.items()
        }

    def _drive(self, name: str) -> None:
        stage = self.workflow.stages[name]
        key = stage.idempotency_key(self.run_id)
        if self.journal is not None:
            self.journal.append("stage-start", stage=name, key=key)
        input_addrs, input_contents = self._resolve_inputs(stage)
        parents = {p: self.completed[p] for p in self.workflow.parents(name)}
        obs = getattr(self.runtime.network, "observability", None)
        span = None
        error_code = ""
        if obs is not None:
            span = obs.tracer.start(
                f"stage {name}",
                "internal",
                "workflow",
                self.runtime.source,
                attributes={
                    "workflow": self.workflow.name,
                    "run": self.run_id,
                    "stage": name,
                    "stage.kind": stage.kind,
                },
            )
        started = self.clock.now
        try:
            outputs, failure = self._attempts(stage, key, input_contents)
            if failure is not None:
                error_code = failure.get("code", "")
        except ServiceCrash:
            # the process-death primitive: no stage-done record lands, so a
            # post-crash executor over the same journal re-drives this stage
            error_code = "ServiceCrash"
            raise
        finally:
            if span is not None:
                obs.tracer.end(span, error=error_code)
        status = "ok" if failure is None else "failed"
        output_addrs = {
            port: self.store.put_blob(outputs[port]) for port in sorted(outputs)
        }
        record = make_record(
            workflow=self.workflow.name,
            workflow_digest=self.workflow.digest(),
            run=self.run_id,
            stage=name,
            kind=stage.kind,
            command=stage.command(),
            inputs=input_addrs,
            outputs=output_addrs,
            parents=parents,
            status=status,
            error=failure,
        )
        address = self.store.seal(record)
        if span is not None:
            self.store.link_trace(address, span.trace_id)
        if self.journal is not None:
            self.journal.append(
                "stage-done",
                stage=name,
                record=address,
                outputs=output_addrs,
                status=status,
                elapsed=self.clock.now - started,
                key=key,
            )
        self._finished_at = self.clock.now
        if status == "ok":
            self.completed[name] = address
            self._outputs[name] = output_addrs
        else:
            self.failed[name] = address

    def _attempts(
        self, stage, key: str, inputs: dict[str, str]
    ) -> tuple[dict[str, str], dict[str, str] | None]:
        """The stage retry loop: (outputs, None) or ({}, classified error)."""
        ctx = StageContext(self.runtime, stage, key)
        policy = RetryPolicy(max_attempts=max(1, stage.retries))
        rng = random.Random(f"{self.seed}:{self.run_id}:{stage.name}")
        attempts = 0
        while True:
            attempts += 1
            ticket = None
            try:
                if self.admission is not None:
                    ticket = self.admission.admit("workflow", method=stage.kind)
                raw = stage.execute(ctx, inputs)
                return (
                    {port: str(raw[port]) for port in sorted(raw)},
                    None,
                )
            except ServiceCrash:
                raise
            except STAGE_ERRORS as exc:
                if is_retryable(exc) and policy.retries_remaining(attempts):
                    delay = policy.backoff(attempts - 1, rng)
                    hint = retry_after_hint(exc)
                    if hint is not None:
                        delay = hint
                    self.clock.advance(delay)
                    continue
                return {}, self._classify(stage, exc, attempts)
            finally:
                if ticket is not None:
                    self.admission.release(ticket)

    @staticmethod
    def _classify(stage, exc: BaseException, attempts: int) -> dict[str, str]:
        """The failure record's error map, under the common taxonomy."""
        if isinstance(exc, PortalError):
            code, message = exc.code, exc.message
        elif isinstance(exc, SoapFaultError):
            code, message = "Soap.Fault", str(exc)
        else:
            code, message = "Portal.Workflow", str(exc)
        return {
            "code": code,
            "message": message,
            "stage": stage.name,
            "attempts": str(attempts),
        }
