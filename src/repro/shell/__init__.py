"""repro.shell — the portal workflow engine with immutable provenance.

The paper's §6 "distributed operating system" pictured composable
core-service commands connected by pipes.  This package is that layer,
generalized from pipes to DAGs:

- :mod:`repro.shell.stages` — the typed stage catalog (batch-script
  generation, metascheduled placement, Globusrun, SRB get/put, and a
  generic SOAP call), each with explicit idempotency keys;
- :mod:`repro.shell.dag` — workflows as build-time-validated DAGs with
  named ports and canonical content digests;
- :mod:`repro.shell.runtime` — the binding to a live deployment's SOAP
  endpoints;
- :mod:`repro.shell.executor` — the deterministic, journaled, resumable
  executor on the virtual clock;
- :mod:`repro.shell.provenance` — the content-addressed, append-only
  provenance store (``repro.shell.provenance/v1`` records);
- :mod:`repro.shell.report` / :mod:`repro.shell.portlet` — the offline
  reporter and the portal window over a run's provenance tree.

See ``docs/SHELL.md``.
"""

from repro.shell.dag import Binding, Workflow, const, ref
from repro.shell.executor import (
    STAGE_ERRORS,
    WorkflowExecutor,
    WorkflowResult,
)
from repro.shell.portlet import WorkflowPortlet
from repro.shell.provenance import (
    PROVENANCE_SCHEMA,
    ProvenanceStore,
    content_address,
    make_record,
)
from repro.shell.report import (
    critical_path,
    provenance_tree,
    render_report,
    stage_timings,
)
from repro.shell.runtime import (
    SERVICE_NAMESPACES,
    StageContext,
    WorkflowRuntime,
)
from repro.shell.stages import (
    BatchScriptStage,
    GlobusrunStage,
    MetaScheduleStage,
    SoapCallStage,
    SrbGetStage,
    SrbPutStage,
    WorkflowStage,
)

__all__ = [
    "PROVENANCE_SCHEMA",
    "SERVICE_NAMESPACES",
    "STAGE_ERRORS",
    "BatchScriptStage",
    "Binding",
    "GlobusrunStage",
    "MetaScheduleStage",
    "ProvenanceStore",
    "SoapCallStage",
    "SrbGetStage",
    "SrbPutStage",
    "StageContext",
    "Workflow",
    "WorkflowExecutor",
    "WorkflowPortlet",
    "WorkflowResult",
    "WorkflowRuntime",
    "WorkflowStage",
    "const",
    "content_address",
    "critical_path",
    "make_record",
    "provenance_tree",
    "ref",
    "render_report",
    "stage_timings",
]
