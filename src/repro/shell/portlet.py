"""The workflow window: a portlet rendering a run's provenance tree.

A *local* portlet by design: the provenance store lives with the executor
on the UI host (its journal is the UI host's disk), so there is no SOAP
hop to make — the portlet walks the same sealed records the offline
reporter does and renders them as nested lists.  Unlike the reporter's
byte-identity tree, the portlet may show the trace side channel: each
sealed stage links its exemplar trace id, giving the operator a jump
from a provenance node to the span waterfall that produced it.
"""

from __future__ import annotations

import html
from typing import Any

from repro.portlets.base import Portlet
from repro.shell.provenance import ProvenanceStore


def _esc(value: Any) -> str:
    """Stage names, error messages, and addresses all go through here —
    workflow definitions are user-supplied and must not inject markup."""
    return html.escape(str(value), quote=True)


class WorkflowPortlet(Portlet):
    """Render one run's provenance chain as a tree of stage nodes."""

    def __init__(
        self,
        store: ProvenanceStore,
        run: str,
        *,
        name: str = "workflow",
        title: str = "Workflow Provenance",
    ):
        super().__init__(name, title)
        self.store = store
        self.run = run

    def render(self, container_base: str) -> str:
        by_stage: dict[str, tuple[str, dict]] = {}
        for address, record in self.store.records().items():
            if record.get("run") == self.run:
                by_stage[record["stage"]] = (address, record)
        children: dict[str, list[str]] = {stage: [] for stage in by_stage}
        roots: list[str] = []
        for stage in sorted(by_stage):
            _, record = by_stage[stage]
            parents = sorted(
                name for name in record.get("parents", {}) if name in by_stage
            )
            if parents:
                children[parents[0]].append(stage)
            else:
                roots.append(stage)
        problems = self.store.verify()
        chain = (
            '<p class="ok">chain verified</p>'
            if not problems
            else f'<p class="error">chain broken: {_esc("; ".join(problems))}</p>'
        )
        out = [
            f"<h3>{_esc(self.title)}</h3>",
            f"<p>run {_esc(self.run)}: {len(by_stage)} sealed stage(s)</p>",
            chain,
        ]

        def node(stage: str) -> str:
            address, record = by_stage[stage]
            status = record.get("status", "ok")
            cells = [
                f"<b>{_esc(stage)}</b>",
                f"<i>{_esc(record.get('kind', '?'))}</i>",
                f'<span class="{_esc(status)}">{_esc(status)}</span>',
                f"<code>{_esc(address[:16])}</code>",
            ]
            if status != "ok":
                code = record.get("error", {}).get("code", "?")
                cells.append(f'<span class="error">{_esc(code)}</span>')
            trace = self.store.exemplar(address)
            if trace:
                cells.append(f"<small>trace {_esc(trace)}</small>")
            line = "<li>" + " ".join(cells)
            kids = sorted(children[stage])
            if kids:
                line += "<ul>" + "".join(node(kid) for kid in kids) + "</ul>"
            return line + "</li>"

        out.append("<ul>" + "".join(node(root) for root in sorted(roots)) + "</ul>")
        return "\n".join(out)
