"""Common portal error taxonomy.

Section 3 of the paper: "Interoperability also requires consistent error
messaging.  SOAP calls to services may result in both SOAP errors and
implementation errors (such as, the file didn't get transferred because the
disk was full).  Thus the standard set of portal services that we are building
must define and relay a common set of error messages for this second class of
errors."

This module defines that common set.  Every portal web service in
:mod:`repro.services` raises subclasses of :class:`PortalError` for
*implementation* errors; the SOAP layer (:mod:`repro.soap`) maps them onto
SOAP faults with a stable ``faultcode``/``detail`` convention so that a client
written against one provider's service decodes errors from any other
provider's service identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class PortalError(Exception):
    """Base class for the common portal error vocabulary.

    Attributes:
        code: stable machine-readable error code (``"Portal.<Category>"``).
        message: human-readable description.
        detail: optional structured payload (service specific, but always
            expressible as string key/value pairs so it survives SOAP detail
            encoding).
        retryable: whether a client may meaningfully retry the same request
            (possibly against another provider of the same interface).  Part
            of the common vocabulary: every provider's service classifies its
            errors identically, so retry loops written against one provider
            behave the same against all of them.
    """

    code = "Portal.Error"
    retryable = False

    def __init__(self, message: str, detail: dict[str, str] | None = None):
        super().__init__(message)
        self.message = message
        self.detail: dict[str, str] = dict(detail or {})

    def to_detail(self) -> dict[str, str]:
        """Flatten into the string map carried in a SOAP fault detail."""
        out = {"code": self.code, "message": self.message}
        for key, value in self.detail.items():
            out[f"detail.{key}"] = str(value)
        return out

    @staticmethod
    def from_detail(detail: dict[str, str]) -> "PortalError":
        """Reconstruct the matching :class:`PortalError` subclass from a SOAP
        fault detail map produced by :meth:`to_detail`."""
        code = detail.get("code", "Portal.Error")
        message = detail.get("message", "unknown portal error")
        extra = {
            key[len("detail."):]: value
            for key, value in detail.items()
            if key.startswith("detail.")
        }
        cls = _CODE_REGISTRY.get(code, PortalError)
        err = cls.__new__(cls)
        PortalError.__init__(err, message, extra)
        return err

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(code={self.code!r}, message={self.message!r})"


class AuthenticationError(PortalError):
    """The caller could not be authenticated (bad ticket, expired proxy,
    unverifiable SAML assertion)."""

    code = "Portal.Authentication"
    retryable = False  # a bad credential stays bad on retry


class AuthorizationError(PortalError):
    """The caller is authenticated but not permitted to perform the action."""

    code = "Portal.Authorization"
    retryable = False  # permission does not appear by retrying


class ResourceNotFoundError(PortalError):
    """A named resource (file, collection, context, job, host) does not exist."""

    code = "Portal.ResourceNotFound"
    retryable = False  # the name will still not exist


class ResourceExhaustedError(PortalError):
    """A backend resource limit was hit (the paper's canonical example: the
    file didn't get transferred because the disk was full)."""

    code = "Portal.ResourceExhausted"
    retryable = True


class InvalidRequestError(PortalError):
    """The request was syntactically valid SOAP but semantically invalid for
    the service (bad job description, malformed XML payload, unknown queue)."""

    code = "Portal.InvalidRequest"
    retryable = False  # the same request stays invalid


class ServiceUnavailableError(PortalError):
    """A required backend (queuing system, SRB server, KDC) is unreachable."""

    code = "Portal.ServiceUnavailable"
    retryable = True


class JobError(PortalError):
    """Job submission or execution failed on the computational backend."""

    code = "Portal.Job"
    retryable = False  # resubmission is a policy decision, not a blind retry


class DataTransferError(PortalError):
    """A data management operation failed mid-transfer."""

    code = "Portal.DataTransfer"
    retryable = True


class ContextError(PortalError):
    """Context-manager specific failure (missing context, bad hierarchy)."""

    code = "Portal.Context"
    retryable = False


class DiscoveryError(PortalError):
    """Registry lookup/publication failure (UDDI or container hierarchy)."""

    code = "Portal.Discovery"
    retryable = False


class ServerBusyError(PortalError):
    """The server refused the request under load-shedding policy.

    Raised by the admission-control layer (:mod:`repro.loadmgmt`) when a
    request would wait longer than the service's queue-wait bound, when a
    per-service rate limiter is out of tokens, or when a concurrency
    bulkhead is full.  Always retryable — the condition is transient by
    construction — and carries a ``retryAfter`` detail (virtual seconds)
    that retry loops should honour instead of blind exponential backoff.
    """

    code = "Portal.ServerBusy"
    retryable = True

    @property
    def retry_after(self) -> float | None:
        """The server's retry hint in virtual seconds, if parseable."""
        raw = self.detail.get("retryAfter")
        if raw is None:
            return None
        try:
            value = float(raw)
        except (TypeError, ValueError):
            return None
        return value if value >= 0 else None


def retry_after_hint(exc: BaseException) -> float | None:
    """The server-supplied retry-after hint carried by *exc*, if any.

    Works on a local :class:`ServerBusyError` and on any reconstructed
    :class:`PortalError` whose detail carries ``retryAfter`` (the SOAP
    fault round-trip preserves the detail map, not the subclass property).
    """
    if not isinstance(exc, PortalError):
        return None
    raw = exc.detail.get("retryAfter")
    if raw is None:
        return None
    try:
        value = float(raw)
    except (TypeError, ValueError):
        return None
    return value if value >= 0 else None


class DeadlineExceededError(PortalError):
    """The caller's deadline passed before the work completed.

    Terminal by definition: the time budget is spent, so retrying the same
    call cannot help.  Raised client-side when a retry loop runs out of time
    and server-side when a request arrives with an already-expired deadline
    header (the server sheds the doomed work instead of running it).
    """

    code = "Portal.DeadlineExceeded"
    retryable = False  # the time budget is already spent


class BudgetViolationError(PortalError):
    """A SOAP hop's deadline budget *grew* instead of shrinking.

    Every nested call must finish within its caller's budget, so the
    deadline riding a request can only move earlier (or stay put) as the
    chain deepens.  A hop that arrives with a *later* absolute deadline
    than its enclosing call means somewhere a stale or forged budget was
    propagated — the callee would happily work past the point the original
    caller gave up.  Terminal: retrying re-sends the same broken budget.
    """

    code = "Portal.BudgetViolation"
    retryable = False  # the propagated budget stays broken on retry


class SchemaError(PortalError):
    """An XML document failed schema validation or binding."""

    code = "Portal.Schema"
    retryable = False  # the document will not validate twice


class ReplicationError(PortalError):
    """A replication-protocol failure (malformed sync payload, out-of-order
    operation, region mismatch)."""

    code = "Portal.Replication"
    retryable = False  # a protocol violation does not heal on retry


class QuorumLostError(ReplicationError):
    """Too few replicas acknowledged a write to meet the configured quorum.

    Retryable by construction: replicas come back (repair, partition heal,
    hinted handoff) and the coordinator's operation log preserves the
    write, so re-issuing against a healed quorum succeeds.
    """

    code = "Portal.QuorumLost"
    retryable = True


class WorkflowError(PortalError):
    """A workflow-engine failure: invalid DAG wiring, a stage driven past
    its retry budget, or a provenance-chain integrity break.

    Terminal: the DAG (or the chain) is wrong, and re-running the same
    definition reproduces the same failure.  Individual stage *attempts*
    retry under :mod:`repro.resilience` before this error is raised.
    """

    code = "Portal.Workflow"
    retryable = False  # the definition or the chain is wrong; retries ran already


class StaleReadError(ReplicationError):
    """A read could only be served by a replica whose staleness exceeds the
    caller's bound (and the caller did not opt into stale reads).

    Retryable: anti-entropy is converging the replica; the same read
    against a healed region returns fresh data.
    """

    code = "Portal.StaleRead"
    retryable = True


_CODE_REGISTRY: dict[str, type[PortalError]] = {
    cls.code: cls
    for cls in (
        PortalError,
        AuthenticationError,
        AuthorizationError,
        ResourceNotFoundError,
        ResourceExhaustedError,
        InvalidRequestError,
        ServiceUnavailableError,
        JobError,
        DataTransferError,
        ContextError,
        SchemaError,
        DiscoveryError,
        BudgetViolationError,
        DeadlineExceededError,
        ServerBusyError,
        ReplicationError,
        QuorumLostError,
        StaleReadError,
        WorkflowError,
    )
}


def retryable_codes() -> dict[str, bool]:
    """The full ``Portal.*`` code -> retryable classification table."""
    return {code: cls.retryable for code, cls in sorted(_CODE_REGISTRY.items())}


@dataclass
class ErrorReport:
    """A normalized record of a service-side error, suitable for relaying to
    monitoring portlets or archival in a user context."""

    code: str
    message: str
    service: str = ""
    operation: str = ""
    detail: dict[str, str] = field(default_factory=dict)

    @staticmethod
    def from_error(
        err: PortalError, *, service: str = "", operation: str = ""
    ) -> "ErrorReport":
        return ErrorReport(
            code=err.code,
            message=err.message,
            service=service,
            operation=operation,
            detail=dict(err.detail),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "service": self.service,
            "operation": self.operation,
            "detail": dict(self.detail),
        }
