"""WSRP-style remote portlets.

§6: "These client interfaces themselves can be aggregated into a portal
interface.  The discovery, binding, and communication between such portlet
components may be handled through standards such as the WSRP."

Where :class:`repro.portlets.webform.WebFormPortlet` proxies *raw HTML*
from a remote web server (screen-scraping with URL remapping), WSRP makes
the portlet itself the remote service: a *producer* hosts portlet
implementations and exposes ``getServiceDescription`` / ``getMarkup`` /
``performBlockingInteraction`` over SOAP; the consumer's container renders
markup fragments it receives, with no HTML rewriting at all.

The ablation in ``benchmarks/test_a3_remote_portlets.py`` compares the two
approaches.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.faults import InvalidRequestError
from repro.portlets.base import Portlet
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer

WSRP_NAMESPACE = "urn:oasis:names:tc:wsrp:v1"

# a producer-side factory: user -> a fresh portlet instance for that user
PortletFactory = Callable[[str], Portlet]


class WsrpProducer:
    """Hosts portlets and serves their markup over SOAP.

    Per-user portlet instances give each consumer user independent state
    (the WSRP session concept), mirroring what the container does for
    local WebFormPortlets.
    """

    def __init__(self):
        self._factories: dict[str, tuple[PortletFactory, str]] = {}
        self._instances: dict[tuple[str, str], Portlet] = {}
        self.markup_requests = 0
        self.interactions = 0

    def register_portlet(
        self, handle: str, factory: PortletFactory, title: str = ""
    ) -> None:
        self._factories[handle] = (factory, title or handle)

    def _instance(self, handle: str, user: str) -> Portlet:
        if handle not in self._factories:
            raise InvalidRequestError(
                f"producer offers no portlet {handle!r}",
                {"handle": handle},
            )
        key = (handle, user)
        if key not in self._instances:
            self._instances[key] = self._factories[handle][0](user)
        return self._instances[key]

    # -- the WSRP operations ---------------------------------------------------

    def get_service_description(self) -> list[dict[str, str]]:
        """The offered portlets (handle + title)."""
        return [
            {"handle": handle, "title": title}
            for handle, (_factory, title) in sorted(self._factories.items())
        ]

    def get_markup(self, handle: str, user: str, base_url: str) -> str:
        """Render a portlet's current markup for *user*.

        ``base_url`` is the *consumer's* interaction URL base, so any
        navigation the portlet emits routes back through the consumer.
        """
        self.markup_requests += 1
        return self._instance(handle, user).render(base_url)

    def perform_blocking_interaction(
        self,
        handle: str,
        user: str,
        base_url: str,
        target: str,
        method: str,
        fields: dict[str, Any],
    ) -> str:
        """Process a user interaction and return the new markup."""
        self.interactions += 1
        portlet = self._instance(handle, user)
        return portlet.interact(
            base_url,
            target=target,
            method=method or "GET",
            fields={k: str(v) for k, v in sorted((fields or {}).items())},
        )

    def release_session(self, handle: str, user: str) -> bool:
        """Drop the per-user instance (WSRP session release)."""
        return self._instances.pop((handle, user), None) is not None


def deploy_wsrp_producer(
    network: VirtualNetwork,
    producer: WsrpProducer,
    host: str,
    *,
    path: str = "/wsrp",
) -> str:
    """Expose a producer over SOAP; returns the endpoint URL."""
    server = HttpServer(host, network)
    soap = SoapService("WsrpProducer", WSRP_NAMESPACE)
    soap.expose(producer.get_service_description)
    soap.expose(producer.get_markup)
    soap.expose(producer.perform_blocking_interaction)
    soap.expose(producer.release_session)
    return soap.mount(server, path)


class WsrpConsumerPortlet(Portlet):
    """The consumer-side proxy: one remote portlet in the local container.

    Unlike WebFormPortlet there is no HTML rewriting here — the producer
    renders against the consumer's base URL directly.
    """

    def __init__(
        self,
        name: str,
        network: VirtualNetwork,
        producer_endpoint: str,
        handle: str,
        user: str,
        *,
        title: str = "",
        consumer_host: str = "portal",
    ):
        super().__init__(name, title)
        self.handle = handle
        self.user = user
        self._client = SoapClient(
            network, producer_endpoint, WSRP_NAMESPACE, source=consumer_host
        )

    def render(self, container_base: str) -> str:
        return self._client.call(
            "get_markup", self.handle, self.user, container_base
        )

    def interact(
        self,
        container_base: str,
        *,
        target: str,
        method: str = "GET",
        fields: dict[str, str] | None = None,
    ) -> str:
        return self._client.call(
            "perform_blocking_interaction",
            self.handle, self.user, container_base, target, method,
            dict(fields or {}),
        )


def discover_portlets(
    network: VirtualNetwork, endpoint: str, *, source: str = "portal"
) -> list[dict[str, str]]:
    """Consumer-side discovery: what does this producer offer?"""
    client = SoapClient(network, endpoint, WSRP_NAMESPACE, source=source)
    return client.call("get_service_description")
