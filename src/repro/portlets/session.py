"""Distributed portlet session state.

§3.3: "The aggregation of distributed portlets into portals will also
introduce the need for a distributed session state."  When a user's portal
page aggregates WebFormPortlets, the interesting state — which remote page
each portlet is on, and the session cookies it holds against the remote
server — lives in the container's per-user portlet instances.  If the user
moves to a different portal server (or the server restarts), that state is
gone and every remote session starts over.

This module provides the distributed answer: a :class:`SessionStateService`
(a SOAP web service holding serialized per-user portlet state) plus
container hooks to checkpoint and restore.  A user can render a page on
portal A, have portal B restore from the shared service, and continue the
same remote sessions — cookies included.
"""

from __future__ import annotations

import json
from typing import Any

from repro.portlets.container import PortletContainer
from repro.portlets.webpage import WebPagePortlet
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.http import parse_url
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer

SESSION_NAMESPACE = "urn:gce:portlet-session-state"


class SessionStateService:
    """The shared store: (user, portlet) -> opaque serialized state."""

    def __init__(self):
        self._states: dict[str, dict[str, str]] = {}
        self.saves = 0
        self.restores = 0

    def save(self, user: str, portlet: str, state: str) -> bool:
        """Store one portlet's serialized state for a user."""
        self._states.setdefault(user, {})[portlet] = state
        self.saves += 1
        return True

    def load(self, user: str, portlet: str) -> str:
        """The stored state, or the empty string."""
        self.restores += 1
        return self._states.get(user, {}).get(portlet, "")

    def drop(self, user: str) -> int:
        """Forget a user's distributed session; returns entries removed."""
        return len(self._states.pop(user, {}))

    def users(self) -> list[str]:
        return sorted(self._states)


def deploy_session_state(
    network: VirtualNetwork, host: str = "sessions.gridportal.org"
) -> tuple[SessionStateService, str]:
    """Stand up the shared session-state service; returns (impl, URL)."""
    impl = SessionStateService()
    server = HttpServer(host, network)
    soap = SoapService("PortletSessionState", SESSION_NAMESPACE)
    soap.expose(impl.save)
    soap.expose(impl.load)
    soap.expose(impl.drop)
    soap.expose(impl.users)
    return impl, soap.mount(server, "/sessions")


def _portlet_state(portlet: WebPagePortlet) -> str:
    """Serialize the state worth distributing: the current URL and the
    cookie jar against the remote host."""
    host = parse_url(portlet.current_url).host
    return json.dumps({
        "current_url": portlet.current_url,
        "cookies": portlet.client.cookies_for(host),
    })


def _restore_portlet_state(portlet: WebPagePortlet, state: str) -> None:
    record = json.loads(state)
    portlet.current_url = record["current_url"]
    host = parse_url(portlet.current_url).host
    jar = portlet.client._cookies.setdefault(host, {})
    jar.update(record.get("cookies", {}))
    # force a refetch of the restored location on next render
    portlet.raw = ""
    portlet.document = None


class DistributedSessionContainer(PortletContainer):
    """A portlet container that checkpoints remote-portlet state to a
    shared :class:`SessionStateService` and restores it on first touch, so
    any portal server in the federation resumes the user's sessions."""

    def __init__(
        self,
        network: VirtualNetwork,
        host: str,
        session_endpoint: str,
        **kwargs: Any,
    ):
        super().__init__(network, host, **kwargs)
        self._sessions = SoapClient(
            network, session_endpoint, SESSION_NAMESPACE, source=host
        )
        self._restored: set[tuple[str, str]] = set()

    def portlet_for(self, user: str, name: str):
        first_touch = (
            name not in self._local and (user, name) not in self._instances
        )
        portlet = super().portlet_for(user, name)
        key = (user, name)
        if first_touch and isinstance(portlet, WebPagePortlet) and key not in self._restored:
            self._restored.add(key)
            state = self._sessions.call("load", user, name)
            if state:
                _restore_portlet_state(portlet, state)
        return portlet

    def checkpoint(self, user: str) -> int:
        """Push every remote portlet's state to the shared service;
        returns the number of portlets checkpointed."""
        count = 0
        # sorted walk: checkpoint order (and therefore the session service's
        # journal and any report built over it) must be seed-stable
        for (owner, name), portlet in sorted(self._instances.items()):
            if owner != user or not isinstance(portlet, WebPagePortlet):
                continue
            self._sessions.call("save", user, name, _portlet_state(portlet))
            count += 1
        return count
