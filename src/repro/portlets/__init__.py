"""The portlet layer (§5.4).

A Jetspeed-analogue with the four properties the paper lists: portlet types
for local and remote content; remote-content portlets that proxy the URL and
keep an in-memory copy; an administrator-edited XML registry
(``local-portlets.xreg``); and per-user display customization.  On top of
the basic :class:`WebPagePortlet`, :class:`WebFormPortlet` implements the
paper's three extensions:

1. "The portlet can post HTML Form parameters."
2. "The portlet maintains session state with remote Tomcat servers."
3. "The portlet remaps URLs in the remote page, so that the content of
   pages loaded from followed links and clicked buttons is loaded inside
   the portlet window."
"""

from repro.portlets.base import LocalPortlet, Portlet
from repro.portlets.registry import PortletEntry, PortletRegistry
from repro.portlets.webpage import WebPagePortlet
from repro.portlets.webform import WebFormPortlet
from repro.portlets.container import PortletContainer

__all__ = [
    "Portlet",
    "LocalPortlet",
    "PortletEntry",
    "PortletRegistry",
    "WebPagePortlet",
    "WebFormPortlet",
    "PortletContainer",
]
