"""WebPagePortlet: proxy a remote page into the portal."""

from __future__ import annotations

from repro.portlets.base import Portlet
from repro.transport.client import HttpClient
from repro.transport.http import parse_url
from repro.transport.network import TransportError, VirtualNetwork
from repro.xmlutil.element import XmlElement, XmlParseError, parse_xml


class WebPagePortlet(Portlet):
    """Loads a remote URL and keeps an in-memory copy for reformatting.

    "In the case of remote web content, the portlet is a proxy that loads
    the remote URL's contents and converts it into an in-memory Java
    object" — here, an :class:`XmlElement` tree when the content is
    well-formed, else the raw text.
    """

    def __init__(
        self,
        name: str,
        url: str,
        network: VirtualNetwork,
        *,
        title: str = "",
        container_host: str = "portal",
    ):
        super().__init__(name, title)
        self.url = url
        self.current_url = url
        self.client = HttpClient(network, container_host)
        self.document: XmlElement | None = None  # the in-memory copy
        self.raw: str = ""
        self.fetches = 0

    # -- fetching ---------------------------------------------------------------

    def fetch(self, url: str | None = None) -> str:
        """Load (or reload) the remote content into the in-memory copy."""
        target = url or self.current_url
        try:
            response = self.client.get(target)
        except TransportError as exc:
            self.document = None
            self.raw = f'<p class="portlet-error">unreachable: {exc}</p>'
            return self.raw
        self.fetches += 1
        self.current_url = str(parse_url(target))
        self.raw = response.body
        if not response.ok:
            self.document = None
            self.raw = (
                f'<p class="portlet-error">HTTP {response.status} from {target}</p>'
            )
            return self.raw
        try:
            self.document = parse_xml(response.body)
        except XmlParseError:
            self.document = None  # keep raw text for non-XML content
        return self.raw

    def content_fragment(self) -> str:
        """The fragment for the portlet window: the remote page's <body>
        children when the copy parsed, else the raw text."""
        if self.document is not None:
            body = self.document.find("body")
            root = body if body is not None else self.document
            return "".join(
                child.serialize() if isinstance(child, XmlElement) else child
                for child in root.content
            )
        return self.raw

    def render(self, container_base: str) -> str:
        if not self.raw and self.document is None:
            self.fetch()
        return self.content_fragment()
