"""The portlet registry: the ``local-portlets.xreg`` configuration.

"Portal administrators decide which content sources to provide.  In
Jetspeed, this is done by editing an XML configuration file
(local-portlets.xreg) to extend the appropriate portlet."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults import InvalidRequestError
from repro.portlets.base import Portlet
from repro.portlets.webform import WebFormPortlet
from repro.portlets.webpage import WebPagePortlet
from repro.transport.network import VirtualNetwork
from repro.xmlutil.element import XmlElement, parse_xml


@dataclass
class PortletEntry:
    """One xreg registration."""

    name: str
    type: str  # "WebPagePortlet" | "WebFormPortlet"
    url: str = ""
    title: str = ""
    parameters: dict[str, str] = field(default_factory=dict)

    def to_xml(self) -> XmlElement:
        node = XmlElement("portlet-entry", {"name": self.name, "type": self.type})
        if self.title:
            node.child("title", text=self.title)
        if self.url:
            node.child("url", text=self.url)
        for key, value in sorted(self.parameters.items()):
            node.child("parameter", text=value).set("name", key)
        return node

    @staticmethod
    def from_xml(node: XmlElement) -> "PortletEntry":
        entry = PortletEntry(
            name=node.get("name", "") or "",
            type=node.get("type", "") or "",
            title=node.findtext("title"),
            url=node.findtext("url"),
        )
        for param in node.findall("parameter"):
            entry.parameters[param.get("name", "") or ""] = param.text
        return entry


class PortletRegistry:
    """All registered portlet entries, round-trippable through xreg XML."""

    KNOWN_TYPES = ("WebPagePortlet", "WebFormPortlet")

    def __init__(self):
        self._entries: dict[str, PortletEntry] = {}

    def register(self, entry: PortletEntry) -> None:
        if entry.type not in self.KNOWN_TYPES:
            raise InvalidRequestError(
                f"unknown portlet type {entry.type!r}; known: {self.KNOWN_TYPES}"
            )
        if not entry.url:
            raise InvalidRequestError(
                f"portlet entry {entry.name!r} needs a content url"
            )
        self._entries[entry.name] = entry

    def unregister(self, name: str) -> None:
        self._entries.pop(name, None)

    def entry(self, name: str) -> PortletEntry | None:
        return self._entries.get(name)

    def names(self) -> list[str]:
        return sorted(self._entries)

    # -- xreg round trip ----------------------------------------------------------

    def to_xreg(self) -> str:
        root = XmlElement("registry")
        for name in self.names():
            root.append(self._entries[name].to_xml())
        return root.serialize(indent=2, declaration=True)

    @staticmethod
    def from_xreg(text: str) -> "PortletRegistry":
        root = parse_xml(text)
        if root.tag.local != "registry":
            raise InvalidRequestError(f"not an xreg document: {root.tag}")
        registry = PortletRegistry()
        for node in root.findall("portlet-entry"):
            registry.register(PortletEntry.from_xml(node))
        return registry

    # -- instantiation --------------------------------------------------------------

    def instantiate(
        self, name: str, network: VirtualNetwork, *, container_host: str
    ) -> Portlet:
        entry = self._entries.get(name)
        if entry is None:
            raise InvalidRequestError(f"no portlet entry {name!r}")
        cls = WebFormPortlet if entry.type == "WebFormPortlet" else WebPagePortlet
        return cls(
            entry.name,
            entry.url,
            network,
            title=entry.title or entry.name,
            container_host=container_host,
        )
