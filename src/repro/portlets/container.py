"""The portlet container: per-user layouts, aggregation, interaction routing.

"Each component web page is contained in a table and the final composite
web page is a collection of nested HTML tables, each containing material
loaded from the specified content server. ... Users can customize their
portal displays by decorating them with only those portlets that interest
them."
"""

from __future__ import annotations

from repro.faults import InvalidRequestError
from repro.portlets.base import Portlet
from repro.portlets.registry import PortletRegistry
from repro.transport.http import HttpRequest, HttpResponse, parse_query
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer


class PortletContainer:
    """One portal's container, mounted at ``/portal`` on its host.

    Remote portlets are instantiated lazily *per user* so each user gets an
    independent remote session (feature 2 of WebFormPortlet works per user).
    Local portlets are registered programmatically and shared.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        host: str = "portal.gridportal.org",
        *,
        registry: PortletRegistry | None = None,
        columns: int = 2,
        server: HttpServer | None = None,
    ):
        self.network = network
        self.host = host
        self.registry = registry or PortletRegistry()
        self.columns = max(1, columns)
        self._local: dict[str, Portlet] = {}
        self._instances: dict[tuple[str, str], Portlet] = {}
        self._layouts: dict[str, list[str]] = {}
        self.pages_rendered = 0
        self.server = server or HttpServer(host, network)
        self.server.mount("/portal", self.handle)

    # -- configuration ------------------------------------------------------------

    def add_local_portlet(self, portlet: Portlet) -> None:
        self._local[portlet.name] = portlet

    def available_portlets(self) -> list[str]:
        return sorted(set(self.registry.names()) | set(self._local))

    def set_layout(self, user: str, portlet_names: list[str]) -> None:
        """A user decorates their display with the portlets that interest
        them."""
        unknown = [n for n in portlet_names if n not in self.available_portlets()]
        if unknown:
            raise InvalidRequestError(f"unknown portlets in layout: {unknown}")
        self._layouts[user] = list(portlet_names)

    def layout(self, user: str) -> list[str]:
        return list(self._layouts.get(user, self.available_portlets()))

    # -- portlet instances -----------------------------------------------------------

    def portlet_for(self, user: str, name: str) -> Portlet:
        if name in self._local:
            return self._local[name]
        key = (user, name)
        if key not in self._instances:
            self._instances[key] = self.registry.instantiate(
                name, self.network, container_host=self.host
            )
        return self._instances[key]

    def base_url(self, user: str) -> str:
        return f"/portal?user={user}"

    # -- aggregation: the nested-table composite page ------------------------------------

    def render_page(self, user: str) -> str:
        """The composite page: a collection of nested HTML tables."""
        names = self.layout(user)
        rows: list[list[str]] = []
        for index in range(0, len(names), self.columns):
            rows.append(names[index:index + self.columns])
        base = self.base_url(user)
        cells: list[str] = []
        cells.append(f"<html><head><title>{self.host} portal: {user}</title></head><body>")
        cells.append(f"<h1>Portal for {user}</h1>")
        cells.append('<table class="portal">')
        for row in rows:
            cells.append("<tr>")
            for name in row:
                portlet = self.portlet_for(user, name)
                fragment = portlet.render(base)
                cells.append(
                    '<td valign="top"><table class="portlet">'
                    f'<tr><th class="portlet-title">{portlet.title}</th></tr>'
                    f"<tr><td>{fragment}</td></tr></table></td>"
                )
            cells.append("</tr>")
        cells.append("</table></body></html>")
        self.pages_rendered += 1
        return "".join(cells)

    # -- HTTP handling ------------------------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        query = parse_query(request.url.query)
        user = query.get("user", "guest")
        portlet_name = query.get("portlet", "")
        if portlet_name:
            portlet = self.portlet_for(user, portlet_name)
            target = query.get("target", "")
            method = query.get("method", request.method)
            fields = request.form() if request.method == "POST" else {}
            if not target:
                return HttpResponse(400, body="portlet interaction needs a target")
            portlet.interact(
                self.base_url(user), target=target, method=method, fields=fields
            )
        return HttpResponse(
            200, {"Content-Type": "text/html"}, self.render_page(user)
        )
