"""The portlet interface and simple local portlets."""

from __future__ import annotations

from typing import Callable


class Portlet:
    """One component window on a portal page.

    ``render()`` returns the portlet's current HTML fragment.
    ``interact(...)`` handles a user action routed back to this portlet by
    the container (following a link or submitting a form inside the portlet
    window) and returns the new fragment.
    """

    def __init__(self, name: str, title: str = ""):
        self.name = name
        self.title = title or name

    def render(self, container_base: str) -> str:
        raise NotImplementedError

    def interact(
        self,
        container_base: str,
        *,
        target: str,
        method: str = "GET",
        fields: dict[str, str] | None = None,
    ) -> str:
        """Default: interactions just re-render (local portlets rarely care)."""
        return self.render(container_base)


class LocalPortlet(Portlet):
    """A portlet rendering locally generated content ("portlet types exist
    to retrieve both local and remote web content")."""

    def __init__(
        self,
        name: str,
        renderer: Callable[[], str],
        title: str = "",
    ):
        super().__init__(name, title)
        self._renderer = renderer

    def render(self, container_base: str) -> str:
        return self._renderer()
