"""WebFormPortlet: forms, remote sessions, and URL remapping.

"We have written a general purpose portlet that extends Jetspeed's simple
WebPagePortlet ... 1. The portlet can post HTML Form parameters.  2. The
portlet maintains session state with remote Tomcat servers.  3. The portlet
remaps URLs in the remote page, so that the content of pages loaded from
followed links and clicked buttons is loaded inside the portlet window."

Session state comes for free from the cookie jar in
:class:`repro.transport.client.HttpClient` (feature 2); this class adds the
form POST path (feature 1) and the link/action rewriting (feature 3).
"""

from __future__ import annotations

from repro.portlets.webpage import WebPagePortlet
from repro.transport.http import encode_query, parse_url
from repro.xmlutil.element import XmlElement


class WebFormPortlet(WebPagePortlet):
    """The paper's extended remote-content portlet."""

    # -- feature 1: posting forms --------------------------------------------------

    def post(self, url: str, fields: dict[str, str]) -> str:
        """POST form parameters to the remote server and take the response
        as the new in-memory copy."""
        response = self.client.post_form(url, fields)
        self.fetches += 1
        self.current_url = str(parse_url(url))
        self.raw = response.body
        try:
            from repro.xmlutil.element import parse_xml

            self.document = parse_xml(response.body)
        except ValueError:
            self.document = None
        return self.raw

    # -- feature 2: remote session state -------------------------------------------

    def remote_cookies(self) -> dict[str, str]:
        """The session cookies currently held against the remote host."""
        return self.client.cookies_for(parse_url(self.current_url).host)

    # -- feature 3: URL remapping ------------------------------------------------------

    def _portlet_url(self, container_base: str, target: str, *, post: bool) -> str:
        query = {"portlet": self.name, "target": target}
        if post:
            query["method"] = "POST"
        separator = "&" if "?" in container_base else "?"
        return f"{container_base}{separator}{encode_query(query)}"

    def _remap(self, node: XmlElement, container_base: str) -> None:
        base = parse_url(self.current_url)
        for element in node.iter():
            local = element.tag.local.lower()
            if local == "a":
                href = element.get("href")
                if href and not href.startswith("#"):
                    absolute = str(base.resolve(href))
                    element.set("href", self._portlet_url(
                        container_base, absolute, post=False
                    ))
            elif local == "form":
                action = element.get("action") or self.current_url
                absolute = str(base.resolve(action))
                element.set("action", self._portlet_url(
                    container_base, absolute, post=True
                ))
                element.set("method", "POST")

    def content_fragment_remapped(self, container_base: str) -> str:
        """The portlet window content with every link and form action routed
        back through the container.

        Remapping happens on a clone so the pristine in-memory copy can be
        re-rendered (possibly under a different container base) without
        re-wrapping already-remapped URLs.
        """
        if self.document is None:
            return self.content_fragment()
        snapshot = self.document.clone()
        body = snapshot.find("body")
        root = body if body is not None else snapshot
        self._remap(root, container_base)
        return "".join(
            child.serialize() if isinstance(child, XmlElement) else child
            for child in root.content
        )

    # -- container protocol ----------------------------------------------------------------

    def render(self, container_base: str) -> str:
        if not self.raw and self.document is None:
            self.fetch()
        return self.content_fragment_remapped(container_base)

    def interact(
        self,
        container_base: str,
        *,
        target: str,
        method: str = "GET",
        fields: dict[str, str] | None = None,
    ) -> str:
        """A click or submit routed back from the container: perform the
        remote request, then re-render inside the portlet window."""
        if method.upper() == "POST":
            self.post(target, fields or {})
        else:
            self.fetch(target)
        return self.content_fragment_remapped(container_base)
