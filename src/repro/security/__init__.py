"""The secure-web-services layer (§4 / Figure 2).

The paper builds single sign-on for SOAP services from four pieces, all
reproduced here as behavioural simulators (HMAC/XOR stand in for real
cryptography — see ``crypto.py``'s warning):

- :mod:`repro.security.kerberos` — a KDC with principals, keytabs, ticket
  granting, and session keys.
- :mod:`repro.security.gss` — GSS-API-style context establishment and
  ``wrap``/``unwrap``/``get_mic`` ("we are also developing signing methods
  based on the GSS API wrap and unwrap methods").
- :mod:`repro.security.gsi` — Globus-style proxy-certificate chains with
  delegation (the SDSC services are "GSI authenticated").
- :mod:`repro.security.saml` — mechanism-independent signed assertions
  carried in SOAP headers.
- :mod:`repro.security.authservice` — the Figure 2 Authentication Service:
  keytab confined to one well-secured server, client/server session objects
  holding the symmetric key halves, and per-request assertion verification
  delegated by the SOAP Service Provider (the "atomic step").
"""

from repro.security.kerberos import KerberosError, Kdc, Keytab, Ticket
from repro.security.gss import GssContext, GssError
from repro.security.gsi import GsiError, ProxyCertificate, SimpleCA
from repro.security.saml import SamlAssertion, SAML_NS
from repro.security.authservice import (
    AssertionInterceptor,
    AuthenticationService,
    ClientSecuritySession,
    deploy_auth_service,
)

__all__ = [
    "KerberosError",
    "Kdc",
    "Keytab",
    "Ticket",
    "GssContext",
    "GssError",
    "GsiError",
    "ProxyCertificate",
    "SimpleCA",
    "SamlAssertion",
    "SAML_NS",
    "AssertionInterceptor",
    "AuthenticationService",
    "ClientSecuritySession",
    "deploy_auth_service",
]
