"""Simulated Grid Security Infrastructure: proxy-certificate chains.

The SDSC services in §3 are "GSI authenticated" via pyGlobus/GSI-SOAP.  The
simulator models the pieces the job-submission and SRB paths exercise: a CA
issuing user credentials, limited-lifetime proxy certificates derived from
them (including proxy-of-proxy delegation), and chain verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.security import crypto


class GsiError(Exception):
    """Credential verification failure."""


@dataclass
class ProxyCertificate:
    """A (simulated) X.509 certificate in a GSI chain.

    ``signature`` binds (subject, issuer, not_after, depth) under the
    *issuer's* signing key; each proxy carries its own ``signing_key`` so it
    can in turn delegate.
    """

    subject: str
    issuer: str
    not_after: float
    depth: int
    signature: bytes
    signing_key: bytes = field(repr=False, default=b"")
    parent: "ProxyCertificate | None" = None

    def tbs(self) -> bytes:
        """The to-be-signed byte string."""
        return f"{self.subject}|{self.issuer}|{self.not_after}|{self.depth}".encode()

    def sign_proxy(self, *, lifetime: float, now: float) -> "ProxyCertificate":
        """Delegate: issue a child proxy, lifetime capped by this cert's."""
        if not self.signing_key:
            raise GsiError(f"{self.subject!r} cannot sign (no key material)")
        not_after = min(now + lifetime, self.not_after)
        child = ProxyCertificate(
            subject=f"{self.subject}/CN=proxy",
            issuer=self.subject,
            not_after=not_after,
            depth=self.depth + 1,
            signature=b"",
            signing_key=crypto.new_key(),
            parent=self,
        )
        child.signature = crypto.sign(self.signing_key, child.tbs())
        return child

    def chain(self) -> list["ProxyCertificate"]:
        """This certificate and its ancestry, leaf first."""
        out: list[ProxyCertificate] = []
        node: ProxyCertificate | None = self
        while node is not None:
            out.append(node)
            node = node.parent
        return out

    @property
    def identity(self) -> str:
        """The end-entity identity: the subject with proxy CNs stripped."""
        return self.subject.split("/CN=proxy")[0]


class SimpleCA:
    """A one-realm certificate authority."""

    def __init__(self, name: str = "/O=Grid/CN=Reproduction CA"):
        self.name = name
        self._key = crypto.new_key(name.encode("utf-8"))
        self._issued: dict[str, bytes] = {}

    def issue_credential(
        self, subject: str, *, lifetime: float, now: float
    ) -> ProxyCertificate:
        """Issue a long-term user credential signed by the CA."""
        cert = ProxyCertificate(
            subject=subject,
            issuer=self.name,
            not_after=now + lifetime,
            depth=0,
            signature=b"",
            signing_key=crypto.new_key(),
        )
        cert.signature = crypto.sign(self._key, cert.tbs())
        self._issued[subject] = cert.signing_key
        return cert

    def verify_chain(self, leaf: ProxyCertificate, *, now: float) -> str:
        """Verify a proxy chain up to this CA; returns the grid identity.

        Checks signatures link-by-link, expiry of every certificate, and
        monotonically increasing delegation depth.
        """
        chain = leaf.chain()
        root = chain[-1]
        if root.issuer != self.name:
            raise GsiError(f"chain does not terminate at CA {self.name!r}")
        if not crypto.verify(self._key, root.tbs(), root.signature):
            raise GsiError("root credential signature invalid")
        for cert in chain:
            if cert.not_after < now:
                raise GsiError(f"certificate {cert.subject!r} expired")
        for child, parent in zip(chain, chain[1:]):
            if child.issuer != parent.subject:
                raise GsiError(
                    f"issuer mismatch: {child.issuer!r} != {parent.subject!r}"
                )
            if child.depth != parent.depth + 1:
                raise GsiError("delegation depth not monotone")
            if not crypto.verify(parent.signing_key, child.tbs(), child.signature):
                raise GsiError(f"signature on {child.subject!r} invalid")
        return leaf.identity
