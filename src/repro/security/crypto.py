"""Toy symmetric crypto for the security simulators.

.. warning::
   This is a *behavioural stand-in*, *not* security: a deterministic XOR
   stream cipher keyed by SHA-256 plus HMAC-SHA256 authentication.  It
   preserves the properties the protocol simulation needs — data is opaque
   without the key, tampering is detected, both ends must share the key —
   while staying dependency-free and fast.  Do not reuse outside the
   simulator.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import os


def new_key(seed: bytes | None = None) -> bytes:
    """Generate a 32-byte key (random, or derived from a seed for
    deterministic tests)."""
    if seed is None:
        return os.urandom(32)
    return hashlib.sha256(b"key:" + seed).digest()


def derive_key(base: bytes, label: str) -> bytes:
    """Derive a sub-key bound to a label (e.g. per-session keys)."""
    return hmac.new(base, b"derive:" + label.encode("utf-8"), hashlib.sha256).digest()


def _keystream(key: bytes, nbytes: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        out.extend(hashlib.sha256(key + counter.to_bytes(8, "big")).digest())
        counter += 1
    return bytes(out[:nbytes])


def encrypt(key: bytes, plaintext: bytes) -> bytes:
    """Encrypt-then-MAC; output = ciphertext || 32-byte tag."""
    stream = _keystream(key, len(plaintext))
    ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
    tag = hmac.new(key, ciphertext, hashlib.sha256).digest()
    return ciphertext + tag


def decrypt(key: bytes, blob: bytes) -> bytes:
    """Verify the tag and decrypt; raises ValueError on tampering or a wrong
    key."""
    if len(blob) < 32:
        raise ValueError("ciphertext too short")
    ciphertext, tag = blob[:-32], blob[-32:]
    expected = hmac.new(key, ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise ValueError("message authentication failed")
    stream = _keystream(key, len(ciphertext))
    return bytes(a ^ b for a, b in zip(ciphertext, stream))


def sign(key: bytes, data: bytes) -> bytes:
    """Detached HMAC-SHA256 signature."""
    return hmac.new(key, data, hashlib.sha256).digest()


def verify(key: bytes, data: bytes, signature: bytes) -> bool:
    return hmac.compare_digest(sign(key, data), signature)


def b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))
