"""The SAML assertion verification cache (the GridCertLib pattern).

§4's protocol forwards every request's assertion to the Authentication
Service — an extra round trip per call that becomes the bottleneck the
moment calls cross regions.  The fix GridCertLib applies to SSO
credentials works here too: a verification is a *fact with an expiry*
("this assertion, for this principal, is valid until NotOnOrAfter"), so it
can be cached on the virtual clock and re-used until the earlier of the
cache TTL and the assertion's own expiry.

Entries are keyed on ``(principal, assertion id)`` — an assertion id alone
is not enough, because a forged assertion could reuse a cached id with a
different subject — and the cache supports targeted invalidation: when a
user's ticket is revoked or their session ends, every cached verification
for that principal dies with it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CachedVerification:
    """One positive verification: who it proved, until when."""

    principal: str
    assertion_id: str
    subject: str
    expires: float


class AssertionCache:
    """TTL cache of positive assertion verifications on the virtual clock.

    Only *positive* results are cached — a rejection must be re-checked
    every time, since the authoritative service may accept it later (clock
    skew) and caching denials would turn a blip into a lockout.
    """

    def __init__(self, clock, *, ttl: float = 300.0):
        self.clock = clock
        self.ttl = ttl
        self._entries: dict[tuple[str, str], CachedVerification] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, principal: str, assertion_id: str) -> CachedVerification | None:
        """The live cached verification, or ``None`` (expired ⇒ evicted)."""
        key = (principal, assertion_id)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if self.clock.now >= entry.expires:
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self,
        principal: str,
        assertion_id: str,
        subject: str,
        *,
        expires: float | None = None,
    ) -> CachedVerification:
        """Cache a positive verification.

        The entry lives until the earlier of ``now + ttl`` and the
        assertion's own ``NotOnOrAfter`` (*expires*) — a cache must never
        outlive the credential it vouches for.
        """
        bound = self.clock.now + self.ttl
        if expires is not None:
            bound = min(bound, float(expires))
        entry = CachedVerification(principal, assertion_id, subject, bound)
        self._entries[(principal, assertion_id)] = entry
        return entry

    def invalidate(self, principal: str, assertion_id: str) -> bool:
        """Drop one cached verification; True when something was dropped."""
        dropped = self._entries.pop((principal, assertion_id), None) is not None
        if dropped:
            self.invalidations += 1
        return dropped

    def invalidate_principal(self, principal: str) -> int:
        """Drop every cached verification for *principal* (ticket expiry,
        logout, revocation); returns how many died."""
        doomed = [key for key in sorted(self._entries) if key[0] == principal]
        for key in doomed:
            del self._entries[key]
        self.invalidations += len(doomed)
        return len(doomed)

    def purge_expired(self) -> int:
        """Evict every entry past its expiry; returns how many died."""
        now = self.clock.now
        doomed = [
            key for key in sorted(self._entries)
            if now >= self._entries[key].expires
        ]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }
