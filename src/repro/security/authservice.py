"""The Figure 2 single-sign-on Authentication Service.

Protocol, as in the paper:

1. "a user logs in through a web browser and gets a Kerberos ticket on the
   User Interface (UI) server" — :meth:`ClientSecuritySession.login` runs the
   AS and TGS exchanges against the realm's KDC.
2. "This server creates a client session object that contacts the
   Authentication Service, which launches a Kerberos server in a session
   object.  The client and server then establish a GSS context ... Each of
   these objects possesses one half of the symmetric key set" — the
   ``begin_session`` SOAP call carries the GSS initiator token; both ends
   derive the shared context key from the service ticket.
3. "Subsequent user interaction generates a SOAP request that includes a
   SAML assertion that is signed by the client object on the UI server" —
   the session object is a :class:`repro.soap.SoapClient` header provider.
4. "The SPP does not check the signature of the request directly but instead
   forwards to the Authentication Service, which verifies the signature" —
   :class:`AssertionInterceptor` performs that forwarding; this whole
   round-trip is the paper's "atomic step", measured in
   ``benchmarks/test_fig2_auth.py``.

The keytab exists only inside :class:`AuthenticationService` ("limiting the
use of keytabs to a single, well secured server is desirable").
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.faults import AuthenticationError
from repro.security import crypto
from repro.security.gss import GssContext, GssError
from repro.security.kerberos import Kdc, KerberosError, Keytab
from repro.security.saml import SamlAssertion
from repro.soap.client import SoapClient
from repro.soap.message import SoapEnvelope
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer
from repro.xmlutil.element import XmlElement, parse_xml

AUTH_NAMESPACE = "urn:gce:authentication-service"
SERVICE_PRINCIPAL = "authsvc"

_session_ids = itertools.count(1)


class AuthenticationService:
    """Server side: holds the keytab and per-user GSS session objects."""

    def __init__(self, kdc: Kdc, *, assertion_lifetime: float = 300.0):
        self.kdc = kdc
        self.clock = kdc.clock
        self.assertion_lifetime = assertion_lifetime
        self.keytab = Keytab()
        kdc.add_service(SERVICE_PRINCIPAL, self.keytab)
        self._sessions: dict[str, GssContext] = {}
        self.verifications = 0

    # -- SOAP methods ------------------------------------------------------------

    def begin_session(self, user: str, gss_token_b64: str) -> dict[str, Any]:
        """Accept a GSS initiator token; 'launches a Kerberos server in a
        session object'.  Returns the session handle."""
        try:
            context = GssContext.accept_sec_context(
                crypto.unb64(gss_token_b64), self.keytab, now=self.clock.now
            )
        except GssError as exc:
            raise AuthenticationError(f"GSS context rejected: {exc}") from exc
        if context.initiator != user:
            raise AuthenticationError(
                f"ticket principal {context.initiator!r} does not match "
                f"claimed user {user!r}"
            )
        session_id = f"gss-session-{next(_session_ids):08d}"
        self._sessions[session_id] = context
        return {"session": session_id, "principal": context.initiator}

    def verify(self, session_id: str, assertion_xml: str) -> dict[str, Any]:
        """Verify a signed assertion on behalf of an SPP (the atomic step)."""
        self.verifications += 1
        context = self._sessions.get(session_id)
        if context is None:
            return {"valid": False, "subject": "", "reason": "unknown session"}
        try:
            assertion = SamlAssertion.from_xml(assertion_xml)
        except ValueError as exc:
            return {"valid": False, "subject": "", "reason": f"bad assertion: {exc}"}
        if not assertion.verify_signature(context.session_key()):
            return {"valid": False, "subject": "", "reason": "signature invalid"}
        if not assertion.is_valid_at(self.clock.now):
            return {"valid": False, "subject": "", "reason": "assertion expired"}
        if assertion.subject != context.initiator:
            return {
                "valid": False,
                "subject": "",
                "reason": "subject does not match session principal",
            }
        return {
            "valid": True,
            "subject": assertion.subject,
            "reason": "",
            "expires": assertion.not_on_or_after,
            "assertion_id": assertion.assertion_id,
        }

    def close_session(self, session_id: str) -> bool:
        """Tear down a session object."""
        return self._sessions.pop(session_id, None) is not None

    def active_sessions(self) -> int:
        """Number of live server-side session objects."""
        return len(self._sessions)


def deploy_auth_service(
    network: VirtualNetwork,
    kdc: Kdc,
    host: str = "auth.gridportal.org",
    *,
    assertion_lifetime: float = 300.0,
) -> tuple[AuthenticationService, str]:
    """Stand up the Authentication Service; returns (service, endpoint URL)."""
    service = AuthenticationService(kdc, assertion_lifetime=assertion_lifetime)
    server = HttpServer(host, network)
    soap = SoapService("AuthenticationService", AUTH_NAMESPACE)
    soap.expose(service.begin_session)
    soap.expose(service.verify)
    soap.expose(service.close_session)
    endpoint = soap.mount(server, "/auth")
    return service, endpoint


class ClientSecuritySession:
    """Client side: the UI server's per-user session object.

    After :meth:`login`, :meth:`header_provider` can be registered on any
    :class:`repro.soap.SoapClient`; every outgoing call then carries a
    freshly signed SAML assertion.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        kdc: Kdc,
        auth_endpoint: str,
        *,
        ui_host: str = "ui.gridportal.org",
        assertion_lifetime: float = 300.0,
    ):
        self.network = network
        self.kdc = kdc
        self.clock = kdc.clock
        self.ui_host = ui_host
        self.assertion_lifetime = assertion_lifetime
        self._auth_client = SoapClient(
            network, auth_endpoint, AUTH_NAMESPACE, source=ui_host
        )
        self.user = ""
        self.session_id = ""
        self._context: GssContext | None = None
        self.assertions_issued = 0

    def login(self, user: str, password: str) -> str:
        """Run the full Figure 2 login: kinit, service ticket, GSS context,
        ``begin_session``.  Returns the session id."""
        try:
            tgt = self.kdc.authenticate(user, password)
            ticket = self.kdc.get_service_ticket(tgt, SERVICE_PRINCIPAL)
        except KerberosError as exc:
            raise AuthenticationError(f"Kerberos login failed: {exc}") from exc
        context, token = GssContext.init_sec_context(ticket)
        result = self._auth_client.call("begin_session", user, crypto.b64(token))
        self.user = user
        self.session_id = result["session"]
        self._context = context
        return self.session_id

    @property
    def logged_in(self) -> bool:
        return self._context is not None

    def make_assertion(self) -> SamlAssertion:
        """Create and sign a fresh assertion for the logged-in user."""
        if self._context is None:
            raise AuthenticationError("not logged in")
        now = self.clock.now
        assertion = SamlAssertion(
            issuer=self.ui_host,
            subject=self.user,
            method=SamlAssertion.METHOD_KERBEROS,
            auth_instant=now,
            not_before=now,
            not_on_or_after=now + self.assertion_lifetime,
            attributes={"session": self.session_id},
        )
        assertion.sign(self._context.session_key())
        self.assertions_issued += 1
        return assertion

    def header_provider(self, method: str, params: list[Any]) -> list[XmlElement]:
        """A :class:`SoapClient` header provider attaching a signed assertion."""
        return [self.make_assertion().to_xml()]

    def secure(self, client: SoapClient) -> SoapClient:
        """Attach this session to a SOAP client; returns the client."""
        client.add_header_provider(self.header_provider)
        return client

    def logout(self) -> None:
        if self.session_id:
            self._auth_client.call("close_session", self.session_id)
        self.user = ""
        self.session_id = ""
        self._context = None


class AssertionInterceptor:
    """SPP side: require a verified SAML assertion on every call.

    ``cache=True`` enables the verification cache (GridCertLib pattern, see
    :mod:`repro.security.assertioncache`): a positive verification is
    trusted until the earlier of the cache TTL and the assertion's
    ``NotOnOrAfter``, keyed on *principal + assertion id* so a cached id
    can never vouch for a different subject.  The ablation in
    ``benchmarks/test_fig2_auth.py`` quantifies what the extra per-request
    hop costs without it; for cross-region calls the hop would otherwise be
    paid on every replicated request.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        auth_endpoint: str,
        *,
        spp_host: str,
        clock=None,
        cache: bool = False,
        cache_ttl: float = 300.0,
    ):
        from repro.security.assertioncache import AssertionCache

        self._client = SoapClient(
            network, auth_endpoint, AUTH_NAMESPACE, source=spp_host
        )
        self.clock = clock
        self.cache_enabled = cache and clock is not None
        self.cache = (
            AssertionCache(clock, ttl=cache_ttl) if self.cache_enabled else None
        )
        self.verified_calls = 0

    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    def invalidate_principal(self, principal: str) -> int:
        """Drop cached verifications for *principal* (ticket expiry path)."""
        if self.cache is None:
            return 0
        return self.cache.invalidate_principal(principal)

    def __call__(
        self, method: str, params: list[Any], envelope: SoapEnvelope
    ) -> None:
        header = envelope.header("Assertion")
        if header is None:
            raise AuthenticationError("request carries no SAML assertion")
        assertion_xml = header.serialize()
        assertion = SamlAssertion.from_xml(parse_xml(assertion_xml))
        session_id = assertion.attributes.get("session", "")
        if self.cache is not None:
            cached = self.cache.get(assertion.subject, assertion.assertion_id)
            if cached is not None:
                return
        result = self._client.call("verify", session_id, assertion_xml)
        self.verified_calls += 1
        if not result.get("valid"):
            raise AuthenticationError(
                f"assertion rejected: {result.get('reason', 'unknown')}"
            )
        if self.cache is not None:
            self.cache.put(
                str(result.get("subject", "")),
                str(result.get("assertion_id", assertion.assertion_id)),
                str(result.get("subject", "")),
                expires=float(result.get("expires", 0.0)) or None,
            )
