"""SAML assertions (1.x subset) for SOAP headers.

§4: "Assertions are mechanism-independent, digitally signed claims about
authentication ... SAML assertions are added to SOAP messages."  The
simulator implements authentication-statement assertions with validity
conditions and a detached signature over the canonical serialization.
Signing/verification keys are GSS context keys (see
:mod:`repro.security.authservice`), so the mechanism stays pluggable exactly
as the paper intends ("we have attempted to keep our design general").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.security import crypto
from repro.xmlutil.element import XmlElement, parse_xml
from repro.xmlutil.qname import QName

SAML_NS = "urn:oasis:names:tc:SAML:1.0:assertion"

_ids = itertools.count(1)


@dataclass
class SamlAssertion:
    """A signed authentication assertion.

    Attributes mirror the SAML 1.x AuthenticationStatement essentials:
    issuer, subject (the authenticated principal), authentication method
    URI, the instant of authentication, and a validity window.  ``attributes``
    carries extra claims (the paper mentions conveying access-control
    decisions from systems like Akenti; those ride here).
    """

    issuer: str
    subject: str
    method: str = "urn:oasis:names:tc:SAML:1.0:am:unspecified"
    auth_instant: float = 0.0
    not_before: float = 0.0
    not_on_or_after: float = float("inf")
    assertion_id: str = field(default_factory=lambda: f"assert-{next(_ids):08d}")
    attributes: dict[str, str] = field(default_factory=dict)
    signature: bytes = b""

    METHOD_KERBEROS = "urn:oasis:names:tc:SAML:1.0:am:Kerberos"
    METHOD_X509 = "urn:oasis:names:tc:SAML:1.0:am:X509-PKI"
    METHOD_PASSWORD = "urn:oasis:names:tc:SAML:1.0:am:password"

    # -- canonical form and signing -------------------------------------------

    def canonical_bytes(self) -> bytes:
        """The byte string that is signed (everything except the signature)."""
        attrs = "&".join(f"{k}={v}" for k, v in sorted(self.attributes.items()))
        return (
            f"{self.assertion_id}|{self.issuer}|{self.subject}|{self.method}|"
            f"{self.auth_instant!r}|{self.not_before!r}|{self.not_on_or_after!r}|"
            f"{attrs}"
        ).encode("utf-8")

    def sign(self, key: bytes) -> "SamlAssertion":
        self.signature = crypto.sign(key, self.canonical_bytes())
        return self

    def verify_signature(self, key: bytes) -> bool:
        return bool(self.signature) and crypto.verify(
            key, self.canonical_bytes(), self.signature
        )

    def is_valid_at(self, now: float) -> bool:
        return self.not_before <= now < self.not_on_or_after

    # -- XML round trip ------------------------------------------------------------

    def to_xml(self) -> XmlElement:
        node = XmlElement(QName(SAML_NS, "Assertion"))
        node.set("AssertionID", self.assertion_id)
        node.set("Issuer", self.issuer)
        conditions = node.child(QName(SAML_NS, "Conditions"))
        conditions.set("NotBefore", repr(self.not_before))
        conditions.set("NotOnOrAfter", repr(self.not_on_or_after))
        stmt = node.child(QName(SAML_NS, "AuthenticationStatement"))
        stmt.set("AuthenticationMethod", self.method)
        stmt.set("AuthenticationInstant", repr(self.auth_instant))
        subject = stmt.child(QName(SAML_NS, "Subject"))
        subject.child(QName(SAML_NS, "NameIdentifier"), text=self.subject)
        if self.attributes:
            attr_stmt = node.child(QName(SAML_NS, "AttributeStatement"))
            for key, value in sorted(self.attributes.items()):
                attr = attr_stmt.child(QName(SAML_NS, "Attribute"))
                attr.set("AttributeName", key)
                attr.child(QName(SAML_NS, "AttributeValue"), text=value)
        if self.signature:
            node.child(QName(SAML_NS, "Signature"), text=crypto.b64(self.signature))
        return node

    @staticmethod
    def from_xml(source: str | XmlElement) -> "SamlAssertion":
        node = parse_xml(source) if isinstance(source, str) else source
        if node.tag.local != "Assertion":
            raise ValueError(f"not a SAML assertion: {node.tag}")
        assertion = SamlAssertion(
            issuer=node.get("Issuer", "") or "",
            subject="",
            assertion_id=node.get("AssertionID", "") or "",
        )
        conditions = node.find("Conditions")
        if conditions is not None:
            assertion.not_before = float(conditions.get("NotBefore", "0.0") or 0.0)
            not_after = conditions.get("NotOnOrAfter", "inf") or "inf"
            assertion.not_on_or_after = float(not_after)
        stmt = node.find("AuthenticationStatement")
        if stmt is not None:
            assertion.method = stmt.get("AuthenticationMethod", "") or ""
            assertion.auth_instant = float(
                stmt.get("AuthenticationInstant", "0.0") or 0.0
            )
            subject = stmt.find("Subject")
            if subject is not None:
                assertion.subject = subject.findtext("NameIdentifier")
        attr_stmt = node.find("AttributeStatement")
        if attr_stmt is not None:
            for attr in attr_stmt.findall("Attribute"):
                name = attr.get("AttributeName", "") or ""
                assertion.attributes[name] = attr.findtext("AttributeValue")
        sig = node.find("Signature")
        if sig is not None:
            assertion.signature = crypto.unb64(sig.text)
        return assertion
