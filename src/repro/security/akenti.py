"""Akenti-style certificate-based access control.

§4: "SAML can also be used to convey access control decisions made by other
mechanisms, such as Akenti" and "Further work needs to be done, for
instance, on access control."  This module is that further work, modelled
on Akenti's design (Thompson et al., USENIX Security '99):

- *use conditions* attached to resources by their stakeholders: boolean
  requirements over user attributes ("group=chemistry AND role=submitter");
- *attribute certificates*: signed statements by attribute authorities that
  a user possesses an attribute;
- a *policy engine* that gathers certificates, evaluates the use
  conditions, and issues the decision as a signed SAML assertion carrying
  an AttributeStatement — which is exactly how the paper wants decisions
  conveyed to SOAP services.

:class:`AkentiInterceptor` enforces decisions in front of a
:class:`repro.soap.SoapService`, composing with (not replacing) the
Figure 2 authentication interceptor: authentication says *who*, Akenti says
*may they*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults import AuthorizationError
from repro.security import crypto
from repro.security.saml import SamlAssertion
from repro.soap.message import SoapEnvelope


@dataclass(frozen=True)
class AttributeCertificate:
    """A signed claim: *issuer* asserts *user* has *attribute* = *value*."""

    user: str
    attribute: str
    value: str
    issuer: str
    signature: bytes = b""

    def tbs(self) -> bytes:
        return f"{self.user}|{self.attribute}|{self.value}|{self.issuer}".encode()


class AttributeAuthority:
    """Issues attribute certificates under its signing key."""

    def __init__(self, name: str):
        self.name = name
        self._key = crypto.new_key(f"attr-authority:{name}".encode())

    def issue(self, user: str, attribute: str, value: str) -> AttributeCertificate:
        cert = AttributeCertificate(user, attribute, value, self.name)
        return AttributeCertificate(
            user, attribute, value, self.name,
            signature=crypto.sign(self._key, cert.tbs()),
        )

    def verify(self, cert: AttributeCertificate) -> bool:
        return cert.issuer == self.name and crypto.verify(
            self._key, cert.tbs(), cert.signature
        )


@dataclass
class UseCondition:
    """One stakeholder requirement on a resource.

    ``require`` maps attribute -> acceptable values; a user satisfies the
    condition if, for every attribute, they hold a *verified* certificate
    with one of the acceptable values, issued by a trusted authority.
    """

    require: dict[str, tuple[str, ...]]
    actions: tuple[str, ...] = ("*",)  # which operations this condition gates

    def covers(self, action: str) -> bool:
        return "*" in self.actions or action in self.actions


@dataclass
class AccessDecision:
    """The policy engine's verdict, conveyable as a SAML assertion."""

    user: str
    resource: str
    action: str
    granted: bool
    reason: str = ""
    attributes_used: dict[str, str] = field(default_factory=dict)

    def to_saml(self, issuer: str, key: bytes, *, now: float,
                lifetime: float = 300.0) -> SamlAssertion:
        """Convey the decision as a signed SAML assertion (the paper's
        mechanism for carrying Akenti decisions)."""
        attributes = {
            "akenti:resource": self.resource,
            "akenti:action": self.action,
            "akenti:decision": "Permit" if self.granted else "Deny",
        }
        for name, value in self.attributes_used.items():
            attributes[f"akenti:attr:{name}"] = value
        assertion = SamlAssertion(
            issuer=issuer,
            subject=self.user,
            method="urn:akenti:certificate-based",
            auth_instant=now,
            not_before=now,
            not_on_or_after=now + lifetime,
            attributes=attributes,
        )
        return assertion.sign(key)


class PolicyEngine:
    """The Akenti core: resources, use conditions, trusted authorities."""

    def __init__(self, name: str = "akenti.policy"):
        self.name = name
        self._key = crypto.new_key(f"akenti:{name}".encode())
        self._authorities: dict[str, AttributeAuthority] = {}
        self._conditions: dict[str, list[UseCondition]] = {}
        self._certificates: list[AttributeCertificate] = []
        self.decisions_made = 0

    # -- administration -----------------------------------------------------

    def trust_authority(self, authority: AttributeAuthority) -> None:
        self._authorities[authority.name] = authority

    def add_use_condition(self, resource: str, condition: UseCondition) -> None:
        self._conditions.setdefault(resource, []).append(condition)

    def store_certificate(self, cert: AttributeCertificate) -> None:
        """Certificates are gathered into the engine's store (Akenti pulls
        them from distributed repositories; ours is one in-memory pool)."""
        self._certificates.append(cert)

    # -- evaluation ------------------------------------------------------------

    def _verified_attributes(self, user: str) -> dict[str, set[str]]:
        attributes: dict[str, set[str]] = {}
        for cert in self._certificates:
            if cert.user != user:
                continue
            authority = self._authorities.get(cert.issuer)
            if authority is None or not authority.verify(cert):
                continue
            attributes.setdefault(cert.attribute, set()).add(cert.value)
        return attributes

    def check_access(self, user: str, resource: str, action: str = "*") -> AccessDecision:
        """Evaluate every applicable use condition; all must be satisfied.

        A resource with no use conditions is closed (fail-safe default).
        """
        conditions = [
            c for c in self._conditions.get(resource, []) if c.covers(action)
        ]
        if not conditions:
            self.decisions_made += 1
            return AccessDecision(
                user, resource, action, False,
                reason=f"no use conditions grant access to {resource!r}",
            )
        held = self._verified_attributes(user)
        used: dict[str, str] = {}
        for condition in conditions:
            for attribute, acceptable in condition.require.items():
                values = held.get(attribute, set())
                match = next((v for v in acceptable if v in values), None)
                if match is None:
                    self.decisions_made += 1
                    return AccessDecision(
                        user, resource, action, False,
                        reason=(
                            f"user lacks a verified {attribute!r} in "
                            f"{list(acceptable)}"
                        ),
                    )
                used[attribute] = match
        self.decisions_made += 1
        return AccessDecision(user, resource, action, True,
                              attributes_used=used)

    def decision_assertion(self, decision: AccessDecision, *, now: float) -> SamlAssertion:
        return decision.to_saml(self.name, self._key, now=now)

    def verify_decision_assertion(self, assertion: SamlAssertion) -> bool:
        return assertion.issuer == self.name and assertion.verify_signature(
            self._key
        )


class AkentiInterceptor:
    """Require a Permit decision for every method of a protected service.

    The resource name is ``<service-resource>/<method>``; operations can be
    gated individually through use-condition ``actions``.  The subject is
    taken from the request's (already-verified) SAML authentication
    assertion, so this interceptor is registered *after* the Figure 2
    :class:`repro.security.authservice.AssertionInterceptor`.
    """

    def __init__(self, engine: PolicyEngine, resource: str, clock):
        self.engine = engine
        self.resource = resource
        self.clock = clock
        self.denials = 0

    def __call__(self, method: str, params: list, envelope: SoapEnvelope) -> None:
        header = envelope.header("Assertion")
        if header is None:
            raise AuthorizationError(
                "no authenticated subject to authorize (missing assertion)"
            )
        subject = SamlAssertion.from_xml(header).subject
        decision = self.engine.check_access(subject, self.resource, method)
        if not decision.granted:
            self.denials += 1
            raise AuthorizationError(
                f"Akenti denies {subject!r} {method!r} on "
                f"{self.resource!r}: {decision.reason}",
                {"resource": self.resource, "action": method},
            )
