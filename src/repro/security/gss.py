"""GSS-API-style security contexts over Kerberos tickets.

§4: "To support Kerberos, we are also developing signing methods based on
the GSS API wrap and unwrap methods."  A :class:`GssContext` pair is
established from a service ticket (initiator side) and a keytab (acceptor
side); both ends then share a per-context key for ``wrap``/``unwrap``
(sealing) and ``get_mic``/``verify_mic`` (detached signing — the method the
Authentication Service uses to sign SAML assertions).
"""

from __future__ import annotations

import json

from repro.security import crypto
from repro.security.kerberos import KerberosError, Keytab, Ticket


class GssError(Exception):
    """Context-establishment or message-protection failure."""


class GssContext:
    """One end of an established GSS security context."""

    def __init__(self, initiator: str, acceptor: str, context_key: bytes):
        self.initiator = initiator
        self.acceptor = acceptor
        self._key = context_key
        self.established = True

    # -- establishment ------------------------------------------------------

    @staticmethod
    def init_sec_context(ticket: Ticket) -> tuple["GssContext", bytes]:
        """Initiator side: produce (context, token-to-send)."""
        context_key = crypto.derive_key(ticket.session_key, "gss-context")
        token = json.dumps(
            {
                "service": ticket.service,
                "client": ticket.client,
                "ticket": crypto.b64(ticket.blob),
            }
        ).encode("utf-8")
        return GssContext(ticket.client, ticket.service, context_key), token

    @staticmethod
    def accept_sec_context(
        token: bytes, keytab: Keytab, *, now: float
    ) -> "GssContext":
        """Acceptor side: open the initiator token with the keytab."""
        try:
            record = json.loads(token.decode("utf-8"))
            service = record["service"]
            client, session_key, _expires = keytab.decrypt_ticket(
                service, crypto.unb64(record["ticket"]), now=now
            )
        except (KeyError, ValueError, KerberosError) as exc:
            raise GssError(f"cannot accept security context: {exc}") from exc
        if client != record.get("client"):
            raise GssError("initiator token client mismatch")
        context_key = crypto.derive_key(session_key, "gss-context")
        return GssContext(client, service, context_key)

    def session_key(self) -> bytes:
        """The shared context key (used to sign SAML assertions)."""
        return self._key

    # -- message protection -----------------------------------------------------

    def wrap(self, data: bytes) -> bytes:
        """Seal (encrypt + integrity-protect) a message."""
        return crypto.encrypt(self._key, data)

    def unwrap(self, token: bytes) -> bytes:
        """Open a sealed message; raises :class:`GssError` on tampering."""
        try:
            return crypto.decrypt(self._key, token)
        except ValueError as exc:
            raise GssError(f"unwrap failed: {exc}") from exc

    def get_mic(self, data: bytes) -> bytes:
        """Detached integrity token over *data*."""
        return crypto.sign(self._key, data)

    def verify_mic(self, data: bytes, mic: bytes) -> bool:
        return crypto.verify(self._key, data, mic)
