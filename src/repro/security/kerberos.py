"""A Kerberos simulator: KDC, principals, keytabs, tickets.

Models the parts of Kerberos the Figure 2 protocol uses:

- principals registered in a realm, with long-term keys derived from
  passwords (users) or generated into keytabs (services);
- an AS exchange (``authenticate``) yielding a ticket-granting ticket;
- a TGS exchange (``get_service_ticket``) yielding a service ticket that
  carries a fresh session key, encrypted under the *service's* long-term key
  so only a keytab holder can extract it;
- ticket lifetimes measured on the simulation clock.

"Kerberos servers authenticate using a keytab file.  This keytab must be
kept secure and usually is readable only by privileged users" — in the
reproduction, exactly one :class:`Keytab` object per service exists, held by
the Authentication Service host.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.security import crypto
from repro.transport.clock import SimClock


class KerberosError(Exception):
    """Authentication failures at the KDC or during ticket decryption."""


@dataclass
class Ticket:
    """A service ticket as held by a *client*.

    ``session_key`` is the client's copy; ``blob`` is the server part
    (client principal + session key + expiry) sealed under the service's
    long-term key.
    """

    client: str
    service: str
    session_key: bytes
    expires: float
    blob: bytes

    @property
    def b64_blob(self) -> str:
        return crypto.b64(self.blob)


class Keytab:
    """A service's long-term key material (one entry per principal)."""

    def __init__(self):
        self._keys: dict[str, bytes] = {}

    def add(self, principal: str, key: bytes) -> None:
        self._keys[principal] = key

    def key_for(self, principal: str) -> bytes:
        if principal not in self._keys:
            raise KerberosError(f"keytab has no entry for {principal!r}")
        return self._keys[principal]

    def principals(self) -> list[str]:
        return sorted(self._keys)

    def decrypt_ticket(
        self, service: str, blob: bytes, *, now: float
    ) -> tuple[str, bytes, float]:
        """Open a ticket blob; returns (client principal, session key,
        expiry).  Raises on bad key, tampering, or expiry."""
        try:
            payload = crypto.decrypt(self.key_for(service), blob)
        except ValueError as exc:
            raise KerberosError(f"ticket not decryptable by {service!r}: {exc}") from exc
        record = json.loads(payload.decode("utf-8"))
        if record["expires"] < now:
            raise KerberosError(
                f"ticket for {record['client']!r} expired at {record['expires']}"
            )
        return record["client"], crypto.unb64(record["key"]), record["expires"]


class Kdc:
    """The key distribution center for one realm."""

    TGS = "krbtgt"

    def __init__(
        self,
        realm: str,
        clock: SimClock | None = None,
        *,
        ticket_lifetime: float = 8 * 3600.0,
    ):
        self.realm = realm
        self.clock = clock or SimClock()
        self.ticket_lifetime = ticket_lifetime
        self._user_keys: dict[str, bytes] = {}
        self._service_keys: dict[str, bytes] = {}
        self._service_keys[self.TGS] = crypto.new_key(
            f"{realm}/{self.TGS}".encode("utf-8")
        )

    # -- registration -----------------------------------------------------------

    def add_user(self, principal: str, password: str) -> None:
        self._user_keys[principal] = crypto.new_key(
            f"{self.realm}/{principal}:{password}".encode("utf-8")
        )

    def add_service(self, principal: str, keytab: Keytab) -> None:
        """Register a service principal and write its key into *keytab*."""
        key = crypto.new_key(f"{self.realm}/svc/{principal}".encode("utf-8"))
        self._service_keys[principal] = key
        keytab.add(principal, key)

    def has_user(self, principal: str) -> bool:
        return principal in self._user_keys

    # -- exchanges ----------------------------------------------------------------

    def _issue(self, client: str, service: str, service_key: bytes) -> Ticket:
        session_key = crypto.new_key()
        expires = self.clock.now + self.ticket_lifetime
        payload = json.dumps(
            {"client": client, "key": crypto.b64(session_key), "expires": expires}
        ).encode("utf-8")
        return Ticket(
            client=client,
            service=service,
            session_key=session_key,
            expires=expires,
            blob=crypto.encrypt(service_key, payload),
        )

    def authenticate(self, principal: str, password: str) -> Ticket:
        """AS exchange: password login yields a TGT (this is what happens
        when "a user logs in through a web browser and gets a Kerberos
        ticket on the User Interface server")."""
        expected = self._user_keys.get(principal)
        if expected is None:
            raise KerberosError(f"unknown principal {principal!r}")
        supplied = crypto.new_key(
            f"{self.realm}/{principal}:{password}".encode("utf-8")
        )
        if supplied != expected:
            raise KerberosError(f"bad password for {principal!r}")
        return self._issue(principal, self.TGS, self._service_keys[self.TGS])

    def get_service_ticket(self, tgt: Ticket, service: str) -> Ticket:
        """TGS exchange: trade a valid TGT for a service ticket."""
        if tgt.service != self.TGS:
            raise KerberosError("not a ticket-granting ticket")
        keytab = Keytab()
        keytab.add(self.TGS, self._service_keys[self.TGS])
        client, _key, _expires = keytab.decrypt_ticket(
            self.TGS, tgt.blob, now=self.clock.now
        )
        if client != tgt.client:
            raise KerberosError("TGT client mismatch")
        service_key = self._service_keys.get(service)
        if service_key is None:
            raise KerberosError(f"unknown service principal {service!r}")
        return self._issue(client, service, service_key)
