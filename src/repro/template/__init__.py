"""A small Velocity-style template engine.

Figure 3 of the paper generates user-interface pages by running Velocity
templates over the schema object model: "As types are detected the Velocity
engine is started and used to create a JSP page with the appropriate property
values obtained from the SOM ... Each template generates a JSP nugget that is
used to build up the final page."

This package provides the equivalent: a template language with ``$var``
references, ``#if``/``#elseif``/``#else``, ``#foreach``, ``#set`` and
``#include`` directives, used by :mod:`repro.wizard` to render form nuggets
and by :mod:`repro.portlets` for page chrome.
"""

from repro.template.engine import (
    Template,
    TemplateError,
    TemplateLoader,
    render,
)

__all__ = ["Template", "TemplateError", "TemplateLoader", "render"]
