"""Velocity-style template engine: parser, AST, and renderer."""

from __future__ import annotations

import html
import re
from dataclasses import dataclass, field
from typing import Any


class TemplateError(ValueError):
    """Raised for template syntax errors and render-time failures."""


# ---------------------------------------------------------------------------
# Expression mini-language
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
      (?P<number>-?\d+(?:\.\d+)?)
    | (?P<string>"[^"]*"|'[^']*')
    | (?P<ref>\$\{?[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*(?:\(\))?)*\}?)
    | (?P<op>==|!=|<=|>=|&&|\|\||[()<>!+])
    | (?P<word>true|false|null|and|or|not|in)
    )
    """,
    re.VERBOSE,
)


def _tokenize_expr(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            if text[pos:].strip() == "":
                break
            raise TemplateError(f"bad expression near {text[pos:]!r}")
        pos = match.end()
        kind = match.lastgroup or ""
        tokens.append((kind, match.group(kind)))
    return tokens


class _ExprParser:
    """Recursive-descent parser for the boolean/comparison expression
    language used in ``#if`` and ``#set`` directives."""

    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise TemplateError("unexpected end of expression")
        self.pos += 1
        return token

    def parse(self) -> "Expr":
        expr = self.parse_or()
        if self.peek() is not None:
            raise TemplateError(f"trailing tokens in expression: {self.tokens[self.pos:]}")
        return expr

    def parse_or(self) -> "Expr":
        left = self.parse_and()
        while self.peek() in (("op", "||"), ("word", "or")):
            self.take()
            right = self.parse_and()
            left = BoolOp("or", left, right)
        return left

    def parse_and(self) -> "Expr":
        left = self.parse_not()
        while self.peek() in (("op", "&&"), ("word", "and")):
            self.take()
            right = self.parse_not()
            left = BoolOp("and", left, right)
        return left

    def parse_not(self) -> "Expr":
        if self.peek() in (("op", "!"), ("word", "not")):
            self.take()
            return NotOp(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> "Expr":
        left = self.parse_additive()
        token = self.peek()
        if token and token[0] == "op" and token[1] in ("==", "!=", "<", ">", "<=", ">="):
            self.take()
            right = self.parse_additive()
            return Compare(token[1], left, right)
        return left

    def parse_additive(self) -> "Expr":
        left = self.parse_atom()
        while self.peek() == ("op", "+"):
            self.take()
            left = Concat(left, self.parse_atom())
        return left

    def parse_atom(self) -> "Expr":
        kind, value = self.take()
        if kind == "number":
            return Literal(float(value) if "." in value else int(value))
        if kind == "string":
            return Literal(value[1:-1])
        if kind == "word":
            if value == "true":
                return Literal(True)
            if value == "false":
                return Literal(False)
            if value == "null":
                return Literal(None)
            raise TemplateError(f"unexpected word {value!r}")
        if kind == "ref":
            return Reference.parse(value)
        if kind == "op" and value == "(":
            inner = self.parse_or()
            if self.take() != ("op", ")"):
                raise TemplateError("expected ')'")
            return inner
        raise TemplateError(f"unexpected token {value!r}")


class Expr:
    def evaluate(self, ctx: dict[str, Any]) -> Any:  # pragma: no cover
        raise NotImplementedError


@dataclass
class Literal(Expr):
    value: Any

    def evaluate(self, ctx: dict[str, Any]) -> Any:
        return self.value


@dataclass
class Reference(Expr):
    """A ``$name.path.to.attr`` reference with dict/attr/method lookup."""

    name: str
    path: tuple[str, ...] = ()

    @staticmethod
    def parse(text: str) -> "Reference":
        body = text[1:]
        if body.startswith("{") and body.endswith("}"):
            body = body[1:-1]
        parts = body.split(".")
        return Reference(parts[0], tuple(parts[1:]))

    def evaluate(self, ctx: dict[str, Any]) -> Any:
        if self.name not in ctx:
            return None
        value = ctx[self.name]
        for step in self.path:
            call = step.endswith("()")
            attr = step[:-2] if call else step
            if isinstance(value, dict) and attr in value:
                value = value[attr]
            elif hasattr(value, attr):
                value = getattr(value, attr)
            else:
                return None
            if call:
                value = value()
        return value

    def render_text(self) -> str:
        return "$" + ".".join((self.name,) + self.path)


@dataclass
class Compare(Expr):
    op: str
    left: Expr
    right: Expr

    def evaluate(self, ctx: dict[str, Any]) -> Any:
        lhs, rhs = self.left.evaluate(ctx), self.right.evaluate(ctx)
        if self.op == "==":
            return lhs == rhs
        if self.op == "!=":
            return lhs != rhs
        try:
            if self.op == "<":
                return lhs < rhs
            if self.op == ">":
                return lhs > rhs
            if self.op == "<=":
                return lhs <= rhs
            return lhs >= rhs
        except TypeError as exc:
            raise TemplateError(f"cannot compare {lhs!r} {self.op} {rhs!r}") from exc


@dataclass
class BoolOp(Expr):
    op: str
    left: Expr
    right: Expr

    def evaluate(self, ctx: dict[str, Any]) -> Any:
        if self.op == "and":
            return bool(self.left.evaluate(ctx)) and bool(self.right.evaluate(ctx))
        return bool(self.left.evaluate(ctx)) or bool(self.right.evaluate(ctx))


@dataclass
class NotOp(Expr):
    operand: Expr

    def evaluate(self, ctx: dict[str, Any]) -> Any:
        return not self.operand.evaluate(ctx)


@dataclass
class Concat(Expr):
    left: Expr
    right: Expr

    def evaluate(self, ctx: dict[str, Any]) -> Any:
        lhs, rhs = self.left.evaluate(ctx), self.right.evaluate(ctx)
        if isinstance(lhs, (int, float)) and isinstance(rhs, (int, float)):
            return lhs + rhs
        return f"{_stringify(lhs)}{_stringify(rhs)}"


def parse_expression(text: str) -> Expr:
    return _ExprParser(_tokenize_expr(text)).parse()


# ---------------------------------------------------------------------------
# Template AST
# ---------------------------------------------------------------------------


@dataclass
class Node:
    def render(self, ctx: dict[str, Any], out: list[str], loader: "TemplateLoader | None") -> None:
        raise NotImplementedError  # pragma: no cover


@dataclass
class TextNode(Node):
    text: str

    def render(self, ctx, out, loader) -> None:
        out.append(self.text)


@dataclass
class VarNode(Node):
    ref: Reference
    escape: bool = False

    def render(self, ctx, out, loader) -> None:
        value = self.ref.evaluate(ctx)
        if value is None:
            # Velocity leaves unresolvable $refs in the output verbatim
            out.append(self.ref.render_text())
            return
        text = _stringify(value)
        out.append(html.escape(text, quote=True) if self.escape else text)


@dataclass
class IfNode(Node):
    branches: list[tuple[Expr, list[Node]]]
    else_body: list[Node] = field(default_factory=list)

    def render(self, ctx, out, loader) -> None:
        for cond, body in self.branches:
            if cond.evaluate(ctx):
                for node in body:
                    node.render(ctx, out, loader)
                return
        for node in self.else_body:
            node.render(ctx, out, loader)


@dataclass
class ForeachNode(Node):
    var: str
    iterable: Expr
    body: list[Node]

    def render(self, ctx, out, loader) -> None:
        items = self.iterable.evaluate(ctx)
        if items is None:
            return
        saved_var = ctx.get(self.var, _MISSING)
        saved_count = ctx.get("velocityCount", _MISSING)
        for index, item in enumerate(items):
            ctx[self.var] = item
            ctx["velocityCount"] = index + 1  # Velocity's 1-based loop counter
            for node in self.body:
                node.render(ctx, out, loader)
        _restore(ctx, self.var, saved_var)
        _restore(ctx, "velocityCount", saved_count)


@dataclass
class SetNode(Node):
    var: str
    expr: Expr

    def render(self, ctx, out, loader) -> None:
        ctx[self.var] = self.expr.evaluate(ctx)


@dataclass
class IncludeNode(Node):
    name_expr: Expr

    def render(self, ctx, out, loader) -> None:
        if loader is None:
            raise TemplateError("#include used without a TemplateLoader")
        name = _stringify(self.name_expr.evaluate(ctx))
        loader.get(name)._render_into(ctx, out, loader)


_MISSING = object()


def _restore(ctx: dict[str, Any], key: str, saved: Any) -> None:
    if saved is _MISSING:
        ctx.pop(key, None)
    else:
        ctx[key] = saved


def _stringify(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


# ---------------------------------------------------------------------------
# Template parser
# ---------------------------------------------------------------------------

_DIRECTIVE_RE = re.compile(
    r"""
      \#(?P<dir>if|elseif|else|end|foreach|set|include)\b
      (?:\s*\((?P<arg>[^()]*(?:\([^()]*\)[^()]*)*)\))?
    | (?P<evar>\$!\{?[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*(?:\(\))?)*\}?)
    | (?P<var>\$\{?[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*(?:\(\))?)*\}?)
    """,
    re.VERBOSE,
)

_FOREACH_RE = re.compile(
    r"^\s*\$\{?([A-Za-z_][A-Za-z0-9_]*)\}?\s+in\s+(.*)$", re.DOTALL
)
_SET_RE = re.compile(r"^\s*\$\{?([A-Za-z_][A-Za-z0-9_]*)\}?\s*=\s*(.*)$", re.DOTALL)


class Template:
    """A compiled template; ``render(**context)`` produces a string.

    ``$!ref`` renders HTML-escaped; ``$ref`` renders raw (matching the
    convention our form templates use for attribute values).
    """

    def __init__(self, source: str, name: str = "<template>"):
        self.name = name
        self.source = source
        self.nodes = _TemplateParser(source, name).parse()

    def render(self, loader: "TemplateLoader | None" = None, /, **context: Any) -> str:
        return self.render_context(dict(context), loader)

    def render_context(
        self, context: dict[str, Any], loader: "TemplateLoader | None" = None
    ) -> str:
        out: list[str] = []
        self._render_into(context, out, loader)
        return "".join(out)

    def _render_into(
        self, ctx: dict[str, Any], out: list[str], loader: "TemplateLoader | None"
    ) -> None:
        for node in self.nodes:
            node.render(ctx, out, loader)


class _TemplateParser:
    def __init__(self, source: str, name: str):
        self.source = source
        self.name = name
        self.pos = 0

    def parse(self) -> list[Node]:
        nodes, terminator = self._parse_block(root=True)
        assert terminator is None
        return nodes

    def _parse_block(self, root: bool = False) -> tuple[list[Node], str | None]:
        """Parse until #end/#else/#elseif (or EOF when root)."""
        nodes: list[Node] = []
        while True:
            match = _DIRECTIVE_RE.search(self.source, self.pos)
            if match is None:
                if not root:
                    raise TemplateError(f"{self.name}: unterminated block")
                nodes.append(TextNode(self.source[self.pos:]))
                self.pos = len(self.source)
                return nodes, None
            if match.start() > self.pos:
                nodes.append(TextNode(self.source[self.pos:match.start()]))
            self.pos = match.end()
            if match.group("var"):
                nodes.append(VarNode(Reference.parse(match.group("var"))))
                continue
            if match.group("evar"):
                raw = match.group("evar")
                nodes.append(VarNode(Reference.parse("$" + raw[2:]), escape=True))
                continue
            directive = match.group("dir")
            arg = match.group("arg") or ""
            if directive in ("end", "else", "elseif"):
                if root:
                    raise TemplateError(f"{self.name}: #{directive} without open block")
                self._pending_arg = arg
                return nodes, directive
            if directive == "if":
                nodes.append(self._parse_if(arg))
            elif directive == "foreach":
                nodes.append(self._parse_foreach(arg))
            elif directive == "set":
                set_match = _SET_RE.match(arg)
                if set_match is None:
                    raise TemplateError(f"{self.name}: malformed #set({arg})")
                nodes.append(
                    SetNode(set_match.group(1), parse_expression(set_match.group(2)))
                )
            elif directive == "include":
                nodes.append(IncludeNode(parse_expression(arg)))
            else:  # pragma: no cover
                raise TemplateError(f"{self.name}: unknown directive #{directive}")

    def _parse_if(self, condition: str) -> IfNode:
        branches: list[tuple[Expr, list[Node]]] = []
        current_cond = parse_expression(condition)
        body, terminator = self._parse_block()
        branches.append((current_cond, body))
        else_body: list[Node] = []
        while terminator == "elseif":
            cond = parse_expression(self._pending_arg)
            body, terminator = self._parse_block()
            branches.append((cond, body))
        if terminator == "else":
            else_body, terminator = self._parse_block()
        if terminator != "end":
            raise TemplateError(f"{self.name}: #if not closed with #end")
        return IfNode(branches, else_body)

    def _parse_foreach(self, arg: str) -> ForeachNode:
        match = _FOREACH_RE.match(arg)
        if match is None:
            raise TemplateError(f"{self.name}: malformed #foreach({arg})")
        body, terminator = self._parse_block()
        if terminator != "end":
            raise TemplateError(f"{self.name}: #foreach not closed with #end")
        return ForeachNode(match.group(1), parse_expression(match.group(2)), body)


class TemplateLoader:
    """A named collection of templates with compile caching (the analogue of
    Velocity's resource loader for the wizard's template set)."""

    def __init__(self, sources: dict[str, str] | None = None):
        self._sources: dict[str, str] = dict(sources or {})
        self._compiled: dict[str, Template] = {}

    def add(self, name: str, source: str) -> None:
        self._sources[name] = source
        self._compiled.pop(name, None)

    def names(self) -> list[str]:
        return sorted(self._sources)

    def get(self, name: str) -> Template:
        if name not in self._compiled:
            if name not in self._sources:
                raise TemplateError(f"no template named {name!r}")
            self._compiled[name] = Template(self._sources[name], name)
        return self._compiled[name]

    def render(self, name: str, /, **context: Any) -> str:
        return self.get(name).render_context(dict(context), self)


def render(source: str, **context: Any) -> str:
    """One-shot convenience: compile and render *source*."""
    return Template(source).render_context(dict(context))
