"""The SRB server: GSI sessions, permissions, and the core operations."""

from __future__ import annotations

import base64
import itertools

from repro.faults import (
    AuthorizationError,
    AuthenticationError,
    InvalidRequestError,
    ResourceNotFoundError,
)
from repro.security.gsi import GsiError, ProxyCertificate, SimpleCA
from repro.srb.catalog import Collection, DataObject, Mcat
from repro.srb.storage import StorageResource
from repro.transport.clock import SimClock


class SrbSession:
    """An authenticated connection to the SRB server."""

    def __init__(self, server: "SrbServer", user: str, session_id: str):
        self.server = server
        self.user = user
        self.session_id = session_id
        self.open = True


class SrbServer:
    """The broker: MCAT + storage resources + access control.

    Users connect with a GSI proxy; the grid identity maps to an SRB user.
    Collections carry ACLs (owner always has ``rw``); home collections are
    created on registration, mirroring ``/home/<user>.<domain>`` in real SRB.
    """

    def __init__(
        self,
        ca: SimpleCA,
        clock: SimClock | None = None,
        *,
        zone: str = "reproZone",
        journal=None,
    ):
        self.ca = ca
        self.clock = clock or SimClock()
        self.zone = zone
        self.mcat = Mcat()
        self.resources: dict[str, StorageResource] = {}
        self.default_resource = ""
        self._identity_map: dict[str, str] = {}
        self._sessions: dict[str, SrbSession] = {}
        self._session_ids = itertools.count(1)
        self.mcat.make_collection("/home", "srbAdmin")
        #: optional write-ahead journal for catalogue mutations (see
        #: :mod:`repro.durability`); sessions and GSI state are deliberately
        #: *not* journalled — they are soft state a client re-establishes
        self.journal = journal
        self._replaying = False

    # -- administration -----------------------------------------------------------

    def add_resource(self, resource: StorageResource, *, default: bool = False) -> None:
        self.resources[resource.name] = resource
        if default or not self.default_resource:
            self.default_resource = resource.name

    def register_user(self, identity: str, srb_user: str) -> None:
        """Map a grid identity to an SRB user and create the home collection."""
        self._identity_map[identity] = srb_user
        home = self.mcat.make_collection(f"/home/{srb_user}", srb_user)
        home.acl[srb_user] = "rw"
        self._journal("user", identity=identity, srb_user=srb_user)

    # -- sessions ---------------------------------------------------------------------

    def connect(self, proxy: ProxyCertificate) -> SrbSession:
        """GSI-authenticate and open a session."""
        try:
            identity = self.ca.verify_chain(proxy, now=self.clock.now)
        except GsiError as exc:
            raise AuthenticationError(f"SRB GSI authentication failed: {exc}") from exc
        srb_user = self._identity_map.get(identity)
        if srb_user is None:
            raise AuthorizationError(
                f"grid identity {identity!r} is not a registered SRB user",
                {"identity": identity},
            )
        session = SrbSession(self, srb_user, f"srb-{next(self._session_ids):06d}")
        self._sessions[session.session_id] = session
        return session

    def disconnect(self, session: SrbSession) -> None:
        session.open = False
        self._sessions.pop(session.session_id, None)

    # -- access control ---------------------------------------------------------------

    def _check(self, session: SrbSession, collection: Collection, need: str) -> None:
        if not session.open:
            raise AuthenticationError("SRB session is closed")
        user = session.user
        if collection.owner == user or user == "srbAdmin":
            return
        granted = collection.acl.get(user, "")
        if need == "r" and granted in ("r", "rw"):
            return
        if need == "rw" and granted == "rw":
            return
        raise AuthorizationError(
            f"user {user!r} lacks {need!r} on collection {collection.name!r}",
            {"user": user, "need": need},
        )

    def chmod(
        self, session: SrbSession, path: str, user: str, access: str
    ) -> None:
        """Grant ``r``/``rw``/``none`` on a collection to another user."""
        collection = self.mcat.collection(path)
        self._check(session, collection, "rw")
        if access == "none":
            collection.acl.pop(user, None)
        elif access in ("r", "rw"):
            collection.acl[user] = access
        else:
            raise InvalidRequestError(f"unknown access level {access!r}")
        self._journal(
            "chmod", path=path, user=user, access=access, actor=session.user
        )

    # -- core operations ------------------------------------------------------------------

    def mkdir(self, session: SrbSession, path: str) -> None:
        # intermediate collections are created as needed; write permission is
        # required on the deepest ancestor that already exists
        parts = path.strip("/").split("/")
        anchor = self.mcat.root
        for index in range(len(parts) - 1, -1, -1):
            try:
                anchor = self.mcat.collection("/".join(parts[:index]))
                break
            except ResourceNotFoundError:
                continue
        self._check(session, anchor, "rw")
        self.mcat.make_collection(path, session.user)
        self._journal("mkdir", path=path, user=session.user)

    def ls(self, session: SrbSession, path: str) -> list[dict[str, object]]:
        collection = self.mcat.collection(path)
        self._check(session, collection, "r")
        return self.mcat.listing(path)

    def put(
        self,
        session: SrbSession,
        path: str,
        data: bytes,
        *,
        resource: str = "",
        metadata: dict[str, str] | None = None,
    ) -> DataObject:
        parent, _name = self.mcat.parent_and_name(path)
        self._check(session, parent, "rw")
        res_name = resource or self.default_resource
        res = self.resources.get(res_name)
        if res is None:
            raise ResourceNotFoundError(
                f"no storage resource {res_name!r}", {"resource": res_name}
            )
        if self.mcat.exists(path):
            self.rm(session, path)
        blob_id = res.write(data)
        obj = DataObject(
            name="",
            size=len(data),
            owner=session.user,
            created=self.clock.now,
            modified=self.clock.now,
            replicas=[(res_name, blob_id)],
            metadata=dict(metadata or {}),
        )
        self.mcat.put_object(path, obj)
        self._journal(
            "put",
            path=path,
            data=base64.b64encode(data).decode("ascii"),
            resource=res_name,
            metadata=dict(metadata or {}),
            user=session.user,
        )
        return obj

    def get(self, session: SrbSession, path: str) -> bytes:
        parent, _name = self.mcat.parent_and_name(path)
        self._check(session, parent, "r")
        obj = self.mcat.data_object(path)
        for res_name, blob_id in obj.replicas:
            res = self.resources.get(res_name)
            if res is not None and blob_id in res:
                return res.read(blob_id)
        raise ResourceNotFoundError(
            f"no live replica of {path!r}", {"path": path}
        )

    def rm(self, session: SrbSession, path: str) -> None:
        parent, _name = self.mcat.parent_and_name(path)
        self._check(session, parent, "rw")
        obj = self.mcat.remove_object(path)
        for res_name, blob_id in obj.replicas:
            res = self.resources.get(res_name)
            if res is not None and blob_id in res:
                res.delete(blob_id)
        self._journal("rm", path=path, user=session.user)

    def rmdir(self, session: SrbSession, path: str, *, force: bool = False) -> None:
        collection = self.mcat.collection(path)
        self._check(session, collection, "rw")
        if force:
            for row in list(self.mcat.listing(path)):
                child = f"{path.rstrip('/')}/{str(row['name']).rstrip('/')}"
                if row["type"] == "collection":
                    self.rmdir(session, child, force=True)
                else:
                    self.rm(session, child)
        self.mcat.remove_collection(path, force=force)
        self._journal("rmdir", path=path, force=force, user=session.user)

    def replicate(self, session: SrbSession, path: str, resource: str) -> DataObject:
        """Create an additional replica on another storage resource."""
        parent, _name = self.mcat.parent_and_name(path)
        self._check(session, parent, "rw")
        obj = self.mcat.data_object(path)
        if obj.replica_on(resource) is not None:
            return obj
        res = self.resources.get(resource)
        if res is None:
            raise ResourceNotFoundError(
                f"no storage resource {resource!r}", {"resource": resource}
            )
        data = self.get(session, path)
        obj.replicas.append((resource, res.write(data)))
        obj.modified = self.clock.now
        self._journal("replicate", path=path, resource=resource, user=session.user)
        return obj

    def set_metadata(
        self, session: SrbSession, path: str, metadata: dict[str, str]
    ) -> None:
        parent, _name = self.mcat.parent_and_name(path)
        self._check(session, parent, "rw")
        obj = self.mcat.data_object(path)
        obj.metadata.update(metadata)
        obj.modified = self.clock.now
        self._journal(
            "meta", path=path, metadata=dict(metadata), user=session.user
        )

    def query_metadata(
        self, session: SrbSession, where: dict[str, str], path: str = "/"
    ) -> list[str]:
        collection = self.mcat.collection(path)
        self._check(session, collection, "r")
        return [p for p, _obj in self.mcat.find_by_metadata(where, path)]

    # -- durability (the Recoverable protocol) -------------------------------------

    def _journal(self, kind: str, **data) -> None:
        if self.journal is not None and not self._replaying:
            self.journal.append(kind, **data)

    def snapshot(self) -> dict:
        """A JSON-safe summary of the catalogue (users, tree, replicas)."""
        objects: dict[str, dict] = {}
        collections: list[str] = []

        def visit(node: Collection, prefix: str) -> None:
            for name, child in sorted(node.collections.items()):
                child_path = f"{prefix}/{name}"
                collections.append(child_path)
                visit(child, child_path)
            for name, obj in sorted(node.objects.items()):
                objects[f"{prefix}/{name}"] = {
                    "size": obj.size,
                    "owner": obj.owner,
                    "replicas": [list(r) for r in obj.replicas],
                    "metadata": dict(obj.metadata),
                }

        visit(self.mcat.root, "")
        return {
            "zone": self.zone,
            "users": dict(self._identity_map),
            "collections": collections,
            "objects": objects,
        }

    def replay(self, journal) -> int:
        """Rebuild the catalogue and storage blobs from a surviving journal.

        Each record re-runs the original operation as the user who issued
        it (a synthetic session — GSI re-authentication is soft state, not
        journal state), so ACL checks replay exactly as they first ran.
        Storage resources must be attached before calling this.
        """
        self.journal = journal
        self._replaying = True
        applied = 0
        try:
            for record in journal.records():
                data = record.data
                session = SrbSession(
                    self, str(data.get("user", "srbAdmin")), "replay"
                )
                if record.kind == "user":
                    self.register_user(data["identity"], data["srb_user"])
                elif record.kind == "chmod":
                    actor = SrbSession(self, str(data["actor"]), "replay")
                    self.chmod(actor, data["path"], data["user"], data["access"])
                elif record.kind == "mkdir":
                    self.mkdir(session, data["path"])
                elif record.kind == "put":
                    self.put(
                        session,
                        data["path"],
                        base64.b64decode(data["data"]),
                        resource=data.get("resource", ""),
                        metadata=data.get("metadata") or {},
                    )
                elif record.kind == "rm":
                    if self.mcat.exists(data["path"]):
                        self.rm(session, data["path"])
                elif record.kind == "rmdir":
                    # children fell to their own rm/rmdir records already
                    self.rmdir(session, data["path"], force=bool(data.get("force")))
                elif record.kind == "replicate":
                    self.replicate(session, data["path"], data["resource"])
                elif record.kind == "meta":
                    self.set_metadata(session, data["path"], data["metadata"] or {})
                else:
                    continue
                applied += 1
        finally:
            self._replaying = False
        return applied
