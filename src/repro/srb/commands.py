"""The Scommand utilities.

"These SRB Web Services are GSI authenticated, and use the GSI
authenticated SRB command line utilities."  :class:`Scommands` is that
utility layer: a thin, string-oriented face over an authenticated
:class:`repro.srb.server.SrbSession`, shaped like the real ``Sls``/``Sget``
tools (text rows in, text out) so the SOAP layer above it stays as thin as
the paper's.
"""

from __future__ import annotations

from repro.security.gsi import ProxyCertificate
from repro.srb.server import SrbServer, SrbSession


class Scommands:
    """One user's Scommand toolchain (Sinit ... Sexit)."""

    def __init__(self, server: SrbServer, proxy: ProxyCertificate):
        self.server = server
        self._proxy = proxy
        self._session: SrbSession | None = None

    # -- session management (Sinit / Sexit) ----------------------------------

    def Sinit(self) -> str:
        """Open the authenticated session; returns the SRB user name."""
        self._session = self.server.connect(self._proxy)
        return self._session.user

    def Sexit(self) -> None:
        if self._session is not None:
            self.server.disconnect(self._session)
            self._session = None

    @property
    def session(self) -> SrbSession:
        if self._session is None:
            self.Sinit()
        assert self._session is not None
        return self._session

    # -- commands -----------------------------------------------------------------

    def Sls(self, collection: str) -> list[str]:
        """Directory listing: one formatted row per entry."""
        rows = self.server.ls(self.session, collection)
        out: list[str] = []
        for row in rows:
            if row["type"] == "collection":
                out.append(f"  C- {row['name']}")
            else:
                out.append(f"  {row['size']:>10} {row['owner']:<12} {row['name']}")
        return out

    def Scat(self, path: str) -> str:
        """File contents as text."""
        return self.server.get(self.session, path).decode("utf-8", errors="replace")

    def Sget(self, path: str) -> bytes:
        """File contents as bytes (local copy)."""
        return self.server.get(self.session, path)

    def Sput(self, path: str, data: bytes | str, *, resource: str = "") -> int:
        """Store data at *path*; returns the byte count."""
        payload = data.encode("utf-8") if isinstance(data, str) else data
        obj = self.server.put(self.session, path, payload, resource=resource)
        return obj.size

    def Smkdir(self, path: str) -> None:
        self.server.mkdir(self.session, path)

    def Srm(self, path: str) -> None:
        self.server.rm(self.session, path)

    def Srmdir(self, path: str, *, force: bool = False) -> None:
        self.server.rmdir(self.session, path, force=force)

    def Sreplicate(self, path: str, resource: str) -> int:
        """Replicate to another resource; returns the new replica count."""
        obj = self.server.replicate(self.session, path, resource)
        return len(obj.replicas)

    def Smeta(self, path: str, **metadata: str) -> None:
        """Attach user metadata to an object."""
        self.server.set_metadata(self.session, path, dict(metadata))

    def Squery(self, path: str = "/", **where: str) -> list[str]:
        """Paths of objects matching the metadata query."""
        return self.server.query_metadata(self.session, dict(where), path)

    def Schmod(self, path: str, user: str, access: str) -> None:
        self.server.chmod(self.session, path, user, access)
