"""Physical storage resources behind the SRB."""

from __future__ import annotations

import itertools

from repro.faults import ResourceExhaustedError, ResourceNotFoundError


class StorageResource:
    """A named storage system with finite capacity.

    Stores immutable blobs by generated id; the MCAT references them as
    replicas.  Writing past capacity raises the canonical portal error
    ("the disk was full").
    """

    def __init__(self, name: str, capacity_bytes: int = 2**40):
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self._blobs: dict[str, bytes] = {}
        self._ids = itertools.count(1)

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def write(self, data: bytes) -> str:
        """Store a blob; returns its physical id."""
        if self.used_bytes + len(data) > self.capacity_bytes:
            raise ResourceExhaustedError(
                f"storage resource {self.name!r} is full "
                f"({self.free_bytes} bytes free, {len(data)} needed)",
                {"resource": self.name, "free": str(self.free_bytes)},
            )
        blob_id = f"{self.name}:{next(self._ids):08d}"
        self._blobs[blob_id] = data
        self.used_bytes += len(data)
        return blob_id

    def read(self, blob_id: str) -> bytes:
        if blob_id not in self._blobs:
            raise ResourceNotFoundError(
                f"no blob {blob_id!r} on {self.name!r}", {"blob": blob_id}
            )
        return self._blobs[blob_id]

    def delete(self, blob_id: str) -> None:
        data = self._blobs.pop(blob_id, None)
        if data is None:
            raise ResourceNotFoundError(
                f"no blob {blob_id!r} on {self.name!r}", {"blob": blob_id}
            )
        self.used_bytes -= len(data)

    def __contains__(self, blob_id: str) -> bool:
        return blob_id in self._blobs
