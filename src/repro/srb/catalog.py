"""The MCAT: SRB's metadata catalogue."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults import InvalidRequestError, ResourceNotFoundError


@dataclass
class DataObject:
    """A logical file: replicas on one or more storage resources."""

    name: str
    size: int = 0
    owner: str = ""
    created: float = 0.0
    modified: float = 0.0
    replicas: list[tuple[str, str]] = field(default_factory=list)  # (resource, blob id)
    metadata: dict[str, str] = field(default_factory=dict)

    def replica_on(self, resource: str) -> str | None:
        for res, blob_id in self.replicas:
            if res == resource:
                return blob_id
        return None


@dataclass
class Collection:
    """A hierarchical namespace node (directory)."""

    name: str
    owner: str = ""
    collections: dict[str, "Collection"] = field(default_factory=dict)
    objects: dict[str, DataObject] = field(default_factory=dict)
    acl: dict[str, str] = field(default_factory=dict)  # user -> "r" | "rw"


def split_path(path: str) -> list[str]:
    parts = [p for p in path.strip().split("/") if p]
    for part in parts:
        if part in (".", ".."):
            raise InvalidRequestError(f"relative components not allowed: {path!r}")
    return parts


class Mcat:
    """The catalogue proper: path algebra over collections and objects."""

    def __init__(self):
        self.root = Collection("/", owner="srbAdmin")

    # -- navigation ----------------------------------------------------------

    def collection(self, path: str) -> Collection:
        node = self.root
        for part in split_path(path):
            child = node.collections.get(part)
            if child is None:
                raise ResourceNotFoundError(
                    f"no collection {path!r}", {"path": path}
                )
            node = child
        return node

    def parent_and_name(self, path: str) -> tuple[Collection, str]:
        parts = split_path(path)
        if not parts:
            raise InvalidRequestError("path must name an entry, not the root")
        parent = self.root
        for part in parts[:-1]:
            child = parent.collections.get(part)
            if child is None:
                raise ResourceNotFoundError(
                    f"no collection {'/' + '/'.join(parts[:-1])!r}", {"path": path}
                )
            parent = child
        return parent, parts[-1]

    def data_object(self, path: str) -> DataObject:
        parent, name = self.parent_and_name(path)
        obj = parent.objects.get(name)
        if obj is None:
            raise ResourceNotFoundError(f"no data object {path!r}", {"path": path})
        return obj

    def exists(self, path: str) -> bool:
        try:
            parent, name = self.parent_and_name(path)
        except (ResourceNotFoundError, InvalidRequestError):
            return False
        return name in parent.objects or name in parent.collections

    # -- mutation --------------------------------------------------------------

    def make_collection(self, path: str, owner: str) -> Collection:
        node = self.root
        for part in split_path(path):
            if part in node.objects:
                raise InvalidRequestError(
                    f"{part!r} is a data object, not a collection", {"path": path}
                )
            node = node.collections.setdefault(part, Collection(part, owner=owner))
        return node

    def remove_collection(self, path: str, *, force: bool = False) -> None:
        parent, name = self.parent_and_name(path)
        target = parent.collections.get(name)
        if target is None:
            raise ResourceNotFoundError(f"no collection {path!r}", {"path": path})
        if (target.collections or target.objects) and not force:
            raise InvalidRequestError(
                f"collection {path!r} is not empty", {"path": path}
            )
        del parent.collections[name]

    def put_object(self, path: str, obj: DataObject) -> None:
        parent, name = self.parent_and_name(path)
        if name in parent.collections:
            raise InvalidRequestError(
                f"{path!r} is a collection", {"path": path}
            )
        obj.name = name
        parent.objects[name] = obj

    def remove_object(self, path: str) -> DataObject:
        parent, name = self.parent_and_name(path)
        obj = parent.objects.pop(name, None)
        if obj is None:
            raise ResourceNotFoundError(f"no data object {path!r}", {"path": path})
        return obj

    # -- queries ------------------------------------------------------------------

    def listing(self, path: str) -> list[dict[str, object]]:
        """An Sls-style listing of a collection."""
        node = self.collection(path)
        rows: list[dict[str, object]] = []
        for name in sorted(node.collections):
            rows.append({"name": name + "/", "type": "collection", "size": 0})
        for name in sorted(node.objects):
            obj = node.objects[name]
            rows.append(
                {
                    "name": name,
                    "type": "object",
                    "size": obj.size,
                    "owner": obj.owner,
                    "replicas": len(obj.replicas),
                }
            )
        return rows

    def find_by_metadata(
        self, where: dict[str, str], path: str = "/"
    ) -> list[tuple[str, DataObject]]:
        """All objects under *path* whose user metadata matches *where*."""
        results: list[tuple[str, DataObject]] = []

        def visit(node: Collection, prefix: str) -> None:
            for name, obj in node.objects.items():
                if all(obj.metadata.get(k) == v for k, v in where.items()):
                    results.append((f"{prefix}/{name}", obj))
            for name, child in node.collections.items():
                visit(child, f"{prefix}/{name}")

        start = self.collection(path)
        prefix = "/" + "/".join(split_path(path)) if split_path(path) else ""
        visit(start, prefix)
        return results
