"""A Storage Resource Broker (SRB) simulator.

§3.2's data-management web services are thin SOAP wrappers over "the GSI
authenticated SRB command line utilities".  This package rebuilds that
stack:

- :mod:`repro.srb.storage` — physical storage resources with capacity
  accounting (so "the file didn't get transferred because the disk was
  full" is a reachable state, as §3 demands of the error vocabulary).
- :mod:`repro.srb.catalog` — the MCAT metadata catalogue: hierarchical
  collections, data objects, replicas, user metadata.
- :mod:`repro.srb.server` — the SRB server: GSI-authenticated sessions,
  permission checks, and the core operations.
- :mod:`repro.srb.commands` — the Scommand utilities (Sls, Scat, Sget,
  Sput, Smkdir, Srm, Sreplicate) that the web service layer shells out to.
"""

from repro.srb.storage import StorageResource
from repro.srb.catalog import Collection, DataObject, Mcat
from repro.srb.server import SrbServer, SrbSession
from repro.srb.commands import Scommands

__all__ = [
    "StorageResource",
    "Collection",
    "DataObject",
    "Mcat",
    "SrbServer",
    "SrbSession",
    "Scommands",
]
