"""The replicated key/value substrate: LWW entries, version vectors, digests.

Each region holds one :class:`ReplicatedStore` — a last-writer-wins element
map with tombstones.  Every write is stamped with a :class:`Version`, a
``(counter, region)`` pair ordered lexicographically: the counter is a
Lamport clock (bumped past any counter seen from a peer), and the region
name breaks ties deterministically, so *every* replica resolves a conflict
the same way regardless of delivery order.  Deletions are tombstoned, not
erased — a tombstone must out-compete a concurrent re-create on some other
side of a partition.

Anti-entropy compares stores by *digest* rather than by shipping state:
keys hash into a fixed set of buckets, each bucket digests its sorted
entries with SHA-256, and a root digest covers the bucket digests
(merkle-style, two levels deep).  Two stores with equal root digests hold
byte-identical state; unequal roots are narrowed to the differing buckets,
and only those entries cross the wire.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterator

from repro.faults import ReplicationError


@dataclass(frozen=True, order=True)
class Version:
    """A write's Lamport timestamp: ordered by counter, then region name."""

    counter: int
    region: str

    def to_dict(self) -> dict[str, Any]:
        return {"counter": self.counter, "region": self.region}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Version":
        try:
            return Version(int(data["counter"]), str(data["region"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplicationError(f"malformed version: {data!r}") from exc


@dataclass
class Entry:
    """One replicated key: its value, version, and liveness."""

    key: str
    value: Any
    version: Version
    deleted: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "value": self.value,
            "version": self.version.to_dict(),
            "deleted": self.deleted,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Entry":
        if "key" not in data or "version" not in data:
            raise ReplicationError(f"malformed entry: {data!r}")
        return Entry(
            key=str(data["key"]),
            value=data.get("value"),
            version=Version.from_dict(data["version"]),
            deleted=bool(data.get("deleted")),
        )

    def canonical(self) -> str:
        """The digest line for this entry (stable across processes)."""
        payload = json.dumps(self.value, sort_keys=True, separators=(",", ":"))
        return (
            f"{self.key}\t{self.version.counter}\t{self.version.region}"
            f"\t{int(self.deleted)}\t{payload}"
        )


class ReplicatedStore:
    """One region's LWW element map with merkle-style digests."""

    def __init__(self, region: str, *, buckets: int = 16):
        if not region:
            raise ReplicationError("a replicated store needs a region name")
        if buckets < 1:
            raise ReplicationError("bucket count must be positive")
        self.region = region
        self.buckets = buckets
        self._entries: dict[str, Entry] = {}
        #: Lamport counter: strictly increases, and jumps past any counter
        #: observed from a peer so causally-later writes order later
        self._counter = 0
        #: region -> highest counter seen from that region
        self.vector: dict[str, int] = {}
        #: bumped on every effective change; cheap "did anything move" probe
        #: for materialized views that rebuild lazily
        self.mutations = 0

    # -- local writes ---------------------------------------------------------

    def _next_version(self) -> Version:
        self._counter += 1
        self.vector[self.region] = self._counter
        return Version(self._counter, self.region)

    def put(self, key: str, value: Any) -> Entry:
        """Write *value* at *key* with a fresh local version."""
        entry = Entry(key, value, self._next_version())
        self._entries[key] = entry
        self.mutations += 1
        return entry

    def delete(self, key: str) -> Entry:
        """Tombstone *key* (idempotent: deleting an absent key still leaves
        a tombstone that out-competes concurrent remote writes)."""
        entry = Entry(key, None, self._next_version(), deleted=True)
        self._entries[key] = entry
        self.mutations += 1
        return entry

    # -- reads ----------------------------------------------------------------

    def get(self, key: str) -> Any:
        entry = self._entries.get(key)
        if entry is None or entry.deleted:
            return None
        return entry.value

    def has(self, key: str) -> bool:
        entry = self._entries.get(key)
        return entry is not None and not entry.deleted

    def items(self) -> Iterator[tuple[str, Any]]:
        """Live (key, value) pairs in sorted key order."""
        for key in sorted(self._entries):
            entry = self._entries[key]
            if not entry.deleted:
                yield key, entry.value

    def keys(self, prefix: str = "") -> list[str]:
        return [key for key, _ in self.items() if key.startswith(prefix)]

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # -- merge (the convergence rule) ----------------------------------------

    def apply(self, data: dict[str, Any]) -> bool:
        """Merge one remote entry; returns True when it won locally.

        LWW: the higher ``(counter, region)`` version wins; ties (identical
        versions) are already-converged duplicates and change nothing.  The
        local Lamport counter always advances past the remote one, so the
        next local write is ordered after everything merged so far.
        """
        entry = Entry.from_dict(data)
        if entry.version.counter > self._counter:
            self._counter = entry.version.counter
        seen = self.vector.get(entry.version.region, 0)
        if entry.version.counter > seen:
            self.vector[entry.version.region] = entry.version.counter
        current = self._entries.get(entry.key)
        if current is not None and current.version >= entry.version:
            return False
        self._entries[entry.key] = entry
        self.mutations += 1
        return True

    def apply_many(self, entries: list[dict[str, Any]]) -> int:
        applied = 0
        for data in entries:
            if self.apply(data):
                applied += 1
        return applied

    # -- merkle-style digests -------------------------------------------------

    def _bucket_of(self, key: str) -> int:
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % self.buckets

    def bucket_digest(self, bucket: int) -> str:
        """SHA-256 over the bucket's sorted canonical entry lines."""
        hasher = hashlib.sha256()
        for key in sorted(self._entries):
            if self._bucket_of(key) == bucket:
                hasher.update(self._entries[key].canonical().encode("utf-8"))
                hasher.update(b"\n")
        return hasher.hexdigest()

    def bucket_digests(self) -> dict[str, str]:
        """All bucket digests, keyed by stringified bucket index (SOAP maps
        carry string keys)."""
        return {str(b): self.bucket_digest(b) for b in range(self.buckets)}

    def root_digest(self) -> str:
        """One hash covering every bucket: equal roots ⇒ identical state."""
        hasher = hashlib.sha256()
        for bucket in range(self.buckets):
            hasher.update(self.bucket_digest(bucket).encode("ascii"))
        return hasher.hexdigest()

    def bucket_entries(self, bucket: int) -> list[dict[str, Any]]:
        """The bucket's entries (tombstones included) in sorted key order."""
        return [
            self._entries[key].to_dict()
            for key in sorted(self._entries)
            if self._bucket_of(key) == bucket
        ]
