"""The per-region replication service and the seeded anti-entropy gossip.

Each region mounts a :class:`ReplicationService` — a SOAP face over its
:class:`~repro.replication.store.ReplicatedStore` speaking the digest
protocol: ``root_digest`` / ``bucket_digests`` to compare, ``fetch_bucket``
to pull, ``push_entries`` to offer.  A :class:`GossipScheduler` drives
rounds from a seeded PRNG: each round picks region pairs, compares roots,
narrows differences to buckets, and exchanges only the differing entries
in both directions — so one round over a pair converges that pair exactly.

Every exchange carries the ``urn:gce:replication`` header
(:mod:`repro.replication.headers`): the receiving service's interceptor
records the sender's version vector, which is what the monitoring view
reads to report per-region replication lag without extra round trips.
"""

from __future__ import annotations

import random
from typing import Any

from repro.replication.headers import (
    REPLICATION_NS,
    replica_from_headers,
    replica_header,
)
from repro.replication.store import ReplicatedStore
from repro.resilience.events import SYNC, SYNC_FAILED, ResilienceLog
from repro.soap.client import SoapClient
from repro.soap.message import SoapEnvelope
from repro.soap.server import SoapService
from repro.transport.network import TransportError, VirtualNetwork
from repro.transport.server import HttpServer
from repro.xmlutil.element import XmlElement


class ReplicationService:
    """One region's SOAP face over its replicated store."""

    def __init__(self, store: ReplicatedStore, *, clock=None):
        self.store = store
        self.clock = clock
        #: peer region -> version vector last seen on an inbound call
        self.peer_vectors: dict[str, dict[str, int]] = {}
        #: peer region -> virtual time of its last inbound call
        self.peer_seen_at: dict[str, float] = {}
        self.exchanges_served = 0

    # -- the header interceptor (server side of urn:gce:replication) ---------

    def observe_replica_header(
        self, method: str, params: list[Any], envelope: SoapEnvelope
    ) -> None:
        """Record the calling region's vector from the ``Replica`` header."""
        region, vector = (
            replica_from_headers(envelope.headers) if envelope.headers else (None, {})
        )
        if region is None:
            return
        self.peer_vectors[region] = vector
        if self.clock is not None:
            self.peer_seen_at[region] = self.clock.now

    # -- exposed SOAP methods -------------------------------------------------

    def root_digest(self) -> str:
        """The store's merkle root (equal roots ⇒ identical state)."""
        self.exchanges_served += 1
        return self.store.root_digest()

    def bucket_digests(self) -> dict[str, str]:
        """Per-bucket digests for narrowing a detected difference."""
        self.exchanges_served += 1
        return self.store.bucket_digests()

    def fetch_bucket(self, bucket: int) -> list[dict[str, Any]]:
        """One bucket's entries, tombstones included."""
        self.exchanges_served += 1
        return self.store.bucket_entries(int(bucket))

    def push_entries(self, entries: list[dict[str, Any]]) -> int:
        """Merge offered entries; returns how many won locally."""
        self.exchanges_served += 1
        return self.store.apply_many(entries)

    def replication_info(self) -> dict[str, Any]:
        """The region's replication posture for monitoring."""
        return {
            "region": self.store.region,
            "entries": len(self.store),
            "vector": dict(sorted(self.store.vector.items())),
            "peers": {
                region: dict(sorted(vector.items()))
                for region, vector in sorted(self.peer_vectors.items())
            },
        }


def deploy_replication(
    network: VirtualNetwork,
    host: str,
    store: ReplicatedStore,
    *,
    server: HttpServer | None = None,
) -> tuple[ReplicationService, str]:
    """Mount a region's replication service; returns (impl, endpoint URL)."""
    impl = ReplicationService(store, clock=network.clock)
    server = server or HttpServer(host, network)
    soap = SoapService("Replication", REPLICATION_NS)
    soap.expose(impl.root_digest)
    soap.expose(impl.bucket_digests)
    soap.expose(impl.fetch_bucket)
    soap.expose(impl.push_entries)
    soap.expose(impl.replication_info)
    soap.interceptors.append(impl.observe_replica_header)
    return impl, soap.mount(server, "/replication")


class ReplicationPeer:
    """A region's client handle on another region's replication service."""

    def __init__(
        self,
        network: VirtualNetwork,
        endpoint: str,
        *,
        local_store: ReplicatedStore,
        source: str,
    ):
        self.endpoint = endpoint
        self._store = local_store
        self._soap = SoapClient(network, endpoint, REPLICATION_NS, source=source)
        self._soap.add_header_provider(self._replica_headers)

    def _replica_headers(self, method: str, params: list[Any]) -> list[XmlElement]:
        return [replica_header(self._store.region, self._store.vector)]

    def call(self, method: str, *params: Any) -> Any:
        return self._soap.call(method, *params)


class AntiEntropySession:
    """One pairwise exchange: converge the local store with one peer."""

    def __init__(self, local: ReplicatedStore, peer: ReplicationPeer):
        self.local = local
        self.peer = peer

    def run(self) -> dict[str, int]:
        """Compare digests, then pull and push only the differing buckets.

        Returns exchange stats: buckets compared/differing, entries pulled
        (won locally) and pushed (won remotely).
        """
        stats = {"buckets": 0, "differing": 0, "pulled": 0, "pushed": 0}
        if self.peer.call("root_digest") == self.local.root_digest():
            return stats
        remote_buckets = self.peer.call("bucket_digests")
        local_buckets = self.local.bucket_digests()
        stats["buckets"] = len(local_buckets)
        for bucket_key in sorted(local_buckets):
            if remote_buckets.get(bucket_key) == local_buckets[bucket_key]:
                continue
            stats["differing"] += 1
            bucket = int(bucket_key)
            remote_entries = self.peer.call("fetch_bucket", bucket)
            stats["pulled"] += self.local.apply_many(remote_entries)
            # push after merging, so the peer receives our winners too and
            # the pair holds byte-identical bucket state when the round ends
            stats["pushed"] += self.peer.call(
                "push_entries", self.local.bucket_entries(bucket)
            )
        return stats


class GossipScheduler:
    """Seeded anti-entropy rounds across every region pair.

    ``nodes`` maps region name -> ``(store, {peer region -> ReplicationPeer})``.
    Each :meth:`round` visits region pairs in a seeded random order; a pair
    whose exchange fails (peer down, partition) records ``SYNC_FAILED`` and
    the round moves on — gossip is how the system *tolerates* partitions,
    so a cut pair must never abort the round.
    """

    def __init__(
        self,
        nodes: dict[str, tuple[ReplicatedStore, dict[str, ReplicationPeer]]],
        *,
        clock,
        seed: int = 0,
        log: ResilienceLog | None = None,
    ):
        self.nodes = nodes
        self.clock = clock
        self.log = log
        self._rng = random.Random(seed)
        self.rounds_run = 0
        #: region -> virtual time of its last *successful* outbound exchange
        self.last_sync: dict[str, float] = {}
        #: "a->b" -> cumulative pulled+pushed entry count
        self.exchange_totals: dict[str, int] = {}

    def _pairs(self) -> list[tuple[str, str]]:
        regions = sorted(self.nodes)
        pairs = [
            (a, b)
            for index, a in enumerate(regions)
            for b in regions[index + 1:]
        ]
        self._rng.shuffle(pairs)
        return pairs

    def round(self) -> dict[str, Any]:
        """Run one gossip round; returns per-pair outcome stats."""
        self.rounds_run += 1
        outcomes: dict[str, Any] = {}
        for region_a, region_b in self._pairs():
            store_a, peers_a = self.nodes[region_a]
            peer = peers_a.get(region_b)
            if peer is None:
                continue
            label = f"{region_a}->{region_b}"
            try:
                stats = AntiEntropySession(store_a, peer).run()
            except (TransportError, ConnectionError) as exc:
                outcomes[label] = {"error": type(exc).__name__}
                if self.log is not None:
                    self.log.record(
                        SYNC_FAILED,
                        f"anti-entropy {label} failed: {type(exc).__name__}",
                        service="replication",
                        operation="anti-entropy",
                        detail={"pair": label, "error": type(exc).__name__},
                    )
                continue
            outcomes[label] = stats
            self.last_sync[region_a] = self.clock.now
            self.last_sync[region_b] = self.clock.now
            moved = stats["pulled"] + stats["pushed"]
            self.exchange_totals[label] = (
                self.exchange_totals.get(label, 0) + moved
            )
            if moved and self.log is not None:
                self.log.record(
                    SYNC,
                    f"anti-entropy {label}: {stats['pulled']} pulled, "
                    f"{stats['pushed']} pushed",
                    service="replication",
                    operation="anti-entropy",
                    detail={k: str(v) for k, v in stats.items()},
                )
        return outcomes

    def run(self, rounds: int) -> int:
        """Run several rounds; returns how many entries moved in total."""
        moved = 0
        for _ in range(rounds):
            for stats in self.round().values():
                moved += stats.get("pulled", 0) + stats.get("pushed", 0)
        return moved

    def converged(self) -> bool:
        """True when every region's root digest matches."""
        digests = {
            store.root_digest() for store, _ in
            (self.nodes[region] for region in sorted(self.nodes))
        }
        return len(digests) <= 1
