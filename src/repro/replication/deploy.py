"""Multi-region deployment wiring: one call stands up the whole topology.

:func:`MultiRegionReplication.build` gives every region a replica host
carrying three services — the replicated registry's discovery facade, the
anti-entropy replication endpoint, and the context replica — plus a
coordinator for quorum context writes and a seeded gossip scheduler.  The
bundle also knows how to *rebuild* a crashed region (fresh processes, state
recovered by anti-entropy and hinted handoff), which is what the chaos
monkey's restart hook calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.discovery.registry import DISCOVERY_NAMESPACE
from repro.replication.context import (
    ContextReplicaService,
    ReplicatedContextStore,
    deploy_context_replica,
)
from repro.replication.registry import ReplicatedRegistry
from repro.replication.routing import RegionAwareFailoverClient
from repro.replication.service import (
    GossipScheduler,
    ReplicationPeer,
    ReplicationService,
    deploy_replication,
)
from repro.replication.store import ReplicatedStore
from repro.resilience.events import STALE_READ, ResilienceLog
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer


def region_host(region: str) -> str:
    return f"replica.{region}.portal.org"


@dataclass
class RegionNode:
    """Everything one region runs."""

    region: str
    host: str
    store: ReplicatedStore
    registry: ReplicatedRegistry
    replication: ReplicationService
    replication_endpoint: str
    discovery_endpoint: str
    context: ContextReplicaService
    context_endpoint: str
    peers: dict[str, ReplicationPeer] = field(default_factory=dict)


class MultiRegionReplication:
    """The assembled multi-region topology."""

    def __init__(
        self,
        network: VirtualNetwork,
        regions: tuple[str, ...],
        *,
        seed: int = 0,
        quorum: int | None = None,
        log: ResilienceLog | None = None,
        staleness_bound: float = 30.0,
    ):
        self.network = network
        self.clock = network.clock
        self.regions = tuple(sorted(regions))
        self.log = log
        #: a registry read from a region that has not synced within this
        #: many virtual seconds is served, but marked (and recorded) stale
        self.staleness_bound = staleness_bound
        self.nodes: dict[str, RegionNode] = {}
        self._seed = seed
        for region in self.regions:
            self.nodes[region] = self._build_region(region)
        self._connect_peers()
        self.gossip = GossipScheduler(
            {
                region: (node.store, node.peers)
                for region, node in sorted(self.nodes.items())
            },
            clock=self.clock,
            seed=seed,
            log=log,
        )
        self.context = ReplicatedContextStore(
            network,
            {
                region: node.context_endpoint
                for region, node in sorted(self.nodes.items())
            },
            region=self.regions[0],
            quorum=quorum,
            log=log,
        )

    @classmethod
    def build(
        cls,
        network: VirtualNetwork,
        regions: tuple[str, ...] = ("iu", "sdsc"),
        *,
        seed: int = 0,
        quorum: int | None = None,
        log: ResilienceLog | None = None,
        staleness_bound: float = 30.0,
    ) -> "MultiRegionReplication":
        return cls(
            network,
            regions,
            seed=seed,
            quorum=quorum,
            log=log,
            staleness_bound=staleness_bound,
        )

    # -- region assembly ------------------------------------------------------

    def _build_region(self, region: str) -> RegionNode:
        host = region_host(region)
        store = ReplicatedStore(region)
        registry = ReplicatedRegistry(store)
        server = HttpServer(host, self.network)
        replication, replication_endpoint = deploy_replication(
            self.network, host, store, server=server
        )
        discovery_endpoint = self._mount_discovery(registry, server)
        context, context_endpoint = deploy_context_replica(
            self.network, host, region, server=server
        )
        return RegionNode(
            region=region,
            host=host,
            store=store,
            registry=registry,
            replication=replication,
            replication_endpoint=replication_endpoint,
            discovery_endpoint=discovery_endpoint,
            context=context,
            context_endpoint=context_endpoint,
        )

    def _mount_discovery(
        self, registry: ReplicatedRegistry, server: HttpServer
    ) -> str:
        service = SoapService("ContainerDiscovery", DISCOVERY_NAMESPACE)
        service.expose(registry.soap_register, "register")
        service.expose(registry.soap_unregister, "unregister")
        service.expose(registry.soap_query, "query")
        service.expose(registry.soap_describe, "describe")
        service.expose(registry.soap_children, "children")
        return service.mount(server, "/discovery")

    def _connect_peers(self) -> None:
        for region, node in sorted(self.nodes.items()):
            node.peers = {
                other: ReplicationPeer(
                    self.network,
                    self.nodes[other].replication_endpoint,
                    local_store=node.store,
                    source=node.host,
                )
                for other in self.regions
                if other != region
            }

    # -- chaos integration ----------------------------------------------------

    def hosts(self) -> list[str]:
        return [node.host for _, node in sorted(self.nodes.items())]

    def region_groups(self) -> dict[str, tuple[str, ...]]:
        """Host groups for ChaosMonkey region partitions."""
        return {region: (region_host(region),) for region in self.regions}

    def rebuilders(self) -> dict[str, Any]:
        """Host -> closure re-deploying that region after a crash-repair."""
        return {
            region_host(region): (lambda r=region: self.rebuild_region(r))
            for region in self.regions
        }

    def rebuild_region(self, region: str) -> RegionNode:
        """Stand the region back up with empty process state.

        Registry state returns via anti-entropy (a fresh store is just one
        big digest difference); context state returns via hinted handoff (a
        fresh replica reports watermark 0 and is replayed from the log).
        """
        node = self._build_region(region)
        self.nodes[region] = node
        self._connect_peers()
        self.gossip.nodes[region] = (node.store, node.peers)
        return node

    # -- convergence and lag --------------------------------------------------

    def run_anti_entropy(self, rounds: int = 1) -> int:
        return self.gossip.run(rounds)

    def converged(self) -> bool:
        """True when every region holds byte-identical registry state."""
        exports = {
            node.registry.export_state()
            for _, node in sorted(self.nodes.items())
        }
        return len(exports) <= 1

    def registry_client(
        self, region: str, **kwargs: Any
    ) -> RegionAwareFailoverClient:
        """A region-local discovery client failing over cross-region."""
        return RegionAwareFailoverClient(
            self.network,
            {r: (node.discovery_endpoint,) for r, node in sorted(self.nodes.items())},
            DISCOVERY_NAMESPACE,
            region=region,
            source=f"client.{region}",
            resilience_log=self.log,
            service_name="replicated-discovery",
            **kwargs,
        )

    def query_registry(
        self, region: str, where: dict[str, str], scope: str = ""
    ) -> tuple[list[dict[str, Any]], bool]:
        """Query one region's registry view; returns (rows, stale).

        The answer is *stale* when the serving region has not completed an
        anti-entropy exchange within the staleness bound — exactly the
        partition case — and the degradation is surfaced as a
        ``Replication.StaleRead`` event rather than hidden.
        """
        node = self.nodes[region]
        rows = node.registry.soap_query(where, scope)
        synced_at = self.gossip.last_sync.get(region)
        stale = (
            len(self.regions) > 1
            and (synced_at is None
                 or self.clock.now - synced_at > self.staleness_bound)
        )
        if stale and self.log is not None:
            age = (
                self.clock.now - synced_at if synced_at is not None else -1.0
            )
            self.log.record(
                STALE_READ,
                f"registry query served stale from region {region} "
                f"(last sync {age:.3f}s ago)",
                service="replicated-discovery",
                operation="query",
                detail={"region": region, "age": f"{age:.6f}"},
            )
        return rows, stale

    def replication_rows(self) -> list[dict[str, Any]]:
        """Per-region posture rows for the monitoring service."""
        backlog = self.context.hint_backlog()
        rows: list[dict[str, Any]] = []
        for region, node in sorted(self.nodes.items()):
            synced_at = self.gossip.last_sync.get(region)
            rows.append({
                "region": region,
                "host": node.host,
                "entries": len(node.store),
                "digest": node.store.root_digest()[:12],
                "lag_s": (
                    round(self.clock.now - synced_at, 6)
                    if synced_at is not None else -1.0
                ),
                "hint_backlog": backlog.get(region, 0),
                "context_seq": node.context.applied,
                "stale_reads": self.context.stale_reads_served,
            })
        return rows
