"""Partition-tolerant multi-region replication (ROADMAP item 3).

The paper's §6 "distributed operating system" vision needs its registries
and session state to span sites; this package makes the discovery
hierarchy, UDDI registry, and context store survive host crashes and
network partitions on the deterministic virtual clock:

- :mod:`~repro.replication.store` — LWW element maps with version vectors
  and merkle-style digests (the convergence substrate);
- :mod:`~repro.replication.service` — the per-region SOAP replication
  endpoint and seeded anti-entropy gossip;
- :mod:`~repro.replication.registry` — discovery + UDDI materialized over
  the replicated keyspace, with region-prefixed UDDI keys;
- :mod:`~repro.replication.context` — quorum context writes with hinted
  handoff and explicitly-marked stale reads;
- :mod:`~repro.replication.routing` — region-aware failover preferring
  local replicas;
- :mod:`~repro.replication.deploy` — one-call multi-region topology.
"""

from repro.replication.context import (
    ContextReplicaService,
    ReplicatedContextStore,
    apply_context_op,
    deploy_context_replica,
)
from repro.replication.deploy import (
    MultiRegionReplication,
    RegionNode,
    region_host,
)
from repro.replication.headers import (
    REPLICA_HEADER,
    REPLICATION_NS,
    replica_from_headers,
    replica_header,
)
from repro.replication.registry import ReplicatedRegistry
from repro.replication.routing import RegionAwareFailoverClient
from repro.replication.service import (
    AntiEntropySession,
    GossipScheduler,
    ReplicationPeer,
    ReplicationService,
    deploy_replication,
)
from repro.replication.store import Entry, ReplicatedStore, Version

__all__ = [
    "AntiEntropySession",
    "ContextReplicaService",
    "Entry",
    "GossipScheduler",
    "MultiRegionReplication",
    "REPLICATION_NS",
    "REPLICA_HEADER",
    "RegionAwareFailoverClient",
    "RegionNode",
    "ReplicatedContextStore",
    "ReplicatedRegistry",
    "ReplicatedStore",
    "ReplicationPeer",
    "ReplicationService",
    "Version",
    "apply_context_op",
    "deploy_context_replica",
    "deploy_replication",
    "region_host",
    "replica_from_headers",
    "replica_header",
]
