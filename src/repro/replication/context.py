"""Quorum-replicated context state with hinted handoff.

The registry replicates lazily (anti-entropy) because discovery metadata
tolerates staleness; a user's *session* does not — the paper's §3.3 context
tree is the portal's memory of the user's work, and an acknowledged write
must never vanish.  So context replication is synchronous: a coordinator
assigns every mutation a sequence number, offers it to every region's
:class:`ContextReplicaService`, and acknowledges the caller only once a
*quorum* of replicas applied it.  Fewer than quorum ⇒
:class:`~repro.faults.QuorumLostError` (retryable: the op stays in the
coordinator's log and heals forward).

Replicas that missed ops — down, partitioned, or freshly restarted with an
empty store — are healed by *hinted handoff*: the coordinator's log keeps
every op, a per-replica watermark tracks the highest contiguously-applied
sequence, and :meth:`ReplicatedContextStore.flush_hints` replays the gap in
order.  A replica restarting from nothing reports ``applied_seq == 0`` and
is simply replayed from the beginning — full state transfer is just a
big hint gap.

Reads prefer the local region and fall back across regions; a replica
answering from behind the coordinator's log is an *explicitly stale* read,
surfaced as a ``Replication.StaleRead`` resilience event (and therefore on
the current span) with the lag in ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.faults import (
    ContextError,
    PortalError,
    QuorumLostError,
    StaleReadError,
)
from repro.replication.headers import REPLICATION_NS, replica_header
from repro.resilience.events import HANDOFF, HINT, STALE_READ, ResilienceLog
from repro.services.context import CONTEXT_NAMESPACE, ContextStore
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import TransportError, VirtualNetwork
from repro.transport.server import HttpServer
from repro.xmlutil.element import XmlElement

REPLICA_CONTEXT_NAMESPACE = CONTEXT_NAMESPACE + ":replica"


def apply_context_op(store: ContextStore, kind: str, data: dict[str, Any]) -> None:
    """Apply one logged mutation to a plain store (shared by the replicas
    and the coordinator's validating copy, so both stay bit-for-bit in
    step with the op log)."""
    if kind == "ctx-create":
        store.create(data["path"], placeholder=bool(data.get("placeholder")))
    elif kind == "ctx-remove":
        store.remove(data["path"])
    elif kind == "ctx-rename":
        store.rename(data["path"], data["new"])
    elif kind == "ctx-copy":
        store.copy(data["src"], data["dst"])
    elif kind == "ctx-prop-set":
        store.set_property(data["path"], data["key"], data["value"])
    elif kind == "ctx-prop-del":
        store.remove_property(data["path"], data["key"])
    elif kind == "ctx-prop-clear":
        store.clear_properties(data["path"])
    elif kind == "ctx-desc":
        store.set_descriptor(data["path"], data["descriptor"])
    elif kind == "ctx-archive":
        store.archive(data["path"], key=data["key"])
    elif kind == "ctx-restore":
        store.restore(data["key"], data["path"])
    elif kind == "ctx-archive-del":
        store.remove_archive(data["key"])
    elif kind == "ctx-import":
        store.import_node(data["parent"], data["xml"])
    else:
        raise ContextError(f"unknown context op kind {kind!r}", {"kind": kind})


class ContextReplicaService:
    """One region's context replica: a plain store plus an op applier.

    Ops arrive as ``(seq, kind, data)`` where *kind* is a ``ctx-*`` journal
    kind; application is idempotent (a seq at or below the watermark is
    skipped, and gaps are refused so state never diverges from the log).
    """

    def __init__(self, region: str, store: ContextStore | None = None, *, clock=None):
        self.region = region
        self.store = store or ContextStore(clock)
        self.applied = 0
        self.ops_applied = 0

    def apply_op(self, seq: int, kind: str, data: dict[str, Any]) -> int:
        """Apply one op; returns the new watermark.

        Already-applied seqs are acknowledged again without effect (the
        coordinator may re-offer during handoff); a gap faults — the
        coordinator must replay the missing prefix first.
        """
        seq = int(seq)
        if seq <= self.applied:
            return self.applied
        if seq != self.applied + 1:
            raise ContextError(
                f"op gap at replica {self.region}: got seq {seq}, "
                f"applied {self.applied}",
                {"seq": str(seq), "applied": str(self.applied)},
            )
        apply_context_op(self.store, kind, data)
        self.applied = seq
        self.ops_applied += 1
        return self.applied

    def applied_seq(self) -> int:
        """The replica's watermark (for handoff reconciliation)."""
        return self.applied

    def read(self, path: str) -> dict[str, Any]:
        """One node's XML plus the watermark it reflects."""
        node = self.store.node(path)
        return {"xml": node.to_xml().serialize(), "seq": self.applied}

    def snapshot(self) -> dict[str, Any]:
        """The replica's comparable durable state plus its watermark."""
        return {"state": self.store.snapshot(), "seq": self.applied}


def deploy_context_replica(
    network: VirtualNetwork,
    host: str,
    region: str,
    *,
    server: HttpServer | None = None,
) -> tuple[ContextReplicaService, str]:
    """Mount a region's context replica; returns (impl, endpoint URL)."""
    impl = ContextReplicaService(region, clock=network.clock)
    server = server or HttpServer(host, network)
    soap = SoapService("ContextReplica", REPLICA_CONTEXT_NAMESPACE)
    soap.expose(impl.apply_op)
    soap.expose(impl.applied_seq)
    soap.expose(impl.read)
    soap.expose(impl.snapshot)
    return impl, soap.mount(server, "/context-replica")


@dataclass
class ContextOp:
    """One logged mutation."""

    seq: int
    kind: str
    data: dict[str, Any]


class ReplicatedContextStore:
    """The write coordinator: quorum acks, a durable op log, hinted handoff.

    ``replicas`` maps region name -> replica endpoint URL.  Writes offer the
    op to every region in sorted order; reads go local-region-first through
    the ordered replica list.  The coordinator is deliberately client-side
    state (it lives with the UI server, the paper's session holder) — its
    op log is the authoritative history, replicas are its projections.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        replicas: dict[str, str],
        *,
        region: str,
        quorum: int | None = None,
        source: str = "portal",
        log: ResilienceLog | None = None,
        write_timeout: float = 5.0,
    ):
        if not replicas:
            raise ContextError("replicated context store needs replicas")
        self.network = network
        self.clock = network.clock
        self.region = region
        self.regions = sorted(replicas)
        self.quorum = quorum if quorum is not None else len(replicas) // 2 + 1
        if not 1 <= self.quorum <= len(replicas):
            raise ContextError(
                f"quorum {self.quorum} impossible with {len(replicas)} replicas"
            )
        self.log = log
        self.write_timeout = write_timeout
        #: the coordinator's validating copy: every op is applied here
        #: *before* it is logged, so an invalid mutation (bad path, dup
        #: rename) faults immediately and can never poison the op log that
        #: handoff replays
        self.local = ContextStore(network.clock)
        self.oplog: list[ContextOp] = []
        #: region -> highest seq we have confirmed applied there
        self.acked: dict[str, int] = {name: 0 for name in self.regions}
        self.writes_acknowledged = 0
        self.stale_reads_served = 0
        self.hints_replayed = 0
        self._clients: dict[str, SoapClient] = {}
        for name in self.regions:
            client = SoapClient(
                network,
                replicas[name],
                REPLICA_CONTEXT_NAMESPACE,
                source=source,
                service_name="context-replica",
            )
            client.add_header_provider(self._replica_headers)
            self._clients[name] = client

    def _replica_headers(self, method: str, params: list[Any]) -> list[XmlElement]:
        return [replica_header(self.region, {"seq": len(self.oplog)})]

    # -- the write path -------------------------------------------------------

    @property
    def seq(self) -> int:
        return len(self.oplog)

    def _offer(self, name: str, op: ContextOp) -> bool:
        """Push *op* (and any missing prefix) to one replica."""
        client = self._clients[name]
        behind = int(client.call("applied_seq", timeout=self.write_timeout))
        if behind < self.acked[name]:
            # the replica restarted with less state than we believed: our
            # watermark was process gossip, its answer is ground truth
            self.acked[name] = behind
        for pending in self.oplog[behind:op.seq - 1]:
            client.call(
                "apply_op", pending.seq, pending.kind, pending.data,
                timeout=self.write_timeout,
            )
        applied = int(client.call(
            "apply_op", op.seq, op.kind, op.data, timeout=self.write_timeout
        ))
        self.acked[name] = max(self.acked[name], applied)
        return applied >= op.seq

    def write(self, kind: str, **data: Any) -> int:
        """Log one mutation and replicate it to a quorum; returns its seq.

        Replicas that cannot be reached keep the op as a *hint* (their
        watermark stays behind); a quorum shortfall raises
        :class:`QuorumLostError` — the op stays logged, so a later retry or
        handoff still delivers it, but the caller knows the write was not
        durably acknowledged.
        """
        apply_context_op(self.local, kind, dict(data))  # validate first
        op = ContextOp(len(self.oplog) + 1, kind, dict(data))
        self.oplog.append(op)
        acks = 0
        for name in self.regions:
            try:
                if self._offer(name, op):
                    acks += 1
            except (TransportError, ConnectionError, PortalError) as exc:
                if self.log is not None:
                    self.log.record(
                        HINT,
                        f"op {op.seq} ({kind}) hinted for region {name}: "
                        f"{type(exc).__name__}",
                        service="context-replication",
                        operation=kind,
                        detail={
                            "region": name,
                            "seq": str(op.seq),
                            "error": type(exc).__name__,
                        },
                    )
        if acks < self.quorum:
            raise QuorumLostError(
                f"op {op.seq} ({kind}) reached {acks}/{len(self.regions)} "
                f"replicas, quorum is {self.quorum}",
                {"seq": str(op.seq), "acks": str(acks), "quorum": str(self.quorum)},
            )
        self.writes_acknowledged += 1
        return op.seq

    # -- the mutation surface (mirrors ContextStore) --------------------------

    def create(self, path: str, *, placeholder: bool = False) -> int:
        return self.write("ctx-create", path=path, placeholder=placeholder)

    def remove(self, path: str) -> int:
        return self.write("ctx-remove", path=path)

    def rename(self, path: str, new_name: str) -> int:
        return self.write("ctx-rename", path=path, new=new_name)

    def copy(self, src: str, dst: str) -> int:
        return self.write("ctx-copy", src=src, dst=dst)

    def set_property(self, path: str, key: str, value: str) -> int:
        return self.write("ctx-prop-set", path=path, key=key, value=value)

    def remove_property(self, path: str, key: str) -> int:
        return self.write("ctx-prop-del", path=path, key=key)

    def set_descriptor(self, path: str, descriptor: str) -> int:
        return self.write("ctx-desc", path=path, descriptor=descriptor)

    def archive(self, path: str, *, key: str = "") -> str:
        key = key or f"{path.strip('/')}@{self.clock.now:.3f}"
        self.write("ctx-archive", path=path, key=key)
        return key

    def restore(self, archive_key: str, path: str) -> int:
        return self.write("ctx-restore", key=archive_key, path=path)

    def import_node(self, parent_path: str, xml: str) -> int:
        return self.write("ctx-import", parent=parent_path, xml=xml)

    # -- hinted handoff -------------------------------------------------------

    def hint_backlog(self) -> dict[str, int]:
        """Per-region count of ops not yet confirmed applied there."""
        return {name: self.seq - self.acked[name] for name in self.regions}

    def flush_hints(self, name: str) -> int:
        """Replay one region's hint gap in order; returns ops delivered.

        Asks the replica where it actually is first — a crash-restarted
        replica is simply a very large gap and gets the full log.
        """
        client = self._clients[name]
        # the replica's own watermark is ground truth (it may have
        # crash-restarted below our cached ack, or recovered above it)
        behind = int(client.call("applied_seq", timeout=self.write_timeout))
        self.acked[name] = behind
        delivered = 0
        for op in self.oplog[behind:]:
            client.call(
                "apply_op", op.seq, op.kind, op.data, timeout=self.write_timeout
            )
            self.acked[name] = op.seq
            delivered += 1
        if delivered and self.log is not None:
            self.log.record(
                HANDOFF,
                f"replayed {delivered} hinted ops to region {name}",
                service="context-replication",
                operation="flush-hints",
                detail={"region": name, "delivered": str(delivered)},
            )
        self.hints_replayed += delivered
        return delivered

    def sync_all(self) -> dict[str, int]:
        """Flush hints to every reachable replica (the heal path)."""
        delivered: dict[str, int] = {}
        for name in self.regions:
            try:
                delivered[name] = self.flush_hints(name)
            except (TransportError, ConnectionError, PortalError):
                delivered[name] = -1  # still unreachable; hints kept
        return delivered

    # -- reads ----------------------------------------------------------------

    def read_node(self, path: str, *, allow_stale: bool = True) -> dict[str, Any]:
        """Read one node, local region first, any region under partition.

        Returns ``{"xml", "seq", "stale", "lag"}``.  A replica behind the
        op log yields ``stale=True`` with the lag in ops, recorded as a
        ``Replication.StaleRead`` event (and so onto the current span);
        with ``allow_stale=False`` it raises :class:`StaleReadError`
        instead of degrading.
        """
        order = [self.region] + [n for n in self.regions if n != self.region]
        last_error: BaseException | None = None
        for name in order:
            if name not in self._clients:
                continue
            try:
                answer = self._clients[name].call(
                    "read", path, timeout=self.write_timeout
                )
            except (TransportError, ConnectionError) as exc:
                last_error = exc
                continue
            lag = self.seq - int(answer["seq"])
            stale = lag > 0
            if stale:
                if not allow_stale:
                    raise StaleReadError(
                        f"replica {name} is {lag} ops behind for {path!r}",
                        {"region": name, "lag": str(lag), "path": path},
                    )
                self.stale_reads_served += 1
                if self.log is not None:
                    self.log.record(
                        STALE_READ,
                        f"stale read of {path!r} from region {name} "
                        f"({lag} ops behind)",
                        service="context-replication",
                        operation="read",
                        detail={"region": name, "lag": str(lag), "path": path},
                    )
            return {
                "xml": answer["xml"],
                "seq": int(answer["seq"]),
                "stale": stale,
                "lag": lag,
                "region": name,
            }
        raise QuorumLostError(
            f"no replica answered a read of {path!r}",
            {
                "path": path,
                "lastError": type(last_error).__name__ if last_error else "",
            },
        )

    # -- the convergence witness ----------------------------------------------

    def snapshots(self) -> dict[str, dict[str, Any]]:
        """Every reachable replica's snapshot, for convergence assertions."""
        out: dict[str, dict[str, Any]] = {}
        for name in self.regions:
            try:
                out[name] = self._clients[name].call(
                    "snapshot", timeout=self.write_timeout
                )
            except (TransportError, ConnectionError):
                continue
        return out
