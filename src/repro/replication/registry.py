"""The replicated registry: discovery hierarchy + UDDI over one LWW store.

A :class:`ReplicatedRegistry` is a region's read/write face over the shared
registry keyspace.  Writes go into the region's
:class:`~repro.replication.store.ReplicatedStore` (where anti-entropy can
find them); reads go through *materialized views* — a plain
:class:`~repro.discovery.registry.ContainerRegistry` and
:class:`~repro.uddi.registry.UddiRegistry` rebuilt lazily whenever the
store has moved — so the whole existing inquiry surface (path queries,
UDDI find/get, WSDL metadata) works unchanged against replicated state.

Keyspace layout (one flat LWW map):

- ``disc:<path>``      — a discovery entry's metadata map
- ``uddi:be:<key>``    — a businessEntity (``to_dict`` form)
- ``uddi:bs:<key>``    — a businessService, bindings embedded
- ``uddi:tm:<key>``    — a published tModel

UDDI keys are *region-prefixed* (``uuid:be-iu-00000001``): each region
allocates from its own namespace, so two regions publishing during a
partition can never collide on a key — the failure mode the plain
registry's global counter would hit immediately.
"""

from __future__ import annotations

from typing import Any

from repro.discovery.container import MetadataContainer
from repro.discovery.registry import ContainerRegistry
from repro.faults import DiscoveryError, InvalidRequestError
from repro.replication.store import ReplicatedStore
from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    TModel,
)
from repro.uddi.registry import UddiRegistry

DISC_PREFIX = "disc:"
BUSINESS_PREFIX = "uddi:be:"
SERVICE_PREFIX = "uddi:bs:"
TMODEL_PREFIX = "uddi:tm:"


class ReplicatedRegistry:
    """One region's face over the replicated discovery/UDDI keyspace."""

    def __init__(self, store: ReplicatedStore):
        self.store = store
        self.region = store.region
        self._container = ContainerRegistry()
        self._uddi = UddiRegistry()
        self._materialized_at = -1

    # -- materialization ------------------------------------------------------

    def refresh(self) -> None:
        """Rebuild the local views if the store moved since the last build."""
        if self.store.mutations == self._materialized_at:
            return
        container = ContainerRegistry()
        uddi = UddiRegistry()
        for key, value in self.store.items():
            if key.startswith(DISC_PREFIX):
                container.register_service(key[len(DISC_PREFIX):], value)
            elif key.startswith(BUSINESS_PREFIX):
                entity = BusinessEntity.from_dict(value)
                uddi._businesses[entity.key] = entity
            elif key.startswith(TMODEL_PREFIX):
                tmodel = TModel.from_dict(value)
                uddi._tmodels[tmodel.key] = tmodel
        # services second: their business/category validation must see the
        # merged businesses and tModels, not an arbitrary key-order prefix
        for key, value in self.store.items():
            if key.startswith(SERVICE_PREFIX):
                service = BusinessService.from_dict(value)
                uddi._services[service.key] = service
        self._container = container
        self._uddi = uddi
        self._materialized_at = self.store.mutations

    @property
    def container(self) -> ContainerRegistry:
        self.refresh()
        return self._container

    @property
    def uddi(self) -> UddiRegistry:
        self.refresh()
        return self._uddi

    # -- region-scoped UDDI key allocation -----------------------------------

    def _next_key(self, store_prefix: str, kind: str) -> str:
        """Allocate the next ``uuid:<kind>-<region>-<n>`` key.

        The index resumes past the highest already present in the store for
        this region, so a restarted region that re-synced its store never
        re-issues a key it handed out in a previous life.
        """
        marker = f"uuid:{kind}-{self.region}-"
        highest = 0
        for key, _ in self.store.items():
            if not key.startswith(store_prefix):
                continue
            raw = key[len(store_prefix):]
            if raw.startswith(marker) and raw[len(marker):].isdigit():
                highest = max(highest, int(raw[len(marker):]))
        return f"{marker}{highest + 1:08d}"

    # -- discovery writes -----------------------------------------------------

    def register_service(
        self, path: str, metadata: dict[str, list[str] | str]
    ) -> str:
        """Register (or update) a discovery entry; replicates to all regions."""
        path = "/" + path.strip("/")
        key = DISC_PREFIX + path
        merged: dict[str, list[str]] = dict(self.store.get(key) or {})
        for meta_key, value in sorted(metadata.items()):
            merged[meta_key] = [value] if isinstance(value, str) else list(value)
        self.store.put(key, merged)
        return path

    def unregister(self, path: str) -> None:
        """Tombstone the entry at *path* and every entry beneath it."""
        path = "/" + path.strip("/")
        doomed = [
            key for key, _ in self.store.items()
            if key == DISC_PREFIX + path
            or key.startswith(DISC_PREFIX + path + "/")
        ]
        if not doomed and self.container.root.lookup(path) is None:
            raise DiscoveryError(f"no container at path {path!r}", {"path": path})
        for key in doomed:
            self.store.delete(key)

    # -- discovery reads (the ContainerRegistry SOAP facade) ------------------

    def soap_register(self, path: str, metadata: dict[str, Any]) -> str:
        return self.register_service(path, metadata)

    def soap_unregister(self, path: str) -> bool:
        self.unregister(path)
        return True

    def soap_query(self, where: dict[str, Any], scope: str) -> list[dict[str, Any]]:
        return self.container.soap_query(where, scope)

    def soap_describe(self, path: str) -> str:
        return self.container.soap_describe(path)

    def soap_children(self, path: str) -> list[str]:
        return self.container.soap_children(path)

    # -- UDDI publish ---------------------------------------------------------

    def save_business(self, entity: BusinessEntity) -> BusinessEntity:
        if not entity.key:
            entity.key = self._next_key(BUSINESS_PREFIX, "be")
        self.store.put(BUSINESS_PREFIX + entity.key, entity.to_dict())
        return entity

    def save_tmodel(self, tmodel: TModel) -> TModel:
        if not tmodel.key:
            tmodel.key = self._next_key(TMODEL_PREFIX, "tm")
        self.store.put(TMODEL_PREFIX + tmodel.key, tmodel.to_dict())
        return tmodel

    def save_service(self, service: BusinessService) -> BusinessService:
        uddi = self.uddi
        if (
            service.business_key not in uddi._businesses
            and not self.store.has(BUSINESS_PREFIX + service.business_key)
        ):
            raise DiscoveryError(
                f"unknown businessKey {service.business_key!r}",
                {"businessKey": service.business_key},
            )
        for ref in service.category_bag:
            if ref.tmodel_key not in uddi._tmodels:
                raise InvalidRequestError(
                    f"categoryBag references unregistered tModel {ref.tmodel_key!r}",
                    {"tModelKey": ref.tmodel_key},
                )
        if not service.key:
            service.key = self._next_key(SERVICE_PREFIX, "bs")
        for index, binding in enumerate(service.bindings, start=1):
            if not binding.key:
                binding.key = f"{service.key}-bt-{index:04d}"
            binding.service_key = service.key
        self.store.put(SERVICE_PREFIX + service.key, service.to_dict())
        return service

    def save_binding(self, binding: BindingTemplate) -> BindingTemplate:
        """Attach a binding by rewriting its whole service entry (LWW is
        per entry, so concurrent binding adds on *different* regions race —
        the registry's documented staleness contract)."""
        raw = self.store.get(SERVICE_PREFIX + binding.service_key)
        if raw is None:
            raise DiscoveryError(
                f"unknown serviceKey {binding.service_key!r}",
                {"serviceKey": binding.service_key},
            )
        service = BusinessService.from_dict(raw)
        if not binding.key:
            binding.key = (
                f"{service.key}-bt-{len(service.bindings) + 1:04d}"
            )
        service.bindings.append(binding)
        self.store.put(SERVICE_PREFIX + service.key, service.to_dict())
        return binding

    def delete_service(self, service_key: str) -> None:
        if not self.store.has(SERVICE_PREFIX + service_key):
            raise DiscoveryError(f"unknown serviceKey {service_key!r}")
        self.store.delete(SERVICE_PREFIX + service_key)

    # -- UDDI inquiry (delegated to the materialized view) --------------------

    def find_business(self, name_pattern: str = "") -> list[BusinessEntity]:
        return self.uddi.find_business(name_pattern)

    def find_service(self, *args: Any, **kwargs: Any) -> list[BusinessService]:
        return self.uddi.find_service(*args, **kwargs)

    def find_tmodel(self, name_pattern: str = "") -> list[TModel]:
        return self.uddi.find_tmodel(name_pattern)

    def get_business_detail(self, key: str) -> BusinessEntity:
        return self.uddi.get_business_detail(key)

    def get_service_detail(self, key: str) -> BusinessService:
        return self.uddi.get_service_detail(key)

    def get_tmodel_detail(self, key: str) -> TModel:
        return self.uddi.get_tmodel_detail(key)

    def services_implementing(self, tmodel_key: str) -> list[BusinessService]:
        return self.uddi.services_implementing(tmodel_key)

    # -- the convergence witness ----------------------------------------------

    def export_state(self) -> str:
        """The region's full registry state in canonical text form.

        Two regions are converged exactly when their exports are
        byte-identical — this is what the disaster drill compares.
        """
        parts = [self.container.root.serialize(indent=None)]
        uddi = self.uddi
        for key in sorted(uddi._businesses):
            parts.append(repr(sorted(uddi._businesses[key].to_dict().items())))
        for key in sorted(uddi._services):
            parts.append(repr(sorted(uddi._services[key].to_dict().items())))
        for key in sorted(uddi._tmodels):
            parts.append(repr(sorted(uddi._tmodels[key].to_dict().items())))
        return "\n".join(parts)

    def state_digest(self) -> str:
        import hashlib

        return hashlib.sha256(self.export_state().encode("utf-8")).hexdigest()
