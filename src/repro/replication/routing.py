"""Region-aware failover: local replicas first, cross-region when cut off.

:class:`RegionAwareFailoverClient` extends the resilience layer's
:class:`~repro.resilience.failover.FailoverClient` with topology knowledge:
endpoints are grouped by region, the caller's own region sorts first, and
every call *starts* at the nearest endpoint whose circuit breaker is not
open — so traffic springs back to the local replica as soon as its breaker
half-opens, instead of sticking with a cross-region provider forever the
way plain sticky failover would.  Cross-region rotations are counted, which
is what the drill uses to show degraded-but-available service during a
partition.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.faults import DiscoveryError
from repro.resilience.failover import FailoverClient
from repro.transport.network import VirtualNetwork


class RegionAwareFailoverClient(FailoverClient):
    """A failover client that prefers its own region's providers."""

    def __init__(
        self,
        network: VirtualNetwork,
        endpoints_by_region: dict[str, Sequence[str]],
        namespace: str,
        *,
        region: str,
        **kwargs: Any,
    ):
        if region not in endpoints_by_region:
            raise DiscoveryError(
                f"caller region {region!r} has no replicas",
                {"region": region},
            )
        ordered: list[str] = list(endpoints_by_region[region])
        for name in sorted(endpoints_by_region):
            if name != region:
                ordered.extend(endpoints_by_region[name])
        super().__init__(network, ordered, namespace, **kwargs)
        self.region = region
        self.local_endpoints = frozenset(endpoints_by_region[region])
        #: endpoint -> owning region (for reporting which region answered)
        self.endpoint_regions = {
            endpoint: name
            for name in sorted(endpoints_by_region)
            for endpoint in endpoints_by_region[name]
        }
        self.cross_region_calls = 0
        self.local_calls = 0

    def _eligible(self, endpoint: str) -> bool:
        """Whether the endpoint's breaker would admit a request now.

        The breaker moves open -> half-open *lazily*, inside ``allow()``;
        reading ``state`` alone would keep routing away from a recovered
        local replica forever.  An open breaker whose cooldown has elapsed
        is due a probe, so it counts as eligible here.
        """
        from repro.transport.http import parse_url

        breaker = self.http.breaker_for(parse_url(endpoint).host)
        if breaker is None or breaker.state != "open":
            return True
        return breaker.clock.now - breaker.opened_at >= breaker.policy.cooldown

    def _start_index(self) -> int:
        """Start each rotation at the nearest eligible endpoint.

        ``self.endpoints`` is already ordered local-first, so scanning for
        the first endpoint whose breaker would admit a call implements
        "prefer local, fail over cross-region when breakers open, spring
        back on half-open".  With every breaker open, fall back to the
        sticky/rotor base behaviour — the rotation itself will charge
        whichever probe is due.
        """
        for index, endpoint in enumerate(self.endpoints):
            if self._eligible(endpoint):
                if endpoint in self.local_endpoints:
                    self.local_calls += 1
                else:
                    self.cross_region_calls += 1
                return index
        return super()._start_index()

    def region_of(self, endpoint: str) -> str:
        return self.endpoint_regions.get(endpoint, "")
