"""The replication SOAP header: which region is talking, and how far along.

Every anti-entropy exchange and context-replication call is stamped with a
``Replica`` header entry (namespace ``urn:gce:replication``) naming the
sending region and carrying its version vector — a compact
``region:counter`` summary of everything that region has seen.  The
receiving service uses the vector to measure replication lag without an
extra round trip, and operators see the header in traces when debugging a
partition.

Like the other infrastructure headers, malformed values are ignored rather
than faulted — replication metadata must never break a call.
"""

from __future__ import annotations

from repro.headers import register_header
from repro.xmlutil.element import XmlElement
from repro.xmlutil.qname import QName

REPLICATION_NS = "urn:gce:replication"

#: the SOAP header entry naming the sending region and its version vector
REPLICA_HEADER = QName(REPLICATION_NS, "Replica")
register_header(
    REPLICA_HEADER,
    description="sending region and version vector for replication calls",
    module=__name__,
)


def encode_vector(vector: dict[str, int]) -> str:
    """Canonical wire form of a version vector: ``iu:3,sdsc:5`` (sorted)."""
    return ",".join(f"{region}:{counter}" for region, counter in sorted(vector.items()))


def decode_vector(raw: str) -> dict[str, int]:
    """Parse :func:`encode_vector` output; malformed parts are skipped."""
    vector: dict[str, int] = {}
    for part in raw.split(","):
        region, _, counter = part.partition(":")
        if not region or not counter:
            continue
        try:
            vector[region.strip()] = int(counter)
        except (TypeError, ValueError):
            continue
    return vector


def replica_header(region: str, vector: dict[str, int] | None = None) -> XmlElement:
    """Encode the sending *region* (and its version vector) as a header entry."""
    entry = XmlElement(REPLICA_HEADER, text=region)
    if vector:
        entry.set("vector", encode_vector(vector))
    return entry


def replica_from_headers(
    headers: list[XmlElement],
) -> tuple[str | None, dict[str, int]]:
    """Decode ``(region, version_vector)`` from request headers.

    Returns ``(None, {})`` when absent; a present header with a malformed
    vector still yields the region.
    """
    for entry in headers:
        if entry.tag == REPLICA_HEADER:
            region = (entry.text or "").strip() or None
            raw = entry.get("vector")
            return region, decode_vector(raw) if raw else {}
    return None, {}
