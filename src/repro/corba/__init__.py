"""A miniature CORBA ORB and the legacy WebFlow system.

§3.1: "The IU team implemented the SOAP job submission service as a wrapper
around a client for the 'legacy' CORBA-based WebFlow system.  This involved
implementing a set of utility methods for initializing the client ORB, which
we used to bridge between SOAP and IIOP."

To reproduce that bridge faithfully there has to be a CORBA system to
bridge *to*, so this package provides one:

- :mod:`repro.corba.cdr` — CDR-style binary marshalling of basic types.
- :mod:`repro.corba.orb` — an ORB: servant activation, IOR stringification,
  an IIOP-like endpoint on the virtual network, and dynamic client stubs.
- :mod:`repro.corba.webflow` — the WebFlow server: a CORBA servant offering
  context-scoped job management over the simulated grid.
"""

from repro.corba.cdr import CdrError, marshal, unmarshal
from repro.corba.orb import (
    CorbaSystemException,
    CorbaUserException,
    Orb,
    RemoteStub,
)
from repro.corba.webflow import WebFlowServant, deploy_webflow

__all__ = [
    "CdrError",
    "marshal",
    "unmarshal",
    "CorbaSystemException",
    "CorbaUserException",
    "Orb",
    "RemoteStub",
    "WebFlowServant",
    "deploy_webflow",
]
