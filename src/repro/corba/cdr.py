"""CDR-style binary marshalling.

A compact tagged big-endian encoding of the CORBA basic types the WebFlow
interface uses: null, boolean, long, double, string, sequence, and struct
(string-keyed).  Not the real CDR alignment rules — but a genuine binary
format with the property the ORB needs: ``unmarshal(marshal(x)) == x``.
"""

from __future__ import annotations

import struct
from typing import Any

_TAG_NULL = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_LONG = 3
_TAG_DOUBLE = 4
_TAG_STRING = 5
_TAG_SEQUENCE = 6
_TAG_STRUCT = 7


class CdrError(ValueError):
    """Raised on unmarshallable bytes or unsupported values."""


def marshal(value: Any) -> bytes:
    """Encode a value into CDR bytes."""
    out = bytearray()
    _encode(out, value)
    return bytes(out)


def _encode(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_TAG_NULL)
    elif isinstance(value, bool):
        out.append(_TAG_TRUE if value else _TAG_FALSE)
    elif isinstance(value, int):
        out.append(_TAG_LONG)
        out.extend(struct.pack(">q", value))
    elif isinstance(value, float):
        out.append(_TAG_DOUBLE)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_TAG_STRING)
        out.extend(struct.pack(">I", len(data)))
        out.extend(data)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_SEQUENCE)
        out.extend(struct.pack(">I", len(value)))
        for item in value:
            _encode(out, item)
    elif isinstance(value, dict):
        out.append(_TAG_STRUCT)
        out.extend(struct.pack(">I", len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise CdrError(f"struct keys must be strings, got {key!r}")
            data = key.encode("utf-8")
            out.extend(struct.pack(">I", len(data)))
            out.extend(data)
            _encode(out, item)
    else:
        raise CdrError(f"cannot marshal {type(value).__name__}")


def unmarshal(data: bytes) -> Any:
    """Decode CDR bytes back into a value."""
    value, offset = _decode(data, 0)
    if offset != len(data):
        raise CdrError(f"{len(data) - offset} trailing bytes after value")
    return value


def _decode(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise CdrError("truncated CDR stream")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_LONG:
        _need(data, offset, 8)
        return struct.unpack_from(">q", data, offset)[0], offset + 8
    if tag == _TAG_DOUBLE:
        _need(data, offset, 8)
        return struct.unpack_from(">d", data, offset)[0], offset + 8
    if tag == _TAG_STRING:
        _need(data, offset, 4)
        length = struct.unpack_from(">I", data, offset)[0]
        offset += 4
        _need(data, offset, length)
        return data[offset:offset + length].decode("utf-8"), offset + length
    if tag == _TAG_SEQUENCE:
        _need(data, offset, 4)
        count = struct.unpack_from(">I", data, offset)[0]
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode(data, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_STRUCT:
        _need(data, offset, 4)
        count = struct.unpack_from(">I", data, offset)[0]
        offset += 4
        record: dict[str, Any] = {}
        for _ in range(count):
            _need(data, offset, 4)
            key_len = struct.unpack_from(">I", data, offset)[0]
            offset += 4
            _need(data, offset, key_len)
            key = data[offset:offset + key_len].decode("utf-8")
            offset += key_len
            record[key], offset = _decode(data, offset)
        return record, offset
    raise CdrError(f"unknown CDR tag {tag}")


def _need(data: bytes, offset: int, count: int) -> None:
    if offset + count > len(data):
        raise CdrError("truncated CDR stream")
