"""The miniature ORB: servant activation, IORs, IIOP endpoint, stubs."""

from __future__ import annotations

import base64
import itertools
from typing import Any

from repro.corba.cdr import CdrError, marshal, unmarshal
from repro.transport.client import HttpClient
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer


class CorbaSystemException(RuntimeError):
    """ORB-level failure: bad IOR, unknown object, marshalling error."""


class CorbaUserException(RuntimeError):
    """An exception raised by the servant and relayed to the client."""

    def __init__(self, exc_type: str, message: str):
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type
        self.exc_message = message


class Orb:
    """One Object Request Broker instance (one per host, typically).

    Server side: ``activate(servant, name)`` registers a servant and
    returns its stringified IOR; the IIOP endpoint is mounted on the given
    HTTP server under ``/iiop``.  Client side: ``string_to_object(ior)``
    returns a :class:`RemoteStub` whose attribute calls marshal through CDR
    and travel the virtual network.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        *,
        host: str = "",
        server: HttpServer | None = None,
    ):
        self.network = network
        self.host = host or (server.host if server else "orb-client")
        self._servants: dict[str, Any] = {}
        self._keys = itertools.count(1)
        self._http = HttpClient(network, self.host)
        if server is not None:
            server.mount("/iiop", self._handle_iiop)
        self.requests_served = 0

    # -- server side -------------------------------------------------------------

    def activate(self, servant: Any, interface: str) -> str:
        """Register a servant; returns its stringified IOR."""
        key = f"obj{next(self._keys):04d}"
        self._servants[key] = servant
        return f"IOR:{self.host}/{key}#{interface}"

    def deactivate(self, ior: str) -> None:
        _host, key, _iface = _parse_ior(ior)
        self._servants.pop(key, None)

    def _handle_iiop(self, request: HttpRequest) -> HttpResponse:
        try:
            payload = unmarshal(base64.b64decode(request.body))
            key = payload["object"]
            operation = payload["operation"]
            args = payload["args"]
        except (CdrError, KeyError, ValueError) as exc:
            return _iiop_reply({"status": "system", "message": f"bad request: {exc}"})
        servant = self._servants.get(key)
        if servant is None:
            return _iiop_reply(
                {"status": "system", "message": f"no object with key {key!r}"}
            )
        method = getattr(servant, operation, None)
        if method is None or operation.startswith("_") or not callable(method):
            return _iiop_reply(
                {"status": "system", "message": f"no operation {operation!r}"}
            )
        try:
            result = method(*args)
        except Exception as exc:  # noqa: BLE001 - servant boundary
            return _iiop_reply(
                {
                    "status": "user",
                    "exc_type": type(exc).__name__,
                    "message": str(exc),
                }
            )
        self.requests_served += 1
        try:
            return _iiop_reply({"status": "ok", "result": result})
        except CdrError as exc:
            return _iiop_reply(
                {"status": "system", "message": f"unmarshallable result: {exc}"}
            )

    # -- client side ---------------------------------------------------------------

    def string_to_object(self, ior: str) -> "RemoteStub":
        host, key, interface = _parse_ior(ior)
        return RemoteStub(self, host, key, interface)

    def invoke(self, host: str, key: str, operation: str, args: list[Any]) -> Any:
        body = base64.b64encode(
            marshal({"object": key, "operation": operation, "args": list(args)})
        ).decode("ascii")
        response = self._http.post(f"http://{host}/iiop", body)
        if not response.ok:
            raise CorbaSystemException(f"IIOP transport error: HTTP {response.status}")
        reply = unmarshal(base64.b64decode(response.body))
        status = reply.get("status")
        if status == "ok":
            return reply.get("result")
        if status == "user":
            raise CorbaUserException(reply.get("exc_type", "?"), reply.get("message", ""))
        raise CorbaSystemException(reply.get("message", "unknown ORB failure"))


class RemoteStub:
    """A dynamic client stub for one remote CORBA object."""

    def __init__(self, orb: Orb, host: str, key: str, interface: str):
        self._orb = orb
        self._host = host
        self._key = key
        self.interface = interface

    def __getattr__(self, operation: str):
        if operation.startswith("_"):
            raise AttributeError(operation)

        def invoke(*args: Any) -> Any:
            return self._orb.invoke(self._host, self._key, operation, list(args))

        invoke.__name__ = operation
        return invoke

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RemoteStub {self.interface} at {self._host}/{self._key}>"


def _parse_ior(ior: str) -> tuple[str, str, str]:
    # CORBA system exceptions are the CORBA protocol's own error
    # vocabulary (the paper's CORBA/SOAP bridge keeps the two distinct);
    # the bridge maps them at its boundary, so they stay unclassified here
    if not ior.startswith("IOR:"):
        raise CorbaSystemException(f"not a stringified IOR: {ior[:30]!r}")  # repro: ignore[REP901]
    body = ior[4:]
    address, _, interface = body.partition("#")
    host, _, key = address.partition("/")
    if not host or not key:
        raise CorbaSystemException(f"malformed IOR: {ior!r}")  # repro: ignore[REP901]
    return host, key, interface


def _iiop_reply(payload: dict[str, Any]) -> HttpResponse:
    return HttpResponse(
        200, body=base64.b64encode(marshal(payload)).decode("ascii")
    )
