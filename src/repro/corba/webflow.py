"""The legacy WebFlow system: a CORBA servant for context-scoped jobs.

Gateway "performs job submission by direct submittal to queuing systems"
through its CORBA-based WebFlow middle tier.  The servant here offers the
interface the IU SOAP wrapper in :mod:`repro.services.jobsubmit` bridges to:
hierarchical user/problem/session contexts, and job submission *directly* to
batch schedulers (no Globus in this path — that is the point of the
IU/SDSC contrast in §3.1).
"""

from __future__ import annotations

import itertools

from repro.faults import ContextError, ResourceNotFoundError
from repro.grid.queuing.base import BatchScheduler
from repro.corba.orb import Orb
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer


class WebFlowServant:
    """The WebFlow job-management servant.

    Contexts form a slash-separated hierarchy (user/problem/session); every
    job is submitted within a context and is listed by it.
    """

    def __init__(self, schedulers: dict[str, BatchScheduler]):
        self._schedulers = dict(schedulers)
        self._contexts: dict[str, list[str]] = {"": []}
        self._jobs: dict[str, tuple[str, str]] = {}  # handle -> (host, job id)
        self._handles = itertools.count(1)

    # -- contexts ------------------------------------------------------------

    def addContext(self, path: str) -> str:
        path = path.strip("/")
        if not path:
            raise ContextError("context path must be non-empty")
        parts = path.split("/")
        for i in range(1, len(parts) + 1):
            self._contexts.setdefault("/".join(parts[:i]), [])
        return path

    def removeContext(self, path: str) -> bool:
        path = path.strip("/")
        removed = False
        for existing in list(self._contexts):
            if existing == path or existing.startswith(path + "/"):
                del self._contexts[existing]
                removed = True
        if not removed:
            raise ContextError(f"no context {path!r}")
        return True

    def listContexts(self, path: str) -> list[str]:
        path = path.strip("/")
        prefix = path + "/" if path else ""
        return sorted(
            ctx[len(prefix):]
            for ctx in self._contexts
            if ctx and ctx.startswith(prefix) and "/" not in ctx[len(prefix):]
        )

    def hasContext(self, path: str) -> bool:
        return path.strip("/") in self._contexts

    # -- jobs ------------------------------------------------------------------

    def _context_jobs(self, context: str) -> list[str]:
        context = context.strip("/")
        if context not in self._contexts:
            raise ContextError(f"no context {context!r}", {"context": context})
        return self._contexts[context]

    def _scheduler(self, host: str) -> BatchScheduler:
        scheduler = self._schedulers.get(host)
        if scheduler is None:
            raise ResourceNotFoundError(
                f"WebFlow knows no backend host {host!r}", {"host": host}
            )
        return scheduler

    def submitJob(self, context: str, host: str, script: str) -> str:
        """Submit a batch script (in the host's own dialect) directly to the
        host's queuing system; returns a WebFlow job handle."""
        jobs = self._context_jobs(context)
        scheduler = self._scheduler(host)
        job_id = scheduler.submit_script(script)
        handle = f"wf-{next(self._handles):06d}"
        self._jobs[handle] = (host, job_id)
        jobs.append(handle)
        return handle

    def _record(self, handle: str):
        if handle not in self._jobs:
            raise ResourceNotFoundError(f"no WebFlow job {handle!r}")
        host, job_id = self._jobs[handle]
        return self._scheduler(host).job(job_id)

    def getJobStatus(self, handle: str) -> str:
        return self._record(handle).state.value

    def getJobOutput(self, handle: str) -> str:
        return self._record(handle).stdout

    def getJobError(self, handle: str) -> str:
        return self._record(handle).stderr

    def cancelJob(self, handle: str) -> bool:
        if handle not in self._jobs:
            raise ResourceNotFoundError(f"no WebFlow job {handle!r}")
        host, job_id = self._jobs[handle]
        self._scheduler(host).cancel(job_id)
        return True

    def listJobs(self, context: str) -> list[str]:
        return list(self._context_jobs(context))

    def backendHosts(self) -> list[str]:
        return sorted(self._schedulers)


def deploy_webflow(
    network: VirtualNetwork,
    schedulers: dict[str, BatchScheduler],
    host: str = "webflow.iu.edu",
) -> tuple[WebFlowServant, str, Orb]:
    """Stand up a WebFlow server; returns (servant, IOR, server ORB)."""
    server = HttpServer(host, network)
    orb = Orb(network, server=server)
    servant = WebFlowServant(schedulers)
    ior = orb.activate(servant, "WebFlow::JobManager")
    return servant, ior, orb
