"""Generated descriptor bindings and the application lifecycle."""

from __future__ import annotations

import itertools
from functools import lru_cache

from repro.faults import InvalidRequestError
from repro.appws.schemas import combined_schema, instance_schema
from repro.xmlutil.binding import BoundObject, bind_schema

#: §5.1's four phases plus the proposed refinements of "running".
LIFECYCLE_STATES = (
    "abstract",
    "prepared",
    "queued",
    "running",
    "sleeping",
    "terminating",
    "archived",
    "failed",
)

#: legal state transitions (the crucial distinction is abstract -> the rest)
_TRANSITIONS: dict[str, tuple[str, ...]] = {
    "abstract": ("prepared",),
    "prepared": ("queued", "failed"),
    "queued": ("running", "failed", "terminating"),
    "running": ("sleeping", "terminating", "archived", "failed"),
    "sleeping": ("running", "terminating", "failed"),
    "terminating": ("archived", "failed"),
    "archived": (),
    "failed": (),
}


@lru_cache(maxsize=1)
def descriptor_classes() -> dict[str, type[BoundObject]]:
    """Binding classes for the abstract descriptor schemas (the "Castor
    source generator" output for application/host/queue)."""
    return bind_schema(combined_schema())


@lru_cache(maxsize=1)
def instance_classes() -> dict[str, type[BoundObject]]:
    """Binding classes for the application-instance schema."""
    return bind_schema(instance_schema())


_instance_ids = itertools.count(1)


class ApplicationLifecycle:
    """Drives an application instance through §5.1's states.

    Wraps an ``ApplicationInstance`` bound object; every transition is
    checked against the legal state machine, and the wrapped instance can be
    marshalled at any point for session archiving.
    """

    def __init__(self, application_name: str, version: str = ""):
        cls = instance_classes()["ApplicationInstance"]
        self.instance = cls(
            application_name=application_name,
            state="abstract",
            id=f"inst-{next(_instance_ids):08d}",
        )
        if version:
            self.instance.version = version

    @classmethod
    def from_instance(cls, instance: BoundObject) -> "ApplicationLifecycle":
        obj = cls.__new__(cls)
        obj.instance = instance
        return obj

    @property
    def state(self) -> str:
        return self.instance.state

    @property
    def instance_id(self) -> str:
        return self.instance.id

    def transition(self, new_state: str) -> str:
        """Move to *new_state*; raises on an illegal transition."""
        if new_state not in LIFECYCLE_STATES:
            raise InvalidRequestError(f"unknown lifecycle state {new_state!r}")
        allowed = _TRANSITIONS[self.state]
        if new_state not in allowed:
            raise InvalidRequestError(
                f"illegal transition {self.state!r} -> {new_state!r}; "
                f"allowed: {list(allowed)}",
                {"from": self.state, "to": new_state},
            )
        self.instance.state = new_state
        return new_state

    # -- convenience steps matching the service flow ---------------------------

    def prepare(self, *, host: str, queue: str = "",
                parameters: dict[str, str] | None = None) -> None:
        """(a) abstract -> (b) prepared: the user's choices are recorded."""
        self.transition("prepared")
        self.instance.host = host
        if queue:
            self.instance.queue = queue
        param_cls = instance_classes()["Parameter"]
        for name, value in (parameters or {}).items():
            self.instance.add_parameter(param_cls(name=name, value=value))

    def submitted(self, job_id: str, at: float) -> None:
        self.transition("queued")
        self.instance.job_id = job_id
        self.instance.submitted = at

    def running(self) -> None:
        self.transition("running")

    def archive(self, *, output_location: str, at: float) -> None:
        """-> (d) archived: the completed run's metadata is final."""
        if self.state in ("queued", "sleeping"):
            self.transition("running")
        self.transition("archived")
        self.instance.output_location = output_location
        self.instance.completed = at

    def fail(self) -> None:
        self.transition("failed")

    def marshal(self) -> str:
        return self.instance.to_xml("applicationInstance").serialize()
