"""The application / host / queue descriptor schemas and the instance schema.

§5.1: "The abstract application description is implemented as a set of three
schemas: application, host, and queue.  These are implemented in a container
hierarchy, with applications containing one or more hosts, and hosts
containing queuing system descriptions."

Each schema is built programmatically with the SOM and serializes to a real
XSD document (the paper published theirs at a URL; ours are published on
the virtual network by :mod:`repro.appws.service`).  The instance schema
mirrors §5.1's second set: "Instances of these schemas are used instead to
contain the metadata about particular application runs: the input files
used, the location of the output, the resources used for the computation."
"""

from __future__ import annotations

from repro.xmlutil.schema import (
    UNBOUNDED,
    BuiltinType,
    XsdAttribute,
    XsdComplexType,
    XsdElement,
    XsdSchema,
    XsdSimpleType,
)

APPLICATION_NS = "urn:gce:schema:application"
HOST_NS = "urn:gce:schema:host"
QUEUE_NS = "urn:gce:schema:queue"
INSTANCE_NS = "urn:gce:schema:application-instance"


def _parameter_type() -> XsdComplexType:
    """The general-purpose name/value parameter element: "a general purpose
    'parameter' element that allows for arbitrary name-value pairs"."""
    return XsdComplexType(
        "Parameter",
        attributes=[
            XsdAttribute("name", BuiltinType.STRING, required=True),
            XsdAttribute("value", BuiltinType.STRING, required=True),
        ],
        documentation="Arbitrary name-value pair.",
    )


def queue_schema() -> XsdSchema:
    """The queue description schema (innermost container)."""
    schema = XsdSchema(target_namespace=QUEUE_NS)
    schema.add_simple_type(
        XsdSimpleType(
            "QueuingSystem",
            enumeration=["PBS", "LSF", "NQS", "GRD"],
            documentation="Supported batch queuing systems.",
        )
    )
    schema.add_complex_type(
        XsdComplexType(
            "Queue",
            sequence=[
                XsdElement("queuingSystem", "QueuingSystem",
                           documentation="The batch system managing this queue."),
                XsdElement("queueName", BuiltinType.STRING,
                           documentation="The queue to submit into."),
                XsdElement("maxWallTime", BuiltinType.DOUBLE, min_occurs=0,
                           default="86400",
                           documentation="Queue wallclock limit in seconds."),
                XsdElement("maxCpus", BuiltinType.INT, min_occurs=0,
                           default="1024",
                           documentation="Maximum processors per job."),
            ],
            documentation="Information needed to perform queue submissions.",
        )
    )
    schema.add_element(XsdElement("queue", "Queue"))
    return schema.resolve()


def host_schema() -> XsdSchema:
    """The host binding schema (middle container)."""
    schema = XsdSchema(target_namespace=HOST_NS)
    for stype in queue_schema().simple_types.values():
        schema.add_simple_type(stype)
    for ctype in queue_schema().complex_types.values():
        schema.add_complex_type(ctype)
    schema.add_complex_type(_parameter_type())
    schema.add_complex_type(
        XsdComplexType(
            "Host",
            sequence=[
                XsdElement("dnsName", BuiltinType.STRING,
                           documentation="Fully qualified resource name."),
                XsdElement("ipAddress", BuiltinType.STRING, min_occurs=0,
                           documentation="Dotted-quad address, if fixed."),
                XsdElement("executablePath", BuiltinType.STRING,
                           documentation="Location of the executable on this host."),
                XsdElement("workspaceDirectory", BuiltinType.STRING, min_occurs=0,
                           documentation="Scratch/workspace directory."),
                XsdElement("parameter", "Parameter", min_occurs=0,
                           max_occurs=UNBOUNDED,
                           documentation="Host-specific settings, e.g. environment variables."),
                XsdElement("queue", "Queue", min_occurs=0, max_occurs=UNBOUNDED,
                           documentation="Queues available on this host."),
            ],
            documentation=(
                "All of the information needed to invoke the parent "
                "application on one resource."
            ),
        )
    )
    schema.add_element(XsdElement("host", "Host"))
    return schema.resolve()


def application_schema() -> XsdSchema:
    """The abstract application description schema (outer container)."""
    schema = XsdSchema(target_namespace=APPLICATION_NS)
    host = host_schema()
    for stype in host.simple_types.values():
        schema.add_simple_type(stype)
    for ctype in host.complex_types.values():
        schema.add_complex_type(ctype)

    schema.add_simple_type(
        XsdSimpleType(
            "CoreServiceKind",
            enumeration=[
                "job-submission",
                "batch-script-generation",
                "file-transfer",
                "context-management",
                "monitoring",
            ],
            documentation="The core portal services an application may bind.",
        )
    )
    schema.add_complex_type(
        XsdComplexType(
            "ServiceBinding",
            sequence=[
                XsdElement("service", "CoreServiceKind",
                           documentation="Which core service this binding names."),
                XsdElement("endpoint", BuiltinType.ANYURI, min_occurs=0,
                           documentation="Concrete SOAP endpoint, when bound."),
                XsdElement("hostRef", BuiltinType.STRING, min_occurs=0,
                           documentation="dnsName of the host this binding applies to."),
            ],
            documentation="A required core service and its (optional) binding.",
        )
    )
    schema.add_complex_type(
        XsdComplexType(
            "BasicInformation",
            sequence=[
                XsdElement("name", BuiltinType.STRING,
                           documentation="Application name, e.g. Gaussian."),
                XsdElement("version", BuiltinType.STRING, min_occurs=0,
                           documentation="Code version string."),
                XsdElement("optionFlag", BuiltinType.STRING, min_occurs=0,
                           max_occurs=UNBOUNDED,
                           documentation="Invocation option flags."),
                XsdElement("description", BuiltinType.STRING, min_occurs=0,
                           documentation="Human-readable summary."),
            ],
            documentation="Application name, version, and option flags.",
        )
    )
    schema.add_complex_type(
        XsdComplexType(
            "IoField",
            sequence=[
                XsdElement("label", BuiltinType.STRING,
                           documentation="Display label for the field."),
                XsdElement("description", BuiltinType.STRING, min_occurs=0),
                XsdElement("fieldType", XsdSimpleType(
                    "", enumeration=["file", "string", "integer", "float"]),
                    documentation="How the user interface should render it."),
                XsdElement("transport", "ServiceBinding", min_occurs=0,
                           documentation="Core service needed to read or write the field."),
            ],
            attributes=[XsdAttribute("name", BuiltinType.STRING, required=True)],
            documentation="One input, output, or error field of the code.",
        )
    )
    schema.add_complex_type(
        XsdComplexType(
            "InternalCommunication",
            sequence=[
                XsdElement("input", "IoField", min_occurs=0, max_occurs=UNBOUNDED),
                XsdElement("output", "IoField", min_occurs=0, max_occurs=UNBOUNDED),
                XsdElement("error", "IoField", min_occurs=0, max_occurs=UNBOUNDED),
            ],
            documentation="Input, output, and error fields for the code.",
        )
    )
    schema.add_complex_type(
        XsdComplexType(
            "ExecutionEnvironment",
            sequence=[
                XsdElement("service", "ServiceBinding", min_occurs=0,
                           max_occurs=UNBOUNDED,
                           documentation="Core services needed to execute the application."),
            ],
            documentation=(
                "The list of core services needed to execute the "
                "application, with host bindings."
            ),
        )
    )
    schema.add_complex_type(
        XsdComplexType(
            "Application",
            sequence=[
                XsdElement("basicInformation", "BasicInformation"),
                XsdElement("internalCommunication", "InternalCommunication",
                           min_occurs=0),
                XsdElement("executionEnvironment", "ExecutionEnvironment",
                           min_occurs=0),
                XsdElement("parameter", "Parameter", min_occurs=0,
                           max_occurs=UNBOUNDED,
                           documentation="Arbitrary information not covered above."),
                XsdElement("host", "Host", min_occurs=0, max_occurs=UNBOUNDED,
                           documentation="Hosts this application is deployed on."),
            ],
            documentation="The portal-independent abstract application description.",
        )
    )
    schema.add_element(XsdElement("application", "Application"))
    return schema.resolve()


def instance_schema() -> XsdSchema:
    """The application-instance schema (states (b)-(d): prepared, running,
    archived) — the backbone of the session archiving system."""
    schema = XsdSchema(target_namespace=INSTANCE_NS)
    schema.add_complex_type(_parameter_type())
    schema.add_simple_type(
        XsdSimpleType(
            "LifecycleState",
            enumeration=[
                "abstract",
                "prepared",
                "queued",
                "running",
                "sleeping",
                "terminating",
                "archived",
                "failed",
            ],
            documentation="§5.1's application lifecycle states (with the "
                          "proposed refinements of 'running').",
        )
    )
    schema.add_complex_type(
        XsdComplexType(
            "ApplicationInstance",
            sequence=[
                XsdElement("applicationName", BuiltinType.STRING),
                XsdElement("version", BuiltinType.STRING, min_occurs=0),
                XsdElement("state", "LifecycleState"),
                XsdElement("host", BuiltinType.STRING, min_occurs=0,
                           documentation="The resource chosen for the run."),
                XsdElement("queue", BuiltinType.STRING, min_occurs=0),
                XsdElement("inputFile", BuiltinType.STRING, min_occurs=0,
                           max_occurs=UNBOUNDED,
                           documentation="SRB paths of the input files used."),
                XsdElement("outputLocation", BuiltinType.STRING, min_occurs=0,
                           documentation="Where the run's output lives."),
                XsdElement("jobId", BuiltinType.STRING, min_occurs=0),
                XsdElement("submitted", BuiltinType.DOUBLE, min_occurs=0),
                XsdElement("completed", BuiltinType.DOUBLE, min_occurs=0),
                XsdElement("parameter", "Parameter", min_occurs=0,
                           max_occurs=UNBOUNDED,
                           documentation="The user's specific choices."),
            ],
            attributes=[XsdAttribute("id", BuiltinType.STRING, required=True)],
            documentation="Metadata about one particular application run.",
        )
    )
    schema.add_element(XsdElement("applicationInstance", "ApplicationInstance"))
    return schema.resolve()


def combined_schema() -> XsdSchema:
    """All descriptor types in one schema (convenient for binding and for
    the schema wizard, which needs the full container hierarchy)."""
    schema = XsdSchema(target_namespace=APPLICATION_NS)
    for source in (application_schema(), host_schema(), queue_schema(), instance_schema()):
        for name, stype in source.simple_types.items():
            schema.simple_types.setdefault(name, stype)
        for name, ctype in source.complex_types.items():
            schema.complex_types.setdefault(name, ctype)
        for element in source.elements:
            if schema.find_element(element.name) is None:
                schema.add_element(element)
    return schema.resolve()
