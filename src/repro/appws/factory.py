"""Application factory services.

§6: "These services may be bound to specific resources through a factory
creation process, such as discussed in Ref. [37]" (Gannon et al., "Grid Web
Services and Application Factories").  The factory pattern: instead of one
shared application service, a client asks a *factory* to instantiate a
private, resource-bound service instance, receives that instance's own
endpoint, and talks to it directly — per-instance state without a central
session table.

:class:`ApplicationFactoryService` creates such instances for applications
in a catalogue: each instance is a small SOAP service (configure / run /
status / output / destroy) mounted at its own path on the factory host,
pre-bound to one application on one compute resource.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.faults import InvalidRequestError, ResourceNotFoundError
from repro.appws.adapter import ApplicationAdapter
from repro.appws.descriptors import ApplicationLifecycle
from repro.services.jobsubmit import GLOBUSRUN_NAMESPACE
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer

FACTORY_NAMESPACE = "urn:gce:application-factory"
INSTANCE_NAMESPACE = "urn:gce:application-instance-service"


class ApplicationInstanceService:
    """One factory-created instance: a private service bound to one
    application on one resource."""

    def __init__(
        self,
        factory: "ApplicationFactoryService",
        instance_id: str,
        app: ApplicationAdapter,
        host: str,
    ):
        self.factory = factory
        self.instance_id = instance_id
        self.app = app
        self.host = host
        self.lifecycle = ApplicationLifecycle(app.name, app.version)
        self._output = ""
        self._configured: dict[str, str] = {}

    # -- the instance's own interface -------------------------------------------

    def configure(self, choices: dict[str, Any]) -> str:
        """Fix the run's parameters; abstract -> prepared."""
        known = {f.name for f in self.app.input_fields()}
        unknown = set(choices) - known
        if unknown:
            raise InvalidRequestError(
                f"choices {sorted(unknown)} are not inputs of {self.app.name!r}"
            )
        self._configured = {k: str(v) for k, v in choices.items()}
        host_binding = self.app.host_named(self.host)
        queues = list(host_binding.queue)
        self.lifecycle.prepare(
            host=self.host,
            queue=queues[0].queue_name if queues else "",
            parameters=self._configured,
        )
        return self.lifecycle.state

    def run(self) -> str:
        """Execute on the bound resource through the Globusrun service."""
        if self.lifecycle.state != "prepared":
            raise InvalidRequestError(
                f"instance is {self.lifecycle.state!r}; configure it first"
            )
        host_binding = self.app.host_named(self.host)
        arguments = " ".join(
            self._configured[f.name]
            for f in self.app.input_fields()
            if f.name in self._configured
        )
        self.lifecycle.submitted(job_id="", at=self.factory.clock.now)
        try:
            self._output = self.factory.globusrun.call(
                "run", self.host, host_binding.executable_path, arguments,
                int(self._configured.get("cpus", "1") or 1),
                self.lifecycle.instance.queue or "", 86400,
            )
        except Exception:
            self.lifecycle.fail()
            raise
        self.lifecycle.archive(
            output_location=f"factory:{self.instance_id}", at=self.factory.clock.now
        )
        return self.lifecycle.state

    def status(self) -> str:
        return self.lifecycle.state

    def output(self) -> str:
        if not self._output:
            raise ResourceNotFoundError("instance has produced no output yet")
        return self._output

    def describe(self) -> dict[str, Any]:
        return {
            "instance": self.instance_id,
            "application": self.app.name,
            "host": self.host,
            "state": self.lifecycle.state,
            "choices": dict(self._configured),
        }

    def destroy(self) -> bool:
        """Unmount this instance's endpoint and forget it."""
        return self.factory._destroy(self.instance_id)


class ApplicationFactoryService:
    """The factory: ``create(application, host)`` returns a fresh instance
    endpoint bound to that application on that resource."""

    def __init__(
        self,
        network: VirtualNetwork,
        catalog: dict[str, ApplicationAdapter],
        globusrun_endpoint: str,
        *,
        host: str = "factory.gridportal.org",
    ):
        self.network = network
        self.clock = network.clock
        self.catalog = dict(catalog)
        self.host = host
        self.server = HttpServer(host, network)
        self.globusrun = SoapClient(
            network, globusrun_endpoint, GLOBUSRUN_NAMESPACE, source=host
        )
        self._ids = itertools.count(1)
        self._instances: dict[str, ApplicationInstanceService] = {}
        self.instances_created = 0

    # -- the factory interface ----------------------------------------------------

    def list_applications(self) -> list[str]:
        return sorted(self.catalog)

    def create(self, application: str, host: str) -> str:
        """Instantiate a resource-bound service; returns its endpoint URL."""
        app = self.catalog.get(application)
        if app is None:
            raise ResourceNotFoundError(
                f"factory knows no application {application!r}"
            )
        app.host_named(host)  # validates the binding exists
        instance_id = f"appinst-{next(self._ids):06d}"
        instance = ApplicationInstanceService(self, instance_id, app, host)
        self._instances[instance_id] = instance

        soap = SoapService(instance_id, INSTANCE_NAMESPACE)
        soap.expose(instance.configure)
        soap.expose(instance.run)
        soap.expose(instance.status)
        soap.expose(instance.output)
        soap.expose(instance.describe)
        soap.expose(instance.destroy)
        endpoint = soap.mount(self.server, f"/instances/{instance_id}")
        self.instances_created += 1
        return endpoint

    def active_instances(self) -> list[str]:
        return sorted(self._instances)

    def _destroy(self, instance_id: str) -> bool:
        if instance_id not in self._instances:
            return False
        del self._instances[instance_id]
        self.server.unmount(f"/instances/{instance_id}")
        return True


def deploy_factory(
    network: VirtualNetwork,
    catalog: dict[str, ApplicationAdapter],
    globusrun_endpoint: str,
    host: str = "factory.gridportal.org",
) -> tuple[ApplicationFactoryService, str]:
    """Stand up a factory; returns (factory, factory endpoint URL)."""
    factory = ApplicationFactoryService(
        network, catalog, globusrun_endpoint, host=host
    )
    soap = SoapService("ApplicationFactory", FACTORY_NAMESPACE)
    soap.expose(factory.list_applications)
    soap.expose(factory.create)
    soap.expose(factory.active_instances)
    endpoint = soap.mount(factory.server, "/factory")
    return factory, endpoint
