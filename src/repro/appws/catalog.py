"""Ready-made application descriptors for the simulated science codes.

§5's motivating example is "the application description for the chemistry
code Gaussian ... can be standard across portals"; this module builds that
descriptor (and two more) against the simulated grid's application registry
(:mod:`repro.grid.apps`), with host/queue bindings matching the default
testbed.
"""

from __future__ import annotations

from repro.appws.adapter import ApplicationAdapter


def gaussian_descriptor(endpoints: dict[str, str] | None = None) -> ApplicationAdapter:
    """The chemistry code: runtime driven by the basis-set size."""
    app = ApplicationAdapter(
        name="Gaussian",
        version="98.A7",
        description="Ab initio electronic structure package.",
    )
    app.add_input_field("basisSize", "Basis set size", "integer",
                        "Number of basis functions (drives the runtime).")
    app.add_output_field("logFile", "SCF output log")
    app.add_host(
        "modi4.iu.edu", "/usr/local/apps/g98/g98",
        workspace="/scratch/gaussian",
        queues=[("PBS", "workq"), ("PBS", "express")],
        parameters={"GAUSS_SCRDIR": "/scratch/gaussian"},
    )
    app.add_host(
        "blue.sdsc.edu", "/paci/sdsc/apps/g98/g98",
        workspace="/gpfs/scratch",
        queues=[("LSF", "workq")],
    )
    app.set_parameter("discipline", "chemistry")
    _bind_services(app, endpoints)
    return app


def ansys_descriptor(endpoints: dict[str, str] | None = None) -> ApplicationAdapter:
    """The structural mechanics code."""
    app = ApplicationAdapter(
        name="ANSYS",
        version="5.7",
        description="Finite-element structural mechanics solver.",
    )
    app.add_input_field("elements", "Element count", "integer",
                        "Mesh size (drives the runtime).")
    app.add_input_field("meshFile", "Mesh file", "file",
                        "SRB path of the input mesh.")
    app.add_output_field("resultsFile", "Results database")
    app.add_host(
        "octopus.iu.edu", "/opt/ansys57/bin/ansys",
        queues=[("GRD", "workq")],
    )
    app.set_parameter("discipline", "structural-mechanics")
    _bind_services(app, endpoints)
    return app


def mm5_descriptor(endpoints: dict[str, str] | None = None) -> ApplicationAdapter:
    """The mesoscale weather model (a parallel code)."""
    app = ApplicationAdapter(
        name="MM5",
        version="3.5",
        description="PSU/NCAR mesoscale weather model.",
    )
    app.add_input_field("forecastHours", "Forecast hours", "integer")
    app.add_input_field("cpus", "Processors", "integer",
                        "MM5 scales with processor count.")
    app.add_output_field("forecast", "Forecast output")
    app.add_host(
        "blue.sdsc.edu", "/paci/sdsc/apps/mm5/mm5",
        queues=[("LSF", "workq")],
    )
    app.add_host(
        "t3e.sdsc.edu", "/usr/apps/mm5/mm5",
        queues=[("NQS", "workq")],
    )
    app.set_parameter("discipline", "atmospheric-science")
    _bind_services(app, endpoints)
    return app


def _bind_services(app: ApplicationAdapter, endpoints: dict[str, str] | None) -> None:
    """Record the core services the application needs, binding endpoints
    when the deployment provides them."""
    endpoints = endpoints or {}
    app.require_service(
        "batch-script-generation", endpoints.get("batch-script-generation", "")
    )
    app.require_service("job-submission", endpoints.get("job-submission", ""))
    app.require_service("file-transfer", endpoints.get("file-transfer", ""))
    app.require_service(
        "context-management", endpoints.get("context-management", "")
    )


def build_catalog(
    endpoints: dict[str, str] | None = None,
) -> dict[str, ApplicationAdapter]:
    """All stock descriptors, keyed by application name."""
    apps = [
        gaussian_descriptor(endpoints),
        ansys_descriptor(endpoints),
        mm5_descriptor(endpoints),
    ]
    return {app.name: app for app in apps}
