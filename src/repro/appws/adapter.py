"""Coarse-grained adapters over the generated descriptor bindings.

§5.2: "Converting all of the Castor methods to WSDL can be done but the
resulting interface is extremely complicated ... Instead we are building an
adapter class that encapsulates several Castor-generated get and set calls
into a smaller interface definition for common tasks."

Each adapter method below performs the multi-call sequences a prototype user
interface actually needs, so the SOAP layer exposes a handful of
coarse-grained operations instead of hundreds of getters and setters.
"""

from __future__ import annotations

from typing import Any

from repro.faults import InvalidRequestError, ResourceNotFoundError
from repro.appws.descriptors import descriptor_classes, instance_classes
from repro.xmlutil.binding import BoundObject


class ApplicationAdapter:
    """Common tasks over an abstract Application descriptor."""

    def __init__(self, application: BoundObject | None = None, *, name: str = "",
                 version: str = "", description: str = ""):
        classes = descriptor_classes()
        if application is not None:
            self.application = application
        else:
            if not name:
                raise InvalidRequestError("application name is required")
            info = classes["BasicInformation"](name=name)
            if version:
                info.version = version
            if description:
                info.description = description
            self.application = classes["Application"](basic_information=info)

    # -- reading ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.application.basic_information.name

    @property
    def version(self) -> str:
        return self.application.basic_information.version or ""

    def describe(self) -> dict[str, Any]:
        """The summary a portal listing page shows (several gets in one)."""
        info = self.application.basic_information
        return {
            "name": info.name,
            "version": info.version or "",
            "description": info.description or "",
            "hosts": [h.dns_name for h in self.application.host],
            "services": self.required_services(),
            "inputs": [f.name for f in self.input_fields()],
        }

    def hosts(self) -> list[BoundObject]:
        return list(self.application.host)

    def host_named(self, dns_name: str) -> BoundObject:
        for host in self.application.host:
            if host.dns_name == dns_name:
                return host
        raise ResourceNotFoundError(
            f"application {self.name!r} has no host {dns_name!r}",
            {"host": dns_name},
        )

    def queues_on(self, dns_name: str) -> list[BoundObject]:
        return list(self.host_named(dns_name).queue)

    def input_fields(self) -> list[BoundObject]:
        comm = self.application.internal_communication
        return list(comm.input) if comm is not None else []

    def output_fields(self) -> list[BoundObject]:
        comm = self.application.internal_communication
        return list(comm.output) if comm is not None else []

    def required_services(self) -> list[str]:
        env = self.application.execution_environment
        if env is None:
            return []
        return [binding.service for binding in env.service]

    def service_endpoint(self, kind: str, host: str = "") -> str:
        """The bound endpoint for a core service (host-specific bindings
        take precedence over generic ones)."""
        env = self.application.execution_environment
        if env is None:
            return ""
        generic = ""
        for binding in env.service:
            if binding.service != kind:
                continue
            if binding.host_ref == host and binding.endpoint:
                return binding.endpoint
            if not binding.host_ref and binding.endpoint:
                generic = binding.endpoint
        return generic

    def parameter(self, name: str, default: str = "") -> str:
        for param in self.application.parameter:
            if param.name == name:
                return param.value
        return default

    # -- editing (what the application developer does) ----------------------------------

    def add_host(
        self,
        dns_name: str,
        executable_path: str,
        *,
        workspace: str = "",
        queues: list[tuple[str, str]] | None = None,
        parameters: dict[str, str] | None = None,
    ) -> BoundObject:
        """Add a host binding with its queues in one call (wraps ~10 sets)."""
        classes = descriptor_classes()
        host = classes["Host"](dns_name=dns_name, executable_path=executable_path)
        if workspace:
            host.workspace_directory = workspace
        for system, queue_name in queues or []:
            host.add_queue(
                classes["Queue"](queuing_system=system, queue_name=queue_name)
            )
        for key, value in (parameters or {}).items():
            host.add_parameter(classes["Parameter"](name=key, value=value))
        self.application.add_host(host)
        return host

    def add_input_field(self, name: str, label: str, field_type: str = "string",
                        description: str = "") -> BoundObject:
        classes = descriptor_classes()
        comm = self.application.internal_communication
        if comm is None:
            comm = classes["InternalCommunication"]()
            self.application.internal_communication = comm
        field = classes["IoField"](name=name, label=label, field_type=field_type)
        if description:
            field.description = description
        comm.add_input(field)
        return field

    def add_output_field(self, name: str, label: str, field_type: str = "file") -> BoundObject:
        classes = descriptor_classes()
        comm = self.application.internal_communication
        if comm is None:
            comm = classes["InternalCommunication"]()
            self.application.internal_communication = comm
        field = classes["IoField"](name=name, label=label, field_type=field_type)
        comm.add_output(field)
        return field

    def require_service(self, kind: str, endpoint: str = "", host: str = "") -> None:
        classes = descriptor_classes()
        env = self.application.execution_environment
        if env is None:
            env = classes["ExecutionEnvironment"]()
            self.application.execution_environment = env
        binding = classes["ServiceBinding"](service=kind)
        if endpoint:
            binding.endpoint = endpoint
        if host:
            binding.host_ref = host
        env.add_service(binding)

    def set_parameter(self, name: str, value: str) -> None:
        classes = descriptor_classes()
        for param in self.application.parameter:
            if param.name == name:
                param.value = value
                return
        self.application.add_parameter(classes["Parameter"](name=name, value=value))

    # -- marshalling -------------------------------------------------------------------

    def marshal(self) -> str:
        return self.application.to_xml("application").serialize()

    @staticmethod
    def unmarshal(xml: str) -> "ApplicationAdapter":
        cls = descriptor_classes()["Application"]
        return ApplicationAdapter(cls.unmarshal(xml))


class InstanceAdapter:
    """Common read tasks over an ApplicationInstance descriptor."""

    def __init__(self, instance: BoundObject):
        self.instance = instance

    @staticmethod
    def unmarshal(xml: str) -> "InstanceAdapter":
        cls = instance_classes()["ApplicationInstance"]
        return InstanceAdapter(cls.unmarshal(xml))

    def summary(self) -> dict[str, Any]:
        inst = self.instance
        return {
            "id": inst.id,
            "application": inst.application_name,
            "state": inst.state,
            "host": inst.host or "",
            "queue": inst.queue or "",
            "jobId": inst.job_id or "",
            "inputs": list(inst.input_file),
            "output": inst.output_location or "",
            "submitted": inst.submitted,
            "completed": inst.completed,
            "parameters": {p.name: p.value for p in inst.parameter},
        }
