"""The Application Web Service: descriptors bound to core services.

§5: "application descriptors also specify the core services that are
required to run the application and provide context in which those services
are used."  This service is the aggregation point: it publishes the
descriptor schemas and per-application descriptors (for the schema wizard
and remote UIs to download), prepares instances from user choices, and runs
them by *composing the core web services* — batch script generation, job
submission, and context archival all happen through SOAP clients, not local
calls.
"""

from __future__ import annotations

from typing import Any

from repro.faults import InvalidRequestError, ResourceNotFoundError
from repro.appws.adapter import ApplicationAdapter, InstanceAdapter
from repro.appws.descriptors import ApplicationLifecycle
from repro.appws.schemas import combined_schema, instance_schema
from repro.services.batchscript import BSG_NAMESPACE
from repro.services.jobsubmit import GLOBUSRUN_NAMESPACE
from repro.services.context import CONTEXT_NAMESPACE
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer

APPWS_NAMESPACE = "urn:gce:application-web-service"


class ApplicationWebService:
    """Serves application descriptors and drives instances through the
    lifecycle by calling the bound core services."""

    def __init__(
        self,
        network: VirtualNetwork,
        catalog: dict[str, ApplicationAdapter],
        *,
        service_host: str,
        bsg_endpoints: dict[str, str],
        globusrun_endpoint: str,
        context_endpoint: str = "",
    ):
        self.network = network
        self.clock = network.clock
        self.catalog = dict(catalog)
        self.service_host = service_host
        self._bsg_clients = {
            system.upper(): SoapClient(network, url, BSG_NAMESPACE, source=service_host)
            for system, url in bsg_endpoints.items()
        }
        self._globusrun = SoapClient(
            network, globusrun_endpoint, GLOBUSRUN_NAMESPACE, source=service_host
        )
        self._context = (
            SoapClient(network, context_endpoint, CONTEXT_NAMESPACE, source=service_host)
            if context_endpoint
            else None
        )
        self._instances: dict[str, ApplicationLifecycle] = {}
        self._outputs: dict[str, str] = {}
        self._scripts: dict[str, str] = {}
        self.runs_completed = 0

    # -- descriptor publication ------------------------------------------------

    def list_applications(self) -> list[dict[str, Any]]:
        """Catalogue summaries for a portal listing page."""
        return [app.describe() for app in self.catalog.values()]

    def get_descriptor(self, name: str) -> str:
        """The portal-independent application description, as XML."""
        return self._app(name).marshal()

    def get_descriptor_schema(self) -> str:
        """The abstract application/host/queue schema set, as XSD."""
        return combined_schema().serialize(indent=None)

    def get_instance_schema(self) -> str:
        return instance_schema().serialize(indent=None)

    def publish(self, descriptor_xml: str) -> str:
        """Add (or replace) an application from its marshalled descriptor —
        how an application developer deploys to this portal."""
        adapter = ApplicationAdapter.unmarshal(descriptor_xml)
        self.catalog[adapter.name] = adapter
        return adapter.name

    def _app(self, name: str) -> ApplicationAdapter:
        app = self.catalog.get(name)
        if app is None:
            raise ResourceNotFoundError(
                f"no application {name!r}; known: {sorted(self.catalog)}",
                {"application": name},
            )
        return app

    # -- the lifecycle ----------------------------------------------------------------

    def prepare(self, name: str, host: str, choices: dict[str, Any]) -> str:
        """(a) -> (b): fix the user's choices; returns the instance id."""
        app = self._app(name)
        host_binding = app.host_named(host)
        known_fields = {field.name for field in app.input_fields()}
        unknown = set(choices) - known_fields
        if unknown:
            raise InvalidRequestError(
                f"choices {sorted(unknown)} are not inputs of {name!r}; "
                f"inputs: {sorted(known_fields)}"
            )
        queues = list(host_binding.queue)
        queue_name = queues[0].queue_name if queues else ""
        lifecycle = ApplicationLifecycle(name, app.version)
        lifecycle.prepare(
            host=host,
            queue=queue_name,
            parameters={key: str(value) for key, value in choices.items()},
        )
        self._instances[lifecycle.instance_id] = lifecycle
        return lifecycle.instance_id

    def _lifecycle(self, instance_id: str) -> ApplicationLifecycle:
        lifecycle = self._instances.get(instance_id)
        if lifecycle is None:
            raise ResourceNotFoundError(
                f"no instance {instance_id!r}", {"instance": instance_id}
            )
        return lifecycle

    def run(self, instance_id: str) -> str:
        """(b) -> (c) -> (d): generate the script through the batch-script
        service, submit through the Globusrun service, archive the result.
        Returns the final state."""
        lifecycle = self._lifecycle(instance_id)
        inst = lifecycle.instance
        app = self._app(inst.application_name)
        host_binding = app.host_named(inst.host)
        queues = list(host_binding.queue)
        system = queues[0].queuing_system if queues else "PBS"

        choices = {p.name: p.value for p in inst.parameter}
        arguments = " ".join(
            choices[field.name]
            for field in app.input_fields()
            if field.name in choices and field.field_type in ("integer", "float", "string")
        )
        cpus = int(choices.get("cpus", "1") or 1)

        # 1. batch script generation through the common interface
        bsg = self._bsg_clients.get(system.upper())
        if bsg is None:
            raise InvalidRequestError(
                f"no batch script generator bound for {system!r}",
                {"scheduler": system},
            )
        params = {
            "jobName": f"{inst.application_name}-{instance_id}",
            "executable": host_binding.executable_path,
            "arguments": arguments,
            "queue": inst.queue or "",
            "cpus": str(cpus),
            "wallTime": "86400",
        }
        script = bsg.call("generateScript", system, params)
        self._scripts[instance_id] = script

        # 2. job submission through the Globusrun web service
        lifecycle.submitted(job_id="", at=self.clock.now)
        try:
            output = self._globusrun.call(
                "run",
                inst.host,
                host_binding.executable_path,
                arguments,
                cpus,
                inst.queue or "",
                86400,
            )
        except Exception:
            lifecycle.fail()
            raise
        self._outputs[instance_id] = output

        # 3. archive the completed run
        lifecycle.archive(
            output_location=f"portal:{self.service_host}/output/{instance_id}",
            at=self.clock.now,
        )
        self.runs_completed += 1
        return lifecycle.state

    def status(self, instance_id: str) -> str:
        return self._lifecycle(instance_id).state

    def get_instance(self, instance_id: str) -> str:
        """The marshalled instance descriptor (for archiving/editing)."""
        return self._lifecycle(instance_id).marshal()

    def get_output(self, instance_id: str) -> str:
        output = self._outputs.get(instance_id)
        if output is None:
            raise ResourceNotFoundError(
                f"no output for instance {instance_id!r} (not run yet?)"
            )
        return output

    def get_script(self, instance_id: str) -> str:
        script = self._scripts.get(instance_id)
        if script is None:
            raise ResourceNotFoundError(
                f"no script for instance {instance_id!r} (not run yet?)"
            )
        return script

    def archive_to_context(
        self, instance_id: str, user: str, problem: str, session: str
    ) -> bool:
        """Store the instance descriptor in the context manager's session
        (the session-archiving backbone of §5.1)."""
        if self._context is None:
            raise InvalidRequestError("no context manager bound to this service")
        lifecycle = self._lifecycle(instance_id)
        self._context.call("createUserContext", user)
        self._context.call("createProblemContext", user, problem)
        self._context.call("createSessionContext", user, problem, session)
        self._context.call(
            "setSessionDescriptor", user, problem, session, lifecycle.marshal()
        )
        return True

    def instance_summary(self, instance_id: str) -> dict[str, Any]:
        return InstanceAdapter(self._lifecycle(instance_id).instance).summary()


def deploy_application_service(
    network: VirtualNetwork,
    catalog: dict[str, ApplicationAdapter],
    *,
    host: str = "appws.gridportal.org",
    bsg_endpoints: dict[str, str],
    globusrun_endpoint: str,
    context_endpoint: str = "",
) -> tuple[ApplicationWebService, str]:
    """Stand up the Application Web Service; also publishes the descriptor
    schemas and each application's descriptor XML at plain HTTP URLs (the
    paper's "[s]chemas are also available from <URL>")."""
    impl = ApplicationWebService(
        network,
        catalog,
        service_host=host,
        bsg_endpoints=bsg_endpoints,
        globusrun_endpoint=globusrun_endpoint,
        context_endpoint=context_endpoint,
    )
    server = HttpServer(host, network)
    soap = SoapService("ApplicationWebService", APPWS_NAMESPACE)
    soap.expose(impl.list_applications)
    soap.expose(impl.get_descriptor)
    soap.expose(impl.get_descriptor_schema)
    soap.expose(impl.get_instance_schema)
    soap.expose(impl.publish)
    soap.expose(impl.prepare)
    soap.expose(impl.run)
    soap.expose(impl.status)
    soap.expose(impl.get_instance)
    soap.expose(impl.get_output)
    soap.expose(impl.get_script)
    soap.expose(impl.archive_to_context)
    soap.expose(impl.instance_summary)
    endpoint = soap.mount(server, "/appws")

    schema_text = combined_schema().serialize()

    def serve_schema(request: HttpRequest) -> HttpResponse:
        return HttpResponse(200, {"Content-Type": "text/xml"}, schema_text)

    server.mount("/schema/application.xsd", serve_schema)

    def serve_descriptor(request: HttpRequest) -> HttpResponse:
        name = request.url.path.rsplit("/", 1)[-1].removesuffix(".xml")
        if name not in impl.catalog:
            return HttpResponse(404, body=f"no application {name!r}")
        return HttpResponse(
            200, {"Content-Type": "text/xml"}, impl.catalog[name].marshal()
        )

    server.mount("/descriptors", serve_descriptor)
    return impl, endpoint
