"""Application Web Services (§5).

"The important next step is to define a general purpose set of schemas that
describes how to use a particular application and bind it to the services it
needs.  These schemas are the foundation for what we call Application Web
Services."

- :mod:`repro.appws.schemas` — the abstract descriptor schemas
  (application / host / queue, "implemented in a container hierarchy") and
  the application-*instance* schema used for session archiving.
- :mod:`repro.appws.descriptors` — generated binding classes plus the
  application lifecycle (abstract → prepared → running → archived).
- :mod:`repro.appws.adapter` — the coarse-grained adapter over the generated
  get/set calls ("the resulting [full] interface is extremely complicated
  ... Instead we are building an adapter class").
- :mod:`repro.appws.catalog` — ready-made descriptors for the synthetic
  science codes the simulated grid runs.
- :mod:`repro.appws.service` — the Application Web Service itself: publish
  and download descriptors, prepare instances, and run them through the
  bound core services.
"""

from repro.appws.schemas import (
    APPLICATION_NS,
    application_schema,
    combined_schema,
    host_schema,
    instance_schema,
    queue_schema,
)
from repro.appws.descriptors import (
    LIFECYCLE_STATES,
    ApplicationLifecycle,
    descriptor_classes,
    instance_classes,
)
from repro.appws.adapter import ApplicationAdapter, InstanceAdapter
from repro.appws.catalog import build_catalog
from repro.appws.service import ApplicationWebService, deploy_application_service

__all__ = [
    "APPLICATION_NS",
    "application_schema",
    "combined_schema",
    "host_schema",
    "instance_schema",
    "queue_schema",
    "LIFECYCLE_STATES",
    "ApplicationLifecycle",
    "descriptor_classes",
    "instance_classes",
    "ApplicationAdapter",
    "InstanceAdapter",
    "build_catalog",
    "ApplicationWebService",
    "deploy_application_service",
]
