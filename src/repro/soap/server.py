"""SOAP service dispatch: a method registry mounted as an HTTP endpoint.

A :class:`SoapService` is the paper's "SOAP Service Provider" (SSP) for one
service: it owns a namespace, a set of exposed methods, and optional request
interceptors (the security layer in §4 registers one to demand verified SAML
assertions before any method runs).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.durability.idempotency import (
    IdempotencyIndex,
    key_from_headers,
    set_current_key,
)
from repro.faults import InvalidRequestError, PortalError
from repro.observability.context import TRACEPARENT, TraceContext
from repro.observability.sampling import sampling_from_headers
from repro.soap.encoding import decode_value
from repro.soap.message import (
    SoapEnvelope,
    SoapFault,
    response_envelope,
)
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.network import ServiceCrash
from repro.transport.server import HttpServer

# An interceptor inspects (method name, params, envelope) before dispatch and
# raises a PortalError to reject the call.
Interceptor = Callable[[str, list[Any], SoapEnvelope], None]


@dataclass
class ExposedMethod:
    """Metadata for one exposed operation (drives WSDL generation)."""

    name: str
    func: Callable[..., Any]
    doc: str = ""
    param_names: list[str] = field(default_factory=list)


class SoapService:
    """A SOAP server for one service namespace.

    Methods are exposed explicitly (``expose``) or in bulk from an object
    (``expose_object``), mirroring how the paper's teams wrapped existing
    implementations ("the SOAP server methods wrapped the existing WebFlow
    methods").
    """

    def __init__(self, name: str, namespace: str):
        self.name = name
        self.namespace = namespace
        self.methods: dict[str, ExposedMethod] = {}
        self.interceptors: list[Interceptor] = []
        self.calls_served = 0
        self.faults_returned = 0
        #: the host clock (set by :meth:`mount`); enables deadline shedding
        self.clock = None
        self.requests_shed = 0
        #: journal-backed response cache keyed by the client's idempotency
        #: header (see :meth:`enable_replay`); ``None`` = caching off
        self.replay_cache: IdempotencyIndex | None = None
        self.replays_served = 0
        #: the serving host name and network (set by :meth:`mount`); the
        #: network carries the ambient observability bundle, if installed
        self.host = ""
        self.network = None
        #: observability plane services (trace collector, monitoring) set
        #: this False so dashboards do not trace themselves
        self.traced = True
        #: admission controller run before dispatch (see
        #: :meth:`enable_admission`); ``None`` = accept everything
        self.admission = None
        #: resilience log receiving shed events; set alongside admission
        self.resilience_log = None
        # RED series cache, invalidated when the registry changes (the
        # observability bundle was reinstalled): (registry, {method: series})
        self._red_cache: tuple[Any, dict[str, Any]] | None = None

    # -- registration ----------------------------------------------------------

    def expose(
        self, func: Callable[..., Any], name: str | None = None
    ) -> "SoapService":
        method_name = name or func.__name__
        try:
            params = [
                p.name
                for p in inspect.signature(func).parameters.values()
                if p.name != "self"
            ]
        except (TypeError, ValueError):  # builtins etc.
            params = []
        self.methods[method_name] = ExposedMethod(
            name=method_name,
            func=func,
            doc=inspect.getdoc(func) or "",
            param_names=params,
        )
        return self

    def expose_object(self, obj: Any, only: list[str] | None = None) -> "SoapService":
        """Expose every public method of *obj* (or the listed subset)."""
        for attr in dir(obj):
            if attr.startswith("_"):
                continue
            if only is not None and attr not in only:
                continue
            func = getattr(obj, attr)
            if callable(func):
                self.expose(func, name=attr)
        return self

    def add_interceptor(self, interceptor: Interceptor) -> None:
        self.interceptors.append(interceptor)

    def enable_replay(self, journal) -> "SoapService":
        """Cache successful responses durably by idempotency key.

        A request carrying a key the journal has already seen gets the
        recorded response envelope back without re-running the method —
        including after a crash-restart, since a fresh service instance
        attached to the same journal replays the cache.
        """
        self.replay_cache = IdempotencyIndex(journal)
        return self

    def enable_admission(self, controller, log=None) -> "SoapService":
        """Run *controller*'s gates before every dispatch.

        A refused request returns a retryable ``Portal.ServerBusy`` fault
        carrying the controller's ``retryAfter`` hint; an admitted
        request's modelled queue wait feeds the deadline shed check, so a
        caller whose budget would expire while queued is shed up front.
        *log* (a :class:`~repro.resilience.events.ResilienceLog`) also
        receives this server's deadline-shed events.
        """
        if not controller.service:
            controller.service = self.name
        self.admission = controller
        self.resilience_log = log if log is not None else controller.log
        if controller.log is None:
            controller.log = self.resilience_log
        return self

    # -- dispatch ----------------------------------------------------------------

    def dispatch(
        self, envelope: SoapEnvelope, *, parent: "TraceContext | None" = None
    ) -> SoapEnvelope:
        """Execute one request envelope, always returning a response (faults
        included — never raising, except :class:`ServiceCrash`).

        When the observability layer is installed on the serving network, a
        server span wraps the dispatch: parented by *parent* (the transport
        ``Traceparent`` header, decoded in :meth:`handle_http`) or by the
        request's SOAP trace header (``urn:gce:trace``, the interop form)
        when present, timed on the host clock, with the method's RED sample
        recorded on completion.  A :class:`ServiceCrash` still exports the
        span (error ``ServiceCrash``): the collector is an omniscient
        observer in the simulation, and dropping the span would orphan any
        children it already parented (the GRAM hops that completed before
        the crash).
        """
        obs = (
            getattr(self.network, "observability", None) if self.traced else None
        )
        if obs is None:
            return self._dispatch(envelope)
        method_name = envelope.body.tag.local
        headers = envelope.headers
        if headers:
            if parent is None:
                parent = TraceContext.from_headers(headers)
            sampler = getattr(obs, "sampler", None)
            if sampler is not None:
                # the sampling-decision header: tally the caller's mode so
                # mixed-mode deployments surface in the accounting
                mode = sampling_from_headers(headers)
                if mode:
                    sampler.note_inbound(mode)
        cache = self._red_cache
        if cache is None or cache[0] is not obs.metrics:
            cache = self._red_cache = (obs.metrics, {})
        series = cache[1].get(method_name)
        if series is None:
            series = cache[1][method_name] = obs.metrics.series(
                self.name, method_name, "server"
            )
        tracer = obs.tracer
        clock = obs.clock
        started = clock.now
        replays_before = self.replays_served
        span = tracer.start(method_name, "server", self.name, self.host, parent)
        try:
            response = self._dispatch(envelope)
        except ServiceCrash:
            tracer.end(span, error="ServiceCrash")
            series.record(clock.now - started, True)
            raise
        error = ""
        if response.is_fault:
            fault = SoapFault.from_xml(response.body)
            portal_error = fault.to_portal_error()
            error = (
                portal_error.code if portal_error is not None else fault.faultcode
            )
        if self.replays_served > replays_before:
            span.attributes["replayed"] = True
        tracer.end(span, error=error)
        series.record(clock.now - started, bool(error))
        return response

    def _dispatch(self, envelope: SoapEnvelope) -> SoapEnvelope:
        """The seed dispatch path (no instrumentation)."""
        from repro.resilience.policy import (
            Deadline,
            check_hop_budget,
            pop_inbound_deadline,
            push_inbound_deadline,
        )

        method_name = envelope.body.tag.local
        idem_key = key_from_headers(envelope.headers) if envelope.headers else ""
        if self.replay_cache is not None and idem_key:
            cached = self.replay_cache.get(idem_key)
            if cached is not None:
                self.replays_served += 1
                return SoapEnvelope.parse(cached)
        inbound = (
            Deadline.from_headers(envelope.headers) if envelope.headers else None
        )
        try:
            if inbound is not None and self.clock is not None:
                # the monotone-budget invariant: a nested hop's deadline can
                # never be later than its enclosing call's (stale budgets
                # raise the terminal Portal.BudgetViolation here)
                check_hop_budget(
                    inbound, clock=self.clock,
                    service=self.name, method=method_name,
                )
            ticket = self._admit(method_name, envelope)
            try:
                self._shed_if_expired(method_name, envelope, ticket)
                exposed = self.methods.get(method_name)
                if exposed is None:
                    raise InvalidRequestError(
                        f"service {self.name!r} has no method {method_name!r}",
                        {"method": method_name},
                    )
                params = [decode_value(child) for child in envelope.body.children]
                for interceptor in self.interceptors:
                    interceptor(method_name, params, envelope)
                set_current_key(idem_key)
                if inbound is not None:
                    # while the handler runs, its request's deadline is the
                    # enclosing budget every nested call must fit inside
                    push_inbound_deadline(inbound)
                try:
                    result = exposed.func(*params)
                finally:
                    if inbound is not None:
                        pop_inbound_deadline()
                    set_current_key("")
            finally:
                if ticket is not None:
                    self.admission.release(ticket)
        except ServiceCrash:
            raise  # the process died: no fault, no response, nothing at all
        except PortalError as err:
            self.faults_returned += 1
            return SoapEnvelope(
                SoapFault.from_portal_error(err, actor=self.name).to_xml()
            )
        except Exception as exc:  # noqa: BLE001 - service boundary
            self.faults_returned += 1
            fault = SoapFault(
                faultcode="Server",
                faultstring=f"unhandled {type(exc).__name__}: {exc}",
                faultactor=self.name,
            )
            return SoapEnvelope(fault.to_xml())
        self.calls_served += 1
        response = response_envelope(self.namespace, method_name, result)
        if self.replay_cache is not None and idem_key:
            try:
                self.replay_cache.put(idem_key, response.serialize())
            except PortalError as err:
                # the durable response record is part of the ack: if the
                # disk cannot hold it, refuse (retryably) rather than hand
                # out a keyed response a crash-restarted instance would not
                # be able to replay
                self.faults_returned += 1
                return SoapEnvelope(
                    SoapFault.from_portal_error(err, actor=self.name).to_xml()
                )
        return response

    def _admit(self, method_name: str, envelope: SoapEnvelope):
        """Run the admission controller, if one is attached.

        Returns the admission ticket (or ``None`` with no controller); a
        refusal propagates as the controller's retryable
        ``Portal.ServerBusy`` fault.  The request's principal header
        (``urn:gce:loadmgmt``) selects the fair-queue lane.
        """
        if self.admission is None:
            return None
        from repro.loadmgmt.headers import principal_from_headers

        principal, priority = (
            principal_from_headers(envelope.headers)
            if envelope.headers
            else (None, None)
        )
        return self.admission.admit(
            principal, priority=priority, method=method_name
        )

    def _shed_if_expired(
        self, method_name: str, envelope: SoapEnvelope, ticket=None
    ) -> None:
        """Reject work whose caller's deadline has passed — or *would* pass
        while the request waits its turn in the admission queue.

        The client stamps each request with an absolute virtual-time
        deadline header (:mod:`repro.resilience.policy`); by the time the
        request has crossed the wire that budget may be spent, and running
        the method would only produce an answer nobody is waiting for.
        The shed's detail always carries the modelled ``queueWait`` so
        clients can tell "server overloaded" (large wait) from "deadline
        too tight" (expired with no queue to blame).
        """
        if self.clock is None or not envelope.headers:
            return
        from repro.faults import DeadlineExceededError
        from repro.resilience.policy import Deadline

        deadline = Deadline.from_headers(envelope.headers)
        if deadline is None:
            return
        queue_wait = ticket.queue_wait if ticket is not None else 0.0
        if deadline.expired(self.clock):
            detail = {
                "method": method_name,
                "deadline": repr(deadline.at),
                "queueWait": f"{queue_wait:.6f}",
                "expiredBy": f"{self.clock.now - deadline.at:.6f}",
            }
            message = f"deadline passed before {method_name!r} started; shedding"
        elif queue_wait > deadline.remaining(self.clock):
            detail = {
                "method": method_name,
                "deadline": repr(deadline.at),
                "queueWait": f"{queue_wait:.6f}",
                "remaining": f"{deadline.remaining(self.clock):.6f}",
            }
            message = (
                f"deadline would pass while {method_name!r} waits "
                f"{queue_wait:.3f}s in queue; shedding"
            )
        else:
            return
        self.requests_shed += 1
        self._note_shed(method_name, message, detail)
        raise DeadlineExceededError(message, detail)

    def _note_shed(self, method_name: str, message: str, detail: dict) -> None:
        """Make a deadline shed visible to the resilience stream and traces.

        With a resilience log attached, one record carries the event —
        the observability bridge (``observe_log``) turns it into a span
        annotation and counter.  Without a log, the ambient bundle (if
        any) is annotated directly so sheds are never invisible.
        """
        from repro.resilience import events as resilience_events

        if self.resilience_log is not None:
            self.resilience_log.record(
                resilience_events.SHED,
                message,
                service=self.name,
                operation=method_name,
                detail=detail,
            )
            return
        obs = (
            getattr(self.network, "observability", None) if self.traced else None
        )
        if obs is not None:
            obs.metrics.count_event(resilience_events.SHED)
            obs.tracer.annotate(
                resilience_events.SHED,
                message=message,
                service=self.name,
                operation=method_name,
                **detail,
            )

    # -- HTTP endpoint -------------------------------------------------------------

    def handle_http(self, request: HttpRequest) -> HttpResponse:
        """The HTTP face of the service (mounted on an
        :class:`repro.transport.server.HttpServer`)."""
        if request.method != "POST":
            return HttpResponse(405, body="SOAP endpoint requires POST")
        try:
            envelope = SoapEnvelope.parse(request.body)
        except ValueError as exc:
            fault = SoapFault("Client", f"malformed SOAP request: {exc}", self.name)
            return HttpResponse(
                500,
                {"Content-Type": "text/xml"},
                SoapEnvelope(fault.to_xml()).serialize(),
            )
        raw_parent = request.headers.get(TRACEPARENT)
        parent = (
            TraceContext.from_traceparent(raw_parent) if raw_parent else None
        )
        response = self.dispatch(envelope, parent=parent)
        status = 500 if response.is_fault else 200
        return HttpResponse(
            status, {"Content-Type": "text/xml"}, response.serialize()
        )

    def mount(self, server: HttpServer, path: str = "/soap") -> str:
        """Mount this service on a host; returns the endpoint URL."""
        server.mount(path, self.handle_http)
        self.host = server.host
        if server.network is not None:
            self.clock = server.network.clock
            self.network = server.network
        return f"http://{server.host}{path}"
