"""A SOAP client proxy.

"The User Interface server ... maintains client proxies to the UDDI and SOAP
Service Providers."  :class:`SoapClient` is that proxy: it encodes an RPC
call into a request envelope, posts it over the virtual network, decodes the
response, and re-raises the provider's portal errors locally.  Header
providers let the security layer attach signed SAML assertions to every
outgoing request without the application code knowing (§4).

The proxy is also where client-side resilience lives: an optional
:class:`~repro.resilience.policy.RetryPolicy` re-issues calls that failed
with a *retryable* error (transport failures and ``PortalError.retryable``
faults — the paper's common vocabulary makes the classification portable
across providers), backing off by advancing the virtual clock; an optional
per-call timeout stamps a deadline header on the request so the server can
shed work whose caller has already given up.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.faults import DeadlineExceededError, PortalError, retry_after_hint
from repro.observability.context import TRACEPARENT, traceparent
from repro.observability.sampling import sampling_header
from repro.soap.message import (
    SoapEnvelope,
    SoapFault,
    SoapFaultError,
    request_envelope,
)
from repro.transport.client import HttpClient
from repro.transport.network import VirtualNetwork
from repro.xmlutil.element import XmlElement

# A header provider is called per request with (method, params) and returns
# header entries to attach (e.g. a freshly signed SAML assertion).
HeaderProvider = Callable[[str, list[Any]], list[XmlElement]]


class SoapClient:
    """A dynamic RPC proxy bound to one SOAP endpoint URL.

    Calls can be made explicitly (``client.call("ls", "/home")``) or through
    attribute magic (``client.ls("/home")``) — the latter reads like the
    generated client stubs the paper's teams used.

    Without a ``retry_policy`` the proxy behaves exactly like the seed: one
    attempt, first error wins.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        endpoint: str,
        namespace: str,
        *,
        source: str = "client",
        http_client: HttpClient | None = None,
        retry_policy=None,
        breaker_policy=None,
        timeout: float | None = None,
        resilience_log=None,
        service_name: str = "",
        retry_seed: int = 0,
        traced: bool = True,
        principal: str = "",
        priority: int = 0,
    ):
        self.network = network
        self.clock = network.clock
        self.endpoint = endpoint
        self.namespace = namespace
        self.retry_policy = retry_policy
        self.default_timeout = timeout
        self.log = resilience_log
        self.source = source
        self.service_name = service_name or endpoint
        #: the ambient observability bundle, if installed on the network and
        #: not opted out (dashboard portlets pass ``traced=False`` so the
        #: observability plane does not observe itself)
        self.traced = traced
        self.http = http_client or HttpClient(
            network, source, breaker_policy=breaker_policy
        )
        if (
            http_client is not None
            and breaker_policy is not None
            and http_client.breaker_policy is None
        ):
            http_client.breaker_policy = breaker_policy
        if self.log is not None:
            self.http.breaker_listener = self._record_breaker_transition
        #: the principal (fair-queue lane) this proxy's requests belong to;
        #: empty = no header, the server's anonymous lane
        self.principal = principal
        self.priority = priority
        self.header_providers: list[HeaderProvider] = [self._trace_headers]
        if principal:
            self.header_providers.append(self._principal_headers)
        self.last_response: SoapEnvelope | None = None
        self._sampling_announced = False
        # per-call span furniture, built once: the wrapper span's name and
        # attribute dict are identical for every call of a given method
        self._span_names: dict[str, str] = {}
        self._endpoint_attrs = {"endpoint": self.endpoint}
        # RED series cache, invalidated when the registry changes (the
        # observability bundle was reinstalled): (registry, {method: series})
        self._red_cache: tuple[Any, dict[str, Any]] | None = None
        self.calls_made = 0
        self.retries_performed = 0
        self.busy_backoffs = 0
        self._retry_rng = random.Random(retry_seed)

    def add_header_provider(self, provider: HeaderProvider) -> None:
        self.header_providers.append(provider)

    # -- observability plumbing -----------------------------------------------

    @property
    def obs(self):
        """The network's observability bundle (lazy, so install order does
        not matter), or ``None`` when tracing is off for this client."""
        if not self.traced:
            return None
        return getattr(self.network, "observability", None)

    def _trace_headers(self, method: str, params: list[Any]) -> list[XmlElement]:
        """The built-in header provider for sampling-decision context.

        The trace context itself rides the *transport* header
        (``Traceparent``, attached in :meth:`_call_once`) — one dict entry
        instead of an XML element the server must parse on every dispatch.
        Under tail sampling the client's *first* traced request announces
        the sampling-mode SOAP header (``urn:gce:sampling``, prebuilt raw
        form) so the receiving hop knows this caller's traces are
        tail-buffered and must not be head-sampled away.  The mode is
        static for the sampler's lifetime, so announcing once per client
        keeps the steady-state envelope header-free — an envelope with
        *any* header entry pays the Header-block serialize + parse plus
        every server-side header scan on each dispatch.
        """
        if self._sampling_announced:
            return []
        obs = self.obs
        if obs is None or obs.tracer.current() is None:
            return []
        # settled either way: with no sampler there is nothing to announce,
        # ever, and the flag keeps later calls out of the lookups above
        self._sampling_announced = True
        sampler = obs.sampler
        if sampler is None:
            return []
        return [sampling_header(sampler.mode)]

    def _principal_headers(self, method: str, params: list[Any]) -> list[XmlElement]:
        """Stamp the request with this proxy's admission lane."""
        from repro.loadmgmt.headers import principal_header

        return [principal_header(self.principal, self.priority)]

    # -- resilience plumbing --------------------------------------------------

    def _record_breaker_transition(self, host: str, old: str, new: str) -> None:
        from repro.resilience import events

        self.log.record(
            events.BREAKER,
            f"breaker for {host!r}: {old} -> {new}",
            service=self.service_name,
            detail={"host": host, "from": old, "to": new},
        )

    @staticmethod
    def _error_code(exc: BaseException) -> str:
        from repro.faults import PortalError

        return exc.code if isinstance(exc, PortalError) else type(exc).__name__

    # -- the call path --------------------------------------------------------

    def _call_once(
        self, method: str, params: list[Any], deadline, idem_key: str = "",
        span=None,
    ) -> Any:
        """One request/response round trip (the seed's whole call path).

        *span* is the caller's attempt span, when tracing — its context
        rides the ``Traceparent`` transport header.
        """
        headers: list[XmlElement] = []
        for provider in self.header_providers:
            headers.extend(provider(method, params))
        if deadline is not None:
            headers.append(deadline.to_header())
        if idem_key:
            from repro.durability.idempotency import idempotency_header

            headers.append(idempotency_header(idem_key))
        envelope = request_envelope(self.namespace, method, params, headers)
        http_headers = {
            "Content-Type": "text/xml",
            "SOAPAction": f"{self.namespace}#{method}",
        }
        if span is not None:
            http_headers[TRACEPARENT] = traceparent(span.trace_id, span.span_id)
        response = self.http.post(
            self.endpoint, envelope.serialize(), http_headers
        )
        self.calls_made += 1
        parsed = SoapEnvelope.parse(response.body)
        self.last_response = parsed
        if parsed.is_fault:
            fault = SoapFault.from_xml(parsed.body)
            portal_error = fault.to_portal_error()
            if portal_error is not None:
                raise portal_error
            raise SoapFaultError(fault)
        return_node = parsed.body.find("return")
        if return_node is None:
            return None
        from repro.soap.encoding import decode_value

        return decode_value(return_node)

    def _attempt(
        self, method: str, params: list[Any], deadline, idem_key: str = "",
        obs=None,
    ) -> Any:
        """One attempt, wrapped in a client span + RED sample when the
        observability layer is installed."""
        if obs is None:
            return self._call_once(method, params, deadline, idem_key)
        cache = self._red_cache
        if cache is None or cache[0] is not obs.metrics:
            cache = self._red_cache = (obs.metrics, {})
        series = cache[1].get(method)
        if series is None:
            series = cache[1][method] = obs.metrics.series(
                self.service_name, method, "client"
            )
        tracer = obs.tracer
        clock = self.clock
        started = clock.now
        span = tracer.start(method, "client", self.service_name, self.source)
        try:
            result = self._call_once(method, params, deadline, idem_key, span)
        except Exception as exc:
            tracer.end(span, error=self._error_code(exc))
            series.record(clock.now - started, True)
            raise
        tracer.end(span)
        series.record(clock.now - started, False)
        return result

    def call(
        self,
        method: str,
        *params: Any,
        timeout: float | None = None,
        idempotency_key: str = "",
    ) -> Any:
        """Invoke ``method(*params)`` on the remote service.

        ``timeout`` (virtual seconds, default: the client's ``timeout``)
        bounds the whole call including retries and backoff; it travels to
        the server as a deadline header.

        ``idempotency_key`` stamps every attempt of this logical call with
        the same key header (``urn:gce:durability``), so a provider that
        journals keys — or a failover substitute attached to the same
        journal — returns the first attempt's result instead of redoing the
        work.  Essential for retried *submissions*: the request may have
        been accepted even though the response was lost.
        """
        from repro.resilience.policy import Deadline, current_inbound_deadline

        budget = timeout if timeout is not None else self.default_timeout
        # budget propagation: inside a deadline-carrying dispatch, a nested
        # call with no explicit timeout inherits the caller's remaining
        # budget, and an explicit timeout is clamped to it — the absolute
        # deadline riding the headers can only move earlier down the chain
        # (the server enforces this as Portal.BudgetViolation)
        enclosing = current_inbound_deadline()
        deadline = Deadline.after(self.clock, budget) if budget is not None else None
        if enclosing is not None and (
            deadline is None or deadline.at > enclosing.at
        ):
            deadline = enclosing
        param_list = list(params)
        obs = self.obs
        if obs is None:
            return self._call_loop(method, param_list, deadline, idempotency_key)
        return self._traced_call(
            method, param_list, deadline, idempotency_key, obs
        )

    def _traced_call(
        self, method: str, param_list: list[Any], deadline,
        idempotency_key: str, obs,
    ) -> Any:
        # the logical call (retry loop included) is one client span; each
        # attempt below opens a child span whose context rides the
        # transport header.  Inlined start/end rather than the span()
        # context manager: the generator machinery is measurable per call.
        name = self._span_names.get(method)
        if name is None:
            name = self._span_names[method] = f"call {method}"
        span = obs.tracer.start(
            name, "client", self.service_name, self.source,
            attributes=self._endpoint_attrs,
        )
        try:
            result = self._call_loop(
                method, param_list, deadline, idempotency_key, obs
            )
        except PortalError as exc:
            obs.tracer.end(span, error=exc.code)
            raise
        except Exception as exc:
            obs.tracer.end(span, error=type(exc).__name__)
            raise
        obs.tracer.end(span)
        return result

    def _call_loop(
        self, method: str, param_list: list[Any], deadline,
        idempotency_key: str, obs=None,
    ) -> Any:
        """The retry loop around individual attempts."""
        from repro.resilience.policy import NO_RETRY, is_retryable

        policy = self.retry_policy or NO_RETRY
        attempts = 0
        while True:
            if deadline is not None and deadline.expired(self.clock):
                raise self._deadline_error(method, deadline)
            try:
                return self._attempt(
                    method, param_list, deadline, idempotency_key, obs
                )
            except Exception as exc:
                attempts += 1
                if not is_retryable(exc):
                    raise
                if not policy.retries_remaining(attempts):
                    # a policy-less client gave nothing up — it made its one
                    # attempt, and any rotation above logs its own events
                    if self.retry_policy is not None:
                        self._record_give_up(method, attempts, exc)
                    raise
                delay = policy.backoff(attempts - 1, self._retry_rng)
                hint = retry_after_hint(exc)
                if hint is not None:
                    # the server said exactly when it can take the request
                    # again (admission control's retryAfter); waiting less
                    # guarantees another refusal, waiting the blind
                    # exponential amount wastes budget — honour the hint
                    delay = hint
                    self.busy_backoffs += 1
                if deadline is not None and self.clock.now + delay >= deadline.at:
                    raise self._deadline_error(method, deadline) from exc
                self._record_retry(method, attempts, delay, exc, hint=hint)
                self.retries_performed += 1
                self.clock.advance(delay)

    def _deadline_error(self, method: str, deadline) -> DeadlineExceededError:
        err = DeadlineExceededError(
            f"deadline passed calling {method!r} on {self.endpoint}",
            {"method": method, "deadline": repr(deadline.at)},
        )
        if self.log is not None:
            from repro.resilience import events

            self.log.record(
                events.DEADLINE,
                err.message,
                service=self.service_name,
                operation=method,
                detail={"endpoint": self.endpoint},
            )
        return err

    def _record_retry(
        self,
        method: str,
        attempts: int,
        delay: float,
        exc: BaseException,
        *,
        hint: float | None = None,
    ) -> None:
        if self.log is None:
            return
        from repro.resilience import events

        detail = {
            "endpoint": self.endpoint,
            "attempt": str(attempts),
            "backoff": f"{delay:.6f}",
            "error": self._error_code(exc),
        }
        if hint is not None:
            detail["retryAfter"] = f"{hint:.6f}"
        self.log.record(
            events.RETRY,
            f"retry {attempts} of {method!r} after {self._error_code(exc)}",
            service=self.service_name,
            operation=method,
            detail=detail,
        )

    def _record_give_up(
        self, method: str, attempts: int, exc: BaseException
    ) -> None:
        if self.log is None:
            return
        from repro.resilience import events

        self.log.record(
            events.GIVE_UP,
            f"giving up on {method!r} after {attempts} attempts",
            service=self.service_name,
            operation=method,
            detail={"endpoint": self.endpoint, "error": self._error_code(exc)},
        )

    def __getattr__(self, name: str) -> Callable[..., Any]:
        if name.startswith("_"):
            raise AttributeError(name)

        def invoke(*params: Any) -> Any:
            return self.call(name, *params)

        invoke.__name__ = name
        return invoke
