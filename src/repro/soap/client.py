"""A SOAP client proxy.

"The User Interface server ... maintains client proxies to the UDDI and SOAP
Service Providers."  :class:`SoapClient` is that proxy: it encodes an RPC
call into a request envelope, posts it over the virtual network, decodes the
response, and re-raises the provider's portal errors locally.  Header
providers let the security layer attach signed SAML assertions to every
outgoing request without the application code knowing (§4).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.soap.message import (
    SoapEnvelope,
    SoapFault,
    SoapFaultError,
    request_envelope,
)
from repro.transport.client import HttpClient
from repro.transport.network import VirtualNetwork
from repro.xmlutil.element import XmlElement

# A header provider is called per request with (method, params) and returns
# header entries to attach (e.g. a freshly signed SAML assertion).
HeaderProvider = Callable[[str, list[Any]], list[XmlElement]]


class SoapClient:
    """A dynamic RPC proxy bound to one SOAP endpoint URL.

    Calls can be made explicitly (``client.call("ls", "/home")``) or through
    attribute magic (``client.ls("/home")``) — the latter reads like the
    generated client stubs the paper's teams used.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        endpoint: str,
        namespace: str,
        *,
        source: str = "client",
        http_client: HttpClient | None = None,
    ):
        self.endpoint = endpoint
        self.namespace = namespace
        self.http = http_client or HttpClient(network, source)
        self.header_providers: list[HeaderProvider] = []
        self.last_response: SoapEnvelope | None = None
        self.calls_made = 0

    def add_header_provider(self, provider: HeaderProvider) -> None:
        self.header_providers.append(provider)

    def call(self, method: str, *params: Any) -> Any:
        """Invoke ``method(*params)`` on the remote service."""
        headers: list[XmlElement] = []
        param_list = list(params)
        for provider in self.header_providers:
            headers.extend(provider(method, param_list))
        envelope = request_envelope(self.namespace, method, param_list, headers)
        response = self.http.post(
            self.endpoint,
            envelope.serialize(),
            {"Content-Type": "text/xml", "SOAPAction": f"{self.namespace}#{method}"},
        )
        self.calls_made += 1
        parsed = SoapEnvelope.parse(response.body)
        self.last_response = parsed
        if parsed.is_fault:
            fault = SoapFault.from_xml(parsed.body)
            portal_error = fault.to_portal_error()
            if portal_error is not None:
                raise portal_error
            raise SoapFaultError(fault)
        return_node = parsed.body.find("return")
        if return_node is None:
            return None
        from repro.soap.encoding import decode_value

        return decode_value(return_node)

    def __getattr__(self, name: str) -> Callable[..., Any]:
        if name.startswith("_"):
            raise AttributeError(name)

        def invoke(*params: Any) -> Any:
            return self.call(name, *params)

        invoke.__name__ = name
        return invoke
