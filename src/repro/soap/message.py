"""SOAP envelopes and faults."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.faults import PortalError
from repro.xmlutil.element import XmlElement, parse_xml
from repro.xmlutil.qname import QName

SOAP_ENV_NS = "http://schemas.xmlsoap.org/soap/envelope/"

_ENVELOPE = QName(SOAP_ENV_NS, "Envelope")
_HEADER = QName(SOAP_ENV_NS, "Header")
_BODY = QName(SOAP_ENV_NS, "Body")
_FAULT = QName(SOAP_ENV_NS, "Fault")


@dataclass
class SoapEnvelope:
    """A SOAP message: optional header entries plus exactly one body element."""

    body: XmlElement
    headers: list[XmlElement] = field(default_factory=list)

    def to_xml(self) -> XmlElement:
        envelope = XmlElement(_ENVELOPE)
        if self.headers:
            header = envelope.child(_HEADER)
            header.extend(self.headers)
        envelope.child(_BODY).append(self.body)
        return envelope

    def serialize(self) -> str:
        return self.to_xml().serialize(declaration=True)

    @staticmethod
    def parse(text: str | XmlElement) -> "SoapEnvelope":
        root = parse_xml(text) if isinstance(text, str) else text
        if root.tag != _ENVELOPE:
            raise ValueError(f"not a SOAP envelope: {root.tag}")
        headers: list[XmlElement] = []
        header = root.find(_HEADER)
        if header is not None:
            headers = list(header.children)
        body = root.find(_BODY)
        if body is None or not body.children:
            raise ValueError("SOAP envelope has no body element")
        if len(body.children) != 1:
            raise ValueError("SOAP body must contain exactly one element")
        return SoapEnvelope(body.children[0], headers)

    def header(self, tag: str | QName) -> XmlElement | None:
        """First header entry with the given tag (bare name = any namespace)."""
        if isinstance(tag, str) and not tag.startswith("{"):
            for entry in self.headers:
                if entry.tag.local == tag:
                    return entry
            return None
        qtag = tag if isinstance(tag, QName) else QName.parse(tag)
        for entry in self.headers:
            if entry.tag == qtag:
                return entry
        return None

    @property
    def is_fault(self) -> bool:
        return self.body.tag == _FAULT


@dataclass
class SoapFault:
    """A SOAP 1.1 fault.

    ``faultcode`` uses the standard qualified values (``Client``, ``Server``,
    ``MustUnderstand``, ``VersionMismatch``).  Portal implementation errors
    (:mod:`repro.faults`) travel inside ``detail`` as string entries, so any
    provider's client can reconstruct the exact :class:`PortalError` subclass.
    """

    faultcode: str = "Server"
    faultstring: str = "server fault"
    faultactor: str = ""
    detail: dict[str, str] = field(default_factory=dict)

    def to_xml(self) -> XmlElement:
        node = XmlElement(_FAULT)
        node.child("faultcode", text=f"SOAP-ENV:{self.faultcode}")
        node.child("faultstring", text=self.faultstring)
        if self.faultactor:
            node.child("faultactor", text=self.faultactor)
        if self.detail:
            detail = node.child("detail")
            for key, value in self.detail.items():
                detail.child("entry").set("key", key).set_text(value)
        return node

    @staticmethod
    def from_xml(node: XmlElement) -> "SoapFault":
        if node.tag != _FAULT:
            raise ValueError(f"not a SOAP fault element: {node.tag}")
        code = node.findtext("faultcode")
        detail: dict[str, str] = {}
        detail_node = node.find("detail")
        if detail_node is not None:
            for entry in detail_node.findall("entry"):
                detail[entry.get("key", "") or ""] = entry.text
        return SoapFault(
            faultcode=code.split(":", 1)[-1] or "Server",
            faultstring=node.findtext("faultstring"),
            faultactor=node.findtext("faultactor"),
            detail=detail,
        )

    @staticmethod
    def from_portal_error(err: PortalError, actor: str = "") -> "SoapFault":
        """Map an implementation error onto the common fault convention."""
        return SoapFault(
            faultcode="Server",
            faultstring=f"{err.code}: {err.message}",
            faultactor=actor,
            detail=err.to_detail(),
        )

    def to_portal_error(self) -> PortalError | None:
        """Reconstruct the portal error, if this fault carries one."""
        if "code" in self.detail:
            return PortalError.from_detail(self.detail)
        return None


class SoapFaultError(PortalError, RuntimeError):
    """Raised by :class:`repro.soap.client.SoapClient` on a fault response
    that carries no portal error detail.

    Classified into the portal vocabulary as ``Portal.UpstreamFault`` so
    that a service relaying a foreign fault still crosses the wire with a
    stable code (§3: services "must define and relay a common set of
    error messages").  Still a ``RuntimeError`` for callers that treat an
    unmapped fault as a programming-level failure.
    """

    code = "Portal.UpstreamFault"
    retryable = False  # the upstream fault carried no retry classification

    def __init__(self, fault: SoapFault):
        super().__init__(f"{fault.faultcode}: {fault.faultstring}")
        self.fault = fault

    @property
    def portal_error(self) -> PortalError | None:
        return self.fault.to_portal_error()


def request_envelope(
    service_ns: str,
    method: str,
    params: list[Any],
    headers: list[XmlElement] | None = None,
) -> SoapEnvelope:
    """Build an RPC-style request envelope for ``method(*params)``."""
    from repro.soap.encoding import encode_value

    body = XmlElement(QName(service_ns, method))
    for index, value in enumerate(params):
        body.append(encode_value(f"param{index}", value))
    return SoapEnvelope(body, list(headers or []))


def response_envelope(service_ns: str, method: str, result: Any) -> SoapEnvelope:
    """Build an RPC-style response envelope carrying ``result``."""
    from repro.soap.encoding import encode_value

    body = XmlElement(QName(service_ns, method + "Response"))
    body.append(encode_value("return", result))
    return SoapEnvelope(body)
