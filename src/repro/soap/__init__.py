"""A SOAP 1.1-subset stack.

The paper's services are "implemented in both Python and Java" over SOAP with
string-heavy interfaces.  This package provides the full invocation path:

- :mod:`repro.soap.encoding` — SOAP-encoding of typed values (strings, ints,
  doubles, booleans, base64, arrays, structs, XML literals, nils).
- :mod:`repro.soap.message` — envelope/header/body model and SOAP faults,
  including the mapping of the portal's common error vocabulary
  (:mod:`repro.faults`) onto fault details (§3's "consistent error
  messaging").
- :mod:`repro.soap.server` — :class:`SoapService`: a method registry plus the
  HTTP endpoint that dispatches SOAP requests to registered callables.
- :mod:`repro.soap.client` — :class:`SoapClient`: a dynamic proxy that
  encodes calls, decodes responses, re-raises portal errors, and supports
  pluggable header providers (used for SAML assertions in §4).
"""

from repro.soap.encoding import SOAP_ENC_NS, decode_value, encode_value
from repro.soap.message import (
    SOAP_ENV_NS,
    SoapEnvelope,
    SoapFault,
    SoapFaultError,
)
from repro.soap.server import SoapService
from repro.soap.client import SoapClient

__all__ = [
    "SOAP_ENC_NS",
    "SOAP_ENV_NS",
    "decode_value",
    "encode_value",
    "SoapEnvelope",
    "SoapFault",
    "SoapFaultError",
    "SoapService",
    "SoapClient",
]
