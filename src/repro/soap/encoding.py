"""SOAP-encoding of typed Python values.

Implements the subset of SOAP 1.1 Section-5 encoding that the portal
services exchange: simple types with ``xsi:type`` hints, arrays, structs,
``xsi:nil`` for nulls, base64 binary, and embedded XML-literal payloads (the
paper's job-submission and SRB services pass "an XML definition of a job ...
as an XML string"; the XML-literal form carries it without double-escaping,
while plain strings remain fully supported).
"""

from __future__ import annotations

import base64
from typing import Any

from repro.faults import PortalError
from repro.xmlutil.element import XmlElement
from repro.xmlutil.qname import QName

SOAP_ENC_NS = "http://schemas.xmlsoap.org/soap/encoding/"
XSI_NS = "http://www.w3.org/2001/XMLSchema-instance"
XSD_NS = "http://www.w3.org/2001/XMLSchema"

_TYPE_ATTR = QName(XSI_NS, "type")
_NIL_ATTR = QName(XSI_NS, "nil")
_ARRAY_TYPE_ATTR = QName(SOAP_ENC_NS, "arrayType")


class SoapEncodingError(PortalError, ValueError):
    """Raised when a value cannot be encoded or decoded.

    Part of the portal error vocabulary (it crosses the wire as
    ``Portal.Encoding``): an encoding failure inside one service's
    dispatch must reach the remote caller classified, not as an opaque
    ``Server`` fault.  Still a ``ValueError`` for callers that treat it
    as a plain bad-value signal.
    """

    code = "Portal.Encoding"
    retryable = False  # the same value will still not encode


def encode_value(name: str | QName, value: Any) -> XmlElement:
    """Encode a Python value as a SOAP-encoded element named *name*."""
    node = XmlElement(name)
    _encode_into(node, value)
    return node


def _set_type(node: XmlElement, xsd_type: str) -> None:
    node.attributes[_TYPE_ATTR] = xsd_type


def _encode_into(node: XmlElement, value: Any) -> None:
    if value is None:
        node.attributes[_NIL_ATTR] = "true"
    elif isinstance(value, bool):
        _set_type(node, "xsd:boolean")
        node.set_text("true" if value else "false")
    elif isinstance(value, int):
        _set_type(node, "xsd:int")
        node.set_text(str(value))
    elif isinstance(value, float):
        _set_type(node, "xsd:double")
        node.set_text(repr(value))
    elif isinstance(value, str):
        _set_type(node, "xsd:string")
        node.set_text(value)
    elif isinstance(value, bytes):
        _set_type(node, "xsd:base64Binary")
        node.set_text(base64.b64encode(value).decode("ascii"))
    elif isinstance(value, XmlElement):
        _set_type(node, "enc:XmlLiteral")
        node.content = [value]
    elif isinstance(value, (list, tuple)):
        _set_type(node, "enc:Array")
        node.attributes[_ARRAY_TYPE_ATTR] = f"xsd:anyType[{len(value)}]"
        for item in value:
            node.append(encode_value("item", item))
    elif isinstance(value, dict):
        _set_type(node, "enc:Struct")
        for key, item in value.items():
            if not isinstance(key, str):
                raise SoapEncodingError(
                    f"struct keys must be strings, got {type(key).__name__}"
                )
            node.append(encode_value(key, item))
    else:
        raise SoapEncodingError(
            f"cannot SOAP-encode value of type {type(value).__name__}"
        )


def decode_value(node: XmlElement) -> Any:
    """Decode a SOAP-encoded element back to a Python value."""
    if node.attributes.get(_NIL_ATTR) == "true":
        return None
    xsi_type = node.attributes.get(_TYPE_ATTR, "")
    local = xsi_type.split(":", 1)[-1] if xsi_type else ""
    if local == "XmlLiteral":
        children = node.children
        if len(children) != 1:
            raise SoapEncodingError("XmlLiteral must wrap exactly one element")
        return children[0]
    if local == "Array" or _ARRAY_TYPE_ATTR in node.attributes:
        return [decode_value(item) for item in node.children]
    if local == "Struct":
        return {child.tag.local: decode_value(child) for child in node.children}
    if local in ("boolean",):
        return node.text.strip() in ("true", "1")
    if local in ("int", "integer", "long", "short"):
        return int(node.text.strip())
    if local in ("double", "float", "decimal"):
        return float(node.text.strip())
    if local in ("base64Binary",):
        return base64.b64decode(node.text.strip())
    if local in ("string", "anyURI", "dateTime"):
        return node.text
    # untyped: infer structs from element children, else treat as string
    if node.children:
        return {child.tag.local: decode_value(child) for child in node.children}
    return node.text
