"""The seed-sweep explorer: many seeds, one verdict, machine-readable.

:func:`sweep` runs :class:`SimulationRun` for each seed, shrinks every
failure to a minimal schedule, and assembles a
``repro.simtest.report/v1`` JSON document.  The report is canonical
(sorted keys, no wall-clock anywhere) so the same seeds always produce a
byte-identical report — CI can diff two sweeps of the same commit and any
difference is a determinism bug, not noise.
"""

from __future__ import annotations

import json

from repro.simtest.harness import DEFAULT_TICKS, RunResult, SimulationRun
from repro.simtest.shrink import ShrinkResult, shrink_schedule

REPORT_SCHEMA = "repro.simtest.report/v1"


def run_seed(
    seed,
    *,
    ticks: int = DEFAULT_TICKS,
    schedule=None,
    canary: str = "",
) -> RunResult:
    """One seeded run with the standard oracle battery."""
    return SimulationRun(
        seed, ticks=ticks, schedule=schedule, canary=canary
    ).run()


def sweep(
    seeds,
    *,
    ticks: int = DEFAULT_TICKS,
    canary: str = "",
    shrink: bool = True,
    max_probes: int = 200,
    progress=None,
) -> dict:
    """Run every seed; returns the report/v1 dict.

    ``progress`` (optional callable taking one line of text) receives a
    human-oriented line per seed so long sweeps are watchable without
    touching the machine-readable output.
    """
    results: list[dict] = []
    failures = 0
    for seed in seeds:
        result = run_seed(seed, ticks=ticks, canary=canary)
        entry = result.to_dict()
        if not result.passed:
            failures += 1
            if shrink:
                shrunk: ShrinkResult = shrink_schedule(
                    seed,
                    result.schedule,
                    ticks=ticks,
                    canary=canary,
                    max_probes=max_probes,
                )
                entry["shrunk"] = shrunk.to_dict()
                entry["shrunk_schedule"] = json.loads(
                    shrunk.schedule.to_json()
                )
        results.append(entry)
        if progress is not None:
            status = "PASS" if result.passed else "FAIL"
            extra = ""
            if not result.passed:
                first = result.violations[0]
                extra = f"  [{first.oracle}] {first.message}"
                if shrink:
                    extra += (
                        f"  (shrunk {entry['shrunk']['original_events']}"
                        f" -> {entry['shrunk']['events']} events)"
                    )
            progress(f"seed {seed}: {status}{extra}")
    report = {
        "schema": REPORT_SCHEMA,
        "ticks": ticks,
        "canary": canary,
        "seeds": len(results),
        "failures": failures,
        "verdict": "pass" if failures == 0 else "fail",
        "results": results,
    }
    return report


def report_json(report: dict) -> str:
    """Canonical serialization: same report dict, same bytes, always."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"
