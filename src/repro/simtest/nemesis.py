"""The nemesis composition DSL: seeded, composable fault schedules.

A *nemesis* (the Jepsen term) is one source of adversity — partitions,
crash/restarts, crashes mid-write, breaker-tripping failure bursts, disk
exhaustion, clock stalls — that pre-generates its fault events for a run's
whole horizon from its own derived sub-seed.  :func:`compose` merges any
set of nemeses into one :class:`NemesisSchedule`: an explicit, serializable
list of :class:`NemesisEvent` in a *seeded total order* — events are
sorted by ``(t, id)`` where the ids are a seeded permutation, so two
events due at the same virtual tick always apply in the same order and the
whole schedule round-trips byte-identically through JSON.

Explicitness is the point: the schedule is data, so the shrinker
(:mod:`repro.simtest.shrink`) can delta-debug it down to a minimal failing
subsequence, and a printed seed+schedule re-runs byte-identically.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

SCHEDULE_SCHEMA = "repro.simtest.schedule/v1"

# -- event kinds (the vocabulary the schedule runner interprets) -------------

CRASH = "crash"
CRASH_MID_WRITE = "crash-mid-write"
PARTITION = "partition"
FLAP = "flap"
BREAKER_FLAP = "breaker-flap"
LATENCY_SPIKE = "latency-spike"
DISK_FULL = "disk-full"
CLOCK_STALL = "clock-stall"

EVENT_KINDS = (
    CRASH, CRASH_MID_WRITE, PARTITION, FLAP, BREAKER_FLAP, LATENCY_SPIKE,
    DISK_FULL, CLOCK_STALL,
)


@dataclass(frozen=True)
class NemesisEvent:
    """One scheduled fault: fires at tick ``t``, ties broken by ``id``."""

    t: float
    id: int
    kind: str
    args: dict

    def to_dict(self) -> dict:
        return {
            "t": self.t,
            "id": self.id,
            "kind": self.kind,
            "args": {key: self.args[key] for key in sorted(self.args)},
        }

    @staticmethod
    def from_dict(raw: dict) -> "NemesisEvent":
        return NemesisEvent(
            t=float(raw["t"]),
            id=int(raw["id"]),
            kind=str(raw["kind"]),
            args=dict(raw.get("args", {})),
        )

    def describe(self) -> str:
        args = " ".join(f"{k}={self.args[k]}" for k in sorted(self.args))
        return f"t={self.t:g} #{self.id} {self.kind} {args}".rstrip()


@dataclass(frozen=True)
class NemesisSchedule:
    """An explicit fault schedule: the unit the runner replays and the
    shrinker subsets.  ``events`` are already in application order."""

    seed: str
    events: tuple[NemesisEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def subset(self, events) -> "NemesisSchedule":
        """A schedule containing only *events* (same order) — shrinking."""
        keep = {(e.t, e.id) for e in events}
        return NemesisSchedule(
            seed=self.seed,
            events=tuple(e for e in self.events if (e.t, e.id) in keep),
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": SCHEDULE_SCHEMA,
                "seed": self.seed,
                "events": [event.to_dict() for event in self.events],
            },
            sort_keys=True,
            indent=2,
        ) + "\n"

    @staticmethod
    def from_json(text: str) -> "NemesisSchedule":
        raw = json.loads(text)
        if raw.get("schema") != SCHEDULE_SCHEMA:
            raise ValueError(
                f"not a {SCHEDULE_SCHEMA} document: {raw.get('schema')!r}"
            )
        events = tuple(
            NemesisEvent.from_dict(entry) for entry in raw.get("events", [])
        )
        return NemesisSchedule(seed=str(raw.get("seed", "")), events=events)

    def describe(self) -> str:
        return "\n".join(event.describe() for event in self.events)


# -- the nemeses --------------------------------------------------------------


class Nemesis:
    """One adversity source.  Subclasses draw their events for the whole
    horizon from the PRNG :func:`compose` hands them (derived from the
    schedule seed and the nemesis name, so adding a nemesis never perturbs
    the schedules of the others)."""

    name = "nemesis"

    def generate(
        self, rng: random.Random, ticks: int
    ) -> list[tuple[float, str, dict]]:
        """The events as ``(tick, kind, args)`` triples."""
        raise NotImplementedError

    def _times(
        self, rng: random.Random, ticks: int, every: tuple[float, float]
    ) -> list[float]:
        """Seeded firing times: accumulate U(*every*) gaps over the horizon."""
        times: list[float] = []
        t = rng.uniform(*every)
        while t < ticks:
            times.append(round(t, 6))
            t += rng.uniform(*every)
        return times


class PartitionNemesis(Nemesis):
    """Region cuts: full, one-way (asymmetric loss), or partial loss."""

    name = "partition"

    def __init__(
        self,
        regions: tuple[str, ...],
        *,
        every: tuple[float, float] = (8.0, 16.0),
        duration: tuple[float, float] = (2.0, 6.0),
        modes: tuple[str, ...] = ("full", "oneway", "partial"),
        loss: float = 0.75,
    ):
        self.regions = tuple(sorted(regions))
        self.every = every
        self.duration = duration
        self.modes = tuple(modes)
        self.loss = loss

    def generate(self, rng, ticks):
        events = []
        for t in self._times(rng, ticks, self.every):
            if len(self.regions) < 2:
                break
            region_a, region_b = rng.sample(self.regions, 2)
            mode = self.modes[rng.randrange(len(self.modes))]
            events.append((t, PARTITION, {
                "a": region_a,
                "b": region_b,
                "mode": mode,
                "duration": round(rng.uniform(*self.duration), 6),
                "loss": self.loss,
            }))
        return events


class CrashNemesis(Nemesis):
    """Crash/restart: the host dies, its disk survives, a rebuilder replays
    the journals when the outage ends."""

    name = "crash"

    def __init__(
        self,
        hosts: tuple[str, ...],
        *,
        every: tuple[float, float] = (10.0, 20.0),
        outage: tuple[float, float] = (2.0, 5.0),
    ):
        self.hosts = tuple(sorted(hosts))
        self.every = every
        self.outage = outage

    def generate(self, rng, ticks):
        return [
            (t, CRASH, {
                "host": self.hosts[rng.randrange(len(self.hosts))],
                "outage": round(rng.uniform(*self.outage), 6),
            })
            for t in self._times(rng, ticks, self.every)
        ]


class MidWriteCrashNemesis(Nemesis):
    """Arm a one-shot process death in the middle of the next batch run —
    the write-ahead discipline's sharpest test."""

    name = "crash-mid-write"

    def __init__(self, host: str, *, every: tuple[float, float] = (12.0, 24.0)):
        self.host = host
        self.every = every

    def generate(self, rng, ticks):
        return [
            (t, CRASH_MID_WRITE, {"host": self.host})
            for t in self._times(rng, ticks, self.every)
        ]


class FlapNemesis(Nemesis):
    """Link flapping: a host alternates reachable/unreachable on a cycle."""

    name = "flap"

    def __init__(
        self,
        hosts: tuple[str, ...],
        *,
        every: tuple[float, float] = (14.0, 26.0),
        phases: tuple[float, float] = (1.0, 3.0),
        duration: tuple[float, float] = (3.0, 6.0),
    ):
        self.hosts = tuple(sorted(hosts))
        self.every = every
        self.phases = phases
        self.duration = duration

    def generate(self, rng, ticks):
        return [
            (t, FLAP, {
                "host": self.hosts[rng.randrange(len(self.hosts))],
                "up": self.phases[0],
                "down": self.phases[1],
                "duration": round(rng.uniform(*self.duration), 6),
            })
            for t in self._times(rng, ticks, self.every)
        ]


class BreakerFlapNemesis(Nemesis):
    """Failure bursts sized to trip circuit breakers, spaced so they
    half-open and recover in between — the breaker state machine under
    churn."""

    name = "breaker-flap"

    def __init__(
        self,
        hosts: tuple[str, ...],
        *,
        every: tuple[float, float] = (5.0, 11.0),
        size: tuple[int, int] = (2, 5),
    ):
        self.hosts = tuple(sorted(hosts))
        self.every = every
        self.size = size

    def generate(self, rng, ticks):
        return [
            (t, BREAKER_FLAP, {
                "host": self.hosts[rng.randrange(len(self.hosts))],
                "size": rng.randint(*self.size),
            })
            for t in self._times(rng, ticks, self.every)
        ]


class LatencySpikeNemesis(Nemesis):
    """Garbage-collection-pause-shaped latency added to one host."""

    name = "latency-spike"

    def __init__(
        self,
        hosts: tuple[str, ...],
        *,
        every: tuple[float, float] = (6.0, 13.0),
        magnitude: tuple[float, float] = (0.5, 2.5),
    ):
        self.hosts = tuple(sorted(hosts))
        self.every = every
        self.magnitude = magnitude

    def generate(self, rng, ticks):
        return [
            (t, LATENCY_SPIKE, {
                "host": self.hosts[rng.randrange(len(self.hosts))],
                "magnitude": round(rng.uniform(*self.magnitude), 6),
            })
            for t in self._times(rng, ticks, self.every)
        ]


class DiskFullNemesis(Nemesis):
    """Disk exhaustion: journal appends refuse with the taxonomy's
    retryable ``Portal.ResourceExhausted`` until space frees up."""

    name = "disk-full"

    def __init__(
        self,
        hosts: tuple[str, ...],
        *,
        every: tuple[float, float] = (15.0, 28.0),
        duration: tuple[float, float] = (2.0, 4.0),
    ):
        self.hosts = tuple(sorted(hosts))
        self.every = every
        self.duration = duration

    def generate(self, rng, ticks):
        return [
            (t, DISK_FULL, {
                "host": self.hosts[rng.randrange(len(self.hosts))],
                "duration": round(rng.uniform(*self.duration), 6),
            })
            for t in self._times(rng, ticks, self.every)
        ]


class ClockStallNemesis(Nemesis):
    """A global virtual-time jump (checkpoint stall, VM pause): deadline
    budgets burn, flap phases shift, breaker cooldowns expire at once."""

    name = "clock-stall"

    def __init__(
        self,
        *,
        every: tuple[float, float] = (9.0, 19.0),
        stall: tuple[float, float] = (1.0, 4.0),
    ):
        self.every = every
        self.stall = stall

    def generate(self, rng, ticks):
        return [
            (t, CLOCK_STALL, {"seconds": round(rng.uniform(*self.stall), 6)})
            for t in self._times(rng, ticks, self.every)
        ]


# -- composition --------------------------------------------------------------


class Composition:
    """An ordered set of nemeses that generates merged seeded schedules."""

    def __init__(self, nemeses: tuple[Nemesis, ...]):
        self.nemeses = tuple(nemeses)

    def schedule(self, seed, ticks: int) -> NemesisSchedule:
        """The merged schedule for *seed* over *ticks* virtual-tick horizon.

        Each nemesis draws from ``Random(f"{seed}/{index}/{name}")`` — the
        string-seeded PRNG is stable across processes — so the same seed
        always yields the same events, and adding or reordering one nemesis
        never perturbs what the others generate.  Event ids are a seeded
        permutation of ``1..n``; the final ``(t, id)`` sort is the
        schedule's deterministic same-tick tie-break.
        """
        raw: list[tuple[float, str, dict]] = []
        for index, nemesis in enumerate(self.nemeses):
            sub = random.Random(f"{seed}/{index}/{nemesis.name}")
            raw.extend(nemesis.generate(sub, ticks))
        order = list(range(1, len(raw) + 1))
        random.Random(f"{seed}/event-order").shuffle(order)
        events = [
            NemesisEvent(t=t, id=order[i], kind=kind, args=dict(args))
            for i, (t, kind, args) in enumerate(raw)
        ]
        events.sort(key=lambda event: (event.t, event.id))
        return NemesisSchedule(seed=str(seed), events=tuple(events))


def compose(*nemeses: Nemesis) -> Composition:
    """Bundle nemeses into a schedule generator: the DSL's entry point.

    ::

        compose(
            PartitionNemesis(("iu", "sdsc")),
            CrashNemesis(("globusrun.sdsc.edu",)),
            DiskFullNemesis(("globusrun.sdsc.edu",)),
        ).schedule(seed=7, ticks=30)
    """
    return Composition(tuple(nemeses))
