"""Failing-schedule shrinking: delta-debug a nemesis schedule to a minimum.

When a seed fails, the raw schedule usually carries dozens of events, most
of them irrelevant.  :func:`shrink_schedule` runs Zeller's ddmin over the
event list: split into chunks, try dropping each chunk (and each chunk's
complement), keep any subset that still violates an oracle, refine the
granularity, repeat until 1-minimal — removing *any single remaining
event* makes the failure disappear.

Every probe is a full deterministic re-run of :class:`SimulationRun` with
the candidate subset (``stop_on_violation=True``, since only fail/pass
matters), so the shrunk schedule is guaranteed to reproduce — print it,
re-run it, same violation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simtest.harness import SimulationRun
from repro.simtest.nemesis import NemesisSchedule


@dataclass
class ShrinkResult:
    """The minimal failing schedule plus the search's accounting."""

    schedule: NemesisSchedule
    violations: list
    probes: int
    original_events: int

    @property
    def events(self) -> int:
        return len(self.schedule)

    def to_dict(self) -> dict:
        return {
            "events": self.events,
            "original_events": self.original_events,
            "probes": self.probes,
            "violations": [v.to_dict() for v in self.violations],
        }


def _probe(
    seed: str, ticks: int, schedule: NemesisSchedule, events, canary: str
):
    """Re-run with only *events*; returns the violations (empty = passed)."""
    run = SimulationRun(
        seed,
        ticks=ticks,
        schedule=schedule.subset(events),
        canary=canary,
        stop_on_violation=True,
    )
    return run.run().violations


def shrink_schedule(
    seed,
    schedule: NemesisSchedule,
    *,
    ticks: int,
    canary: str = "",
    max_probes: int = 200,
) -> ShrinkResult:
    """ddmin: the smallest event subset that still violates an oracle.

    ``max_probes`` bounds the re-run budget; the search returns the best
    subset found so far if it runs out (still a valid repro, maybe not
    1-minimal).
    """
    seed = str(seed)
    events = list(schedule.events)
    probes = 0
    violations = _probe(seed, ticks, schedule, events, canary)
    probes += 1
    if not violations:
        # the full schedule does not fail — nothing to shrink
        return ShrinkResult(
            schedule=schedule.subset(events),
            violations=[],
            probes=probes,
            original_events=len(schedule),
        )

    granularity = 2
    while len(events) >= 2 and probes < max_probes:
        chunk = max(1, len(events) // granularity)
        chunks = [events[i:i + chunk] for i in range(0, len(events), chunk)]
        reduced = False
        # try each chunk alone, then each complement
        candidates = [list(c) for c in chunks]
        if len(chunks) > 2:
            for c in chunks:
                keys = set_ids(c)
                candidates.append(
                    [e for e in events if (e.t, e.id) not in keys]
                )
        for candidate in candidates:
            if not candidate or len(candidate) == len(events):
                continue
            if probes >= max_probes:
                break
            result = _probe(seed, ticks, schedule, candidate, canary)
            probes += 1
            if result:
                events = candidate
                violations = result
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)

    # final 1-minimality pass: drop single events while anything sticks
    changed = True
    while changed and len(events) > 1 and probes < max_probes:
        changed = False
        for drop in list(events):
            candidate = [e for e in events if e is not drop]
            if probes >= max_probes:
                break
            result = _probe(seed, ticks, schedule, candidate, canary)
            probes += 1
            if result:
                events = candidate
                violations = result
                changed = True
                break

    return ShrinkResult(
        schedule=schedule.subset(events),
        violations=violations,
        probes=probes,
        original_events=len(schedule),
    )


def set_ids(events) -> set:
    """Identity set for complement computation (events are frozen, but the
    same (t, id) pair never appears twice in one schedule)."""
    return {(e.t, e.id) for e in events}
