"""The deterministic simulation harness: one seeded run of the whole portal.

:class:`SimulationRun` stands up the full :class:`PortalDeployment`
(observability on, durable journals, two replicated regions), drives a
realistic portal workload — job submissions with idempotency keys,
metascheduler placements under deadlines, quorum context writes, registry
mutations, anti-entropy gossip — while a :class:`NemesisSchedule` injects
faults, and checks every registered invariant oracle after every tick.

Everything is derived from one seed: the virtual network, the retry
jitter, the nemesis schedule, the observability id generator.  Two runs
with the same seed and schedule produce byte-identical
:class:`RunResult` digests — which is what makes a failing seed a *repro*
and lets :mod:`repro.simtest.shrink` bisect schedules meaningfully.

A *canary* deliberately re-introduces a known bug class (e.g. acking a
batch before its journal record is durable) so the sweep can prove the
oracles actually catch what they claim to.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.faults import PortalError
from repro.grid.jobs import JobSpec
from repro.loadmgmt.metascheduler import METASCHEDULER_NAMESPACE
from repro.observability import Observability, default_slos
from repro.portal.uiserver import PortalDeployment
from repro.resilience.chaos import SCHEDULED_ONLY, ChaosMonkey
from repro.resilience.policy import RetryPolicy, set_hop_listener
from repro.services.jobsubmit import (
    GLOBUSRUN_NAMESPACE,
    deploy_globusrun,
    jobs_to_xml,
)
from repro.simtest import nemesis as nem
from repro.simtest.nemesis import (
    BreakerFlapNemesis,
    ClockStallNemesis,
    CrashNemesis,
    DiskFullNemesis,
    FlapNemesis,
    LatencySpikeNemesis,
    MidWriteCrashNemesis,
    NemesisSchedule,
    PartitionNemesis,
    compose,
)
from repro.simtest.oracles import Oracle, Violation, registered_oracles
from repro.soap.client import SoapClient
from repro.soap.message import SoapFaultError
from repro.transport.network import ServiceCrash, TransportError, VirtualNetwork

RESULT_SCHEMA = "repro.simtest.result/v1"

GLOBUSRUN_HOST = "globusrun.sdsc.edu"
REGIONS = ("iu", "sdsc")
DEFAULT_TICKS = 30
MAX_HEAL_ROUNDS = 12
#: trace-collector ring bound (spans) — 200-seed sweeps must not grow
#: memory without bound, and the bound must be generous enough that a
#: normal run never evicts (eviction order is deterministic regardless)
COLLECTOR_CAPACITY = 4096

#: errors the workload absorbs — the *system* may degrade under faults;
#: only the oracles decide whether an invariant actually broke
WORKLOAD_ERRORS = (PortalError, SoapFaultError, TransportError, ConnectionError)


# ---------------------------------------------------------------------------
# canaries: deliberately re-introduced bug classes the oracles must catch
# ---------------------------------------------------------------------------


class _UnflushedJournal:
    """The ack-before-fsync bug, as a journal: appends are buffered in
    process memory and never reach the host disk.

    The running process sees its own writes (``records()`` includes the
    buffer), so everything *looks* healthy — until a crash, when the fresh
    incarnation replays only what the disk actually holds and every batch
    acked from the buffer is gone.
    """

    def __init__(self, inner):
        self.disk = inner.disk
        self.name = inner.name
        self.clock = inner.clock
        self._inner = inner
        self._buffered: list = []

    def append(self, kind: str, **data):
        from repro.durability.journal import (
            GENESIS_CRC,
            JournalRecord,
            _crc,
        )
        from repro.faults import ResourceExhaustedError

        if getattr(self.disk, "full", False):
            raise ResourceExhaustedError(
                f"disk on {self.disk.host!r} is full; "
                f"cannot append to journal {self.name!r}",
                {"host": self.disk.host, "journal": self.name},
            )
        log = list(self._inner.records()) + self._buffered
        prev_crc = log[-1].crc if log else GENESIS_CRC
        record = JournalRecord(
            seq=len(log) + 1,
            kind=kind,
            data=data,
            t=self.clock.now if self.clock is not None else 0.0,
        )
        record = JournalRecord(
            seq=record.seq, kind=record.kind, data=record.data, t=record.t,
            crc=_crc(record.payload(prev_crc)),
        )
        self._buffered.append(record)  # never hits the disk
        return record

    def records(self):
        return tuple(self._inner.records()) + tuple(self._buffered)

    def __len__(self):
        return len(self.records())


def _canary_ack_before_fsync(world: "SimWorld") -> None:
    """Swap the globusrun journal for the buffering impostor (re-applied
    after every restart, as a real regression would be)."""
    service = world.deployment.globusrun
    if service.journal is not None and not isinstance(
        service.journal, _UnflushedJournal
    ):
        service.journal = _UnflushedJournal(service.journal)


CANARIES = {
    "ack-before-fsync": _canary_ack_before_fsync,
}


# ---------------------------------------------------------------------------
# the simulated world
# ---------------------------------------------------------------------------


@dataclass
class SimWorld:
    """Everything an oracle may inspect: the omniscient observer's view."""

    network: VirtualNetwork
    deployment: PortalDeployment
    monkey: ChaosMonkey
    #: batch ids the globusrun endpoint acknowledged to a client
    acked_batches: list = field(default_factory=list)
    #: context op seqs the quorum coordinator acknowledged
    acked_context: list = field(default_factory=list)
    #: every dispatched SOAP hop's (enclosing, inbound) deadline pair
    hop_records: list = field(default_factory=list)
    #: every ProvenanceStore a workflow run produced (one per journal)
    workflow_stores: list = field(default_factory=list)
    #: (store, sealed record address) for every stage completion the
    #: executor acknowledged in a WorkflowResult
    acked_stage_records: list = field(default_factory=list)
    workflows_run: int = 0
    workflow_stages_ok: int = 0
    workflow_stages_failed: int = 0
    restarts: int = 0
    client_errors: int = 0
    phase: str = "build"
    _clients: list = field(default_factory=list)
    _hop_cursor: int = 0
    _resolved: set = field(default_factory=set)
    _disk_full_until: dict = field(default_factory=dict)

    @property
    def clock(self):
        return self.network.clock

    @property
    def collector(self):
        obs = self.deployment.observability
        return obs.collector if obs is not None else None

    @property
    def slo_engine(self):
        obs = self.deployment.observability
        return obs.slo if obs is not None else None

    @property
    def context_store(self):
        replication = self.deployment.replication
        return replication.context if replication is not None else None

    def clients(self) -> list:
        return list(self._clients)

    def new_hop_records(self) -> list:
        """Hop records added since the last call (a consuming cursor, so
        tick oracles never re-flag an already-reported hop)."""
        fresh = self.hop_records[self._hop_cursor:]
        self._hop_cursor = len(self.hop_records)
        return fresh

    def spans_near(self, limit: int = 3) -> list:
        """The most recent trace spans — attached to violation reports so
        a failure comes with the telemetry describing it."""
        collector = self.collector
        if collector is None:
            return []
        return [
            {
                "name": span.get("name", ""),
                "service": span.get("service", ""),
                "start": span.get("start", 0.0),
                "end": span.get("end", 0.0),
            }
            for span in collector.spans()[-limit:]
        ]

    def restart(self, host: str) -> None:
        """Supervisor semantics: the process died, bounce it from disk."""
        rebuilder = self.deployment.rebuilders.get(host)
        if rebuilder is None:
            return
        if self.network.is_up(host):
            self.network.take_down(host)
        self.network.bring_up(host)
        rebuilder()
        self.restarts += 1


# ---------------------------------------------------------------------------
# run result
# ---------------------------------------------------------------------------


@dataclass
class RunResult:
    """One seeded run's verdict, canonically serializable."""

    seed: str
    ticks: int
    schedule: NemesisSchedule
    violations: list
    stats: dict

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        body = {
            "schema": RESULT_SCHEMA,
            "seed": self.seed,
            "ticks": self.ticks,
            "verdict": "pass" if self.passed else "fail",
            "events": len(self.schedule),
            "violations": [v.to_dict() for v in self.violations],
            "stats": {key: self.stats[key] for key in sorted(self.stats)},
        }
        body["digest"] = hashlib.sha256(
            json.dumps(body, sort_keys=True).encode()
        ).hexdigest()
        return body


# ---------------------------------------------------------------------------
# the default nemesis battery
# ---------------------------------------------------------------------------


def default_composition(regions: tuple[str, ...] = REGIONS):
    """The standard adversity mix for a portal deployment."""
    replica_hosts = tuple(f"replica.{region}.portal.org" for region in regions)
    crashable = (GLOBUSRUN_HOST,) + replica_hosts
    return compose(
        PartitionNemesis(regions),
        CrashNemesis(crashable),
        MidWriteCrashNemesis(GLOBUSRUN_HOST),
        FlapNemesis(replica_hosts),
        BreakerFlapNemesis((GLOBUSRUN_HOST,)),
        LatencySpikeNemesis(crashable),
        DiskFullNemesis((GLOBUSRUN_HOST,)),
        ClockStallNemesis(),
    )


# ---------------------------------------------------------------------------
# the run
# ---------------------------------------------------------------------------


class SimulationRun:
    """One deterministic simulation: seed in, verdict out."""

    def __init__(
        self,
        seed,
        *,
        ticks: int = DEFAULT_TICKS,
        schedule: NemesisSchedule | None = None,
        canary: str = "",
        oracles: list[Oracle] | None = None,
        stop_on_violation: bool = False,
    ):
        self.seed = str(seed)
        self.ticks = ticks
        self.schedule = (
            schedule
            if schedule is not None
            else default_composition().schedule(self.seed, ticks)
        )
        if canary and canary not in CANARIES:
            raise ValueError(
                f"unknown canary {canary!r}; have {sorted(CANARIES)}"
            )
        self.canary = canary
        self.oracles = oracles if oracles is not None else registered_oracles()
        #: shrink probes set this: stop at the first violation instead of
        #: collecting the full picture, since only fail/pass matters there
        self.stop_on_violation = stop_on_violation

    # -- world assembly -------------------------------------------------------

    def _seed_int(self, label: str) -> int:
        digest = hashlib.sha256(f"{self.seed}/{label}".encode()).hexdigest()
        return int(digest[:12], 16)

    def _build_world(self) -> SimWorld:
        network = VirtualNetwork(seed=self._seed_int("network"))
        deployment = PortalDeployment.build(
            network,
            observe=True,
            observe_seed=self._seed_int("observe"),
            sampling=True,
            collector_capacity=COLLECTOR_CAPACITY,
            slos=default_slos(),
            regions=REGIONS,
            replication_seed=self._seed_int("replication"),
            durable=True,
        )
        replication = deployment.replication
        monkey = ChaosMonkey(
            network,
            [GLOBUSRUN_HOST] + list(replication.hosts()),
            seed=self._seed_int("chaos"),
            config=SCHEDULED_ONLY,
            log=deployment.resilience,
            regions=replication.region_groups(),
        )
        world = SimWorld(network=network, deployment=deployment, monkey=monkey)
        # wrap every rebuilder so a chaos repair re-applies the canary and
        # counts as a restart — a regression ships in the binary, so it
        # comes back with every fresh process
        for host, rebuilder in sorted(deployment.rebuilders.items()):
            def wrapped(original=rebuilder):
                original()
                world.restarts += 1
                self._apply_canary(world)
            monkey.rebuilders[host] = wrapped
            deployment.rebuilders[host] = wrapped
        self._apply_canary(world)
        self._build_clients(world)
        return world

    def _apply_canary(self, world: SimWorld) -> None:
        if self.canary:
            CANARIES[self.canary](world)

    def _build_clients(self, world: SimWorld) -> None:
        endpoints = world.deployment.endpoints
        submit = SoapClient(
            world.network,
            endpoints["globusrun"],
            GLOBUSRUN_NAMESPACE,
            source="ui.gridportal.org",
            retry_policy=RetryPolicy(max_attempts=3),
            retry_seed=self._seed_int("submit-retry"),
            service_name="globusrun",
        )
        meta = SoapClient(
            world.network,
            endpoints["metascheduler"],
            METASCHEDULER_NAMESPACE,
            source="ui.gridportal.org",
            retry_policy=RetryPolicy(max_attempts=2),
            retry_seed=self._seed_int("meta-retry"),
            service_name="metascheduler",
        )
        # deliberately retry-free: the crash-mid-write driver must *see*
        # the ServiceCrash so it can play supervisor and bounce the host
        plain = SoapClient(
            world.network,
            endpoints["globusrun"],
            GLOBUSRUN_NAMESPACE,
            source="ui.gridportal.org",
            service_name="globusrun-plain",
        )
        world._clients = [submit, meta, plain]
        self._submit, self._meta, self._plain = submit, meta, plain
        from repro.shell.runtime import WorkflowRuntime

        self._wf_runtime = WorkflowRuntime.from_deployment(world.deployment)

    # -- fault-event application ----------------------------------------------

    def _apply_event(self, world: SimWorld, event) -> None:
        monkey, network = world.monkey, world.network
        args = event.args
        if event.kind == nem.PARTITION:
            monkey.inject_partition(
                args["a"], args["b"], args.get("mode", "full"),
                float(args["duration"]), loss=args.get("loss"),
            )
        elif event.kind == nem.CRASH:
            host = args["host"]
            if network.is_up(host):
                monkey.inject_take_down(host, float(args["outage"]))
        elif event.kind == nem.CRASH_MID_WRITE:
            self._crash_mid_write(world, args["host"])
        elif event.kind == nem.FLAP:
            monkey.inject_flap(
                args["host"], float(args["up"]), float(args["down"]),
                float(args["duration"]),
            )
        elif event.kind == nem.BREAKER_FLAP:
            monkey.inject_fault_burst(args["host"], int(args["size"]))
        elif event.kind == nem.LATENCY_SPIKE:
            monkey.inject_latency_spike(args["host"], float(args["magnitude"]))
        elif event.kind == nem.DISK_FULL:
            host = args["host"]
            network.disk(host).set_full(True)
            world._disk_full_until[host] = (
                world.clock.now + float(args["duration"])
            )
        elif event.kind == nem.CLOCK_STALL:
            world.clock.advance(float(args["seconds"]))
        else:
            raise ValueError(f"unknown nemesis event kind {event.kind!r}")

    def _crash_mid_write(self, world: SimWorld, host: str) -> None:
        """Kill the globusrun process in the middle of resolving a batch,
        then play supervisor: restart it from its surviving disk."""
        service = world.deployment.globusrun
        pending = [
            batch for batch in world.acked_batches
            if batch not in world._resolved
        ]
        if not pending:
            try:
                batch = self._plain.call(
                    "submit_async", self._jobs_xml(world, "midwrite", 2),
                    idempotency_key=f"mid-{self.seed}-{world.clock.now:.0f}",
                )
                world.acked_batches.append(batch)
                pending = [batch]
            except WORKLOAD_ERRORS:
                world.client_errors += 1
                return
        service.crash_after_jobs = 1
        try:
            self._plain.call("result", pending[0])
            world._resolved.add(pending[0])
        except ServiceCrash:
            world.restart(host)
        except WORKLOAD_ERRORS:
            world.client_errors += 1
        finally:
            service.crash_after_jobs = None

    def _clear_expired_disk_full(self, world: SimWorld) -> None:
        for host in sorted(world._disk_full_until):
            if world.clock.now >= world._disk_full_until[host]:
                world.network.disk(host).set_full(False)
                del world._disk_full_until[host]

    # -- workload -------------------------------------------------------------

    def _jobs_xml(self, world: SimWorld, name: str, count: int = 1) -> str:
        contacts = sorted(world.deployment.testbed)
        contact = contacts[len(world.acked_batches) % len(contacts)]
        return jobs_to_xml([
            (contact, JobSpec(
                name=f"{name}-{i}", executable="echo", arguments=[name],
            ))
            for i in range(count)
        ])

    def _workload(self, world: SimWorld, tick: int) -> None:
        replication = world.deployment.replication
        store = world.context_store
        # registry churn: alternate which region takes the write, so
        # anti-entropy always has something to reconcile
        region = REGIONS[tick % len(REGIONS)]
        replication.nodes[region].registry.soap_register(
            f"/services/sim/{self.seed}/{tick}",
            {"tick": str(tick), "region": region},
        )
        if tick % 2 == 0 and store is not None:
            try:
                seq = store.create(f"/sim/{self.seed}/ctx-{tick}")
                world.acked_context.append(seq)
            except WORKLOAD_ERRORS:
                world.client_errors += 1
        if tick % 2 == 1:
            try:
                batch = self._submit.call(
                    "submit_async", self._jobs_xml(world, f"t{tick}"),
                    timeout=20.0,
                    idempotency_key=f"sim-{self.seed}-{tick}",
                )
                world.acked_batches.append(batch)
            except WORKLOAD_ERRORS:
                world.client_errors += 1
        if tick % 4 == 0:
            # the metascheduler path: a deadline-carrying hop that fans out
            # into nested placement + submission hops — the budget oracle's
            # natural prey
            try:
                self._meta.call(
                    "run_xml", self._jobs_xml(world, f"meta{tick}"),
                    timeout=30.0,
                )
            except WORKLOAD_ERRORS:
                world.client_errors += 1
        if tick % 3 == 0:
            pending = [
                batch for batch in world.acked_batches
                if batch not in world._resolved
            ]
            if pending:
                try:
                    self._submit.call("result", pending[0], timeout=20.0)
                    world._resolved.add(pending[0])
                except WORKLOAD_ERRORS:
                    world.client_errors += 1
        if tick % 3 == 2:
            replication.run_anti_entropy(1)
        if tick % 6 == 3:
            # a three-stage pipeline through the workflow engine: placement
            # -> durable submission -> SRB collect, journaled on the UI
            # host's disk; the workflow-provenance oracle audits its stores
            self._run_workflow(world, tick)
        # one SLO evaluation per tick: snapshot the RED counters into a
        # time bucket and transition burn-rate alerts, so the slo-burn
        # oracle checks alert state at the tick that changed it
        engine = world.slo_engine
        if engine is not None:
            engine.evaluate()

    def _run_workflow(self, world: SimWorld, tick: int) -> None:
        """One seeded pipeline run through :mod:`repro.shell`.

        A :class:`ServiceCrash` surfacing mid-DAG kills the executor;
        the harness plays supervisor — bounce the host, open a *new*
        executor over the same journal, and let recovery re-drive only
        the unfinished stages.
        """
        from repro.durability.journal import Journal
        from repro.shell import (
            GlobusrunStage,
            MetaScheduleStage,
            SrbPutStage,
            Workflow,
            WorkflowExecutor,
            const,
            ref,
        )

        jobs = jobs_to_xml([
            ("", JobSpec(
                name=f"wf{tick}", executable="echo", arguments=[f"wf-{tick}"],
            ))
        ])
        workflow = Workflow("sim-pipeline", [
            MetaScheduleStage("place", inputs={"jobs": const(jobs)}),
            GlobusrunStage("run", inputs={"jobs": ref("place", "placed")}),
            SrbPutStage(
                "collect",
                path=f"/home/portal/sim-wf-{tick}.out",
                inputs={"results": ref("run", "results")},
            ),
        ])
        disk = world.network.disk("ui.gridportal.org")
        load = world.deployment.load
        admission = load.controllers.get("Globusrun") if load else None

        def attempt():
            journal = Journal(disk, f"wf-sim-{tick}", clock=world.clock)
            executor = WorkflowExecutor(
                workflow,
                self._wf_runtime,
                journal=journal,
                run_id=f"sim-{self.seed}-wf-{tick}",
                seed=self._seed_int(f"wf-{tick}"),
                admission=admission,
                max_width=2,
            )
            return executor, executor.run()

        try:
            executor, result = attempt()
        except ServiceCrash:
            world.restart(GLOBUSRUN_HOST)
            try:
                executor, result = attempt()  # resume from the journal
            except (ServiceCrash, *WORKLOAD_ERRORS):
                world.client_errors += 1
                return
        except WORKLOAD_ERRORS:
            world.client_errors += 1
            return
        world.workflow_stores.append(executor.store)
        world.workflows_run += 1
        world.workflow_stages_ok += len(result.completed)
        world.workflow_stages_failed += len(result.failed)
        for stage in sorted(result.completed):
            world.acked_stage_records.append(
                (executor.store, result.completed[stage])
            )

    # -- oracle plumbing ------------------------------------------------------

    def _check(self, world, phase: str, violations, seen) -> None:
        for oracle in self.oracles:
            if phase not in oracle.when:
                continue
            for violation in oracle.check(world):
                key = (violation.oracle, violation.message)
                if key in seen:
                    continue
                seen.add(key)
                violations.append(violation)

    # -- heal -----------------------------------------------------------------

    def _heal(self, world: SimWorld) -> None:
        world.phase = "heal"
        world.monkey.heal_all()
        world.network.heal_partitions()
        for disk in world.network.disks():
            disk.set_full(False)
        world._disk_full_until.clear()
        replication = world.deployment.replication
        rounds = 0
        while not replication.converged() and rounds < MAX_HEAL_ROUNDS:
            replication.run_anti_entropy(1)
            world.clock.advance(1.0)
            rounds += 1
        store = world.context_store
        if store is not None:
            store.sync_all()
        engine = world.slo_engine
        if engine is not None:
            # drain the burn-rate windows on the healed clock: with the
            # faults gone and no new bad requests, every alert's fast
            # window must empty within a few rounds — "alerts clear after
            # heal" is an invariant the slo-burn oracle holds us to
            engine.evaluate()
            rounds = 0
            while engine.active and rounds < MAX_HEAL_ROUNDS:
                world.clock.advance(1.0)
                engine.evaluate()
                rounds += 1

    # -- entry point ----------------------------------------------------------

    def run(self) -> RunResult:
        world = self._build_world()
        violations: list[Violation] = []
        seen: set = set()
        set_hop_listener(world.hop_records.append)
        try:
            world.phase = "run"
            pending = list(self.schedule.events)
            index = 0
            for tick in range(1, self.ticks + 1):
                world.clock.advance(1.0)
                while index < len(pending) and pending[index].t <= tick:
                    self._apply_event(world, pending[index])
                    index += 1
                world.monkey.apply_due()
                self._clear_expired_disk_full(world)
                self._workload(world, tick)
                self._check(world, "tick", violations, seen)
                if violations and self.stop_on_violation:
                    break
            if not (violations and self.stop_on_violation):
                self._heal(world)
                world.phase = "final"
                self._check(world, "final", violations, seen)
        finally:
            set_hop_listener(None)
            Observability.uninstall(world.network)
        obs = world.deployment.observability
        engine = obs.slo if obs is not None else None
        sampler = obs.sampler if obs is not None else None
        stats = {
            "faults_injected": world.monkey.faults_injected,
            "partitions_injected": world.monkey.partitions_injected,
            "restarts": world.restarts,
            "client_errors": world.client_errors,
            "acked_batches": len(world.acked_batches),
            "acked_context": len(world.acked_context),
            "workflows_run": world.workflows_run,
            "workflow_stages_ok": world.workflow_stages_ok,
            "workflow_stages_failed": world.workflow_stages_failed,
            "acked_stage_records": len(world.acked_stage_records),
            "hops_observed": len(world.hop_records),
            "slo_alerts_fired": sum(
                1 for entry in (engine.alert_log if engine else ())
                if entry["state"] == "firing"
            ),
            "slo_alerts_active": len(engine.active) if engine else 0,
            # the sampler was flushed by uninstall, so the ledger is final
            "traces_kept": sampler.kept_traces if sampler else 0,
            "traces_dropped": sampler.dropped_traces if sampler else 0,
            "final_clock": round(world.clock.now, 6),
        }
        return RunResult(
            seed=self.seed,
            ticks=self.ticks,
            schedule=self.schedule,
            violations=violations,
            stats=stats,
        )


# kept importable for deployment-level tests that bounce globusrun directly
__all__ = [
    "CANARIES",
    "DEFAULT_TICKS",
    "GLOBUSRUN_HOST",
    "RESULT_SCHEMA",
    "RunResult",
    "SimWorld",
    "SimulationRun",
    "default_composition",
    "deploy_globusrun",
]
