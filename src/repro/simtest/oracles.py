"""System-wide invariant oracles: what must hold under any fault schedule.

Each :class:`Oracle` inspects the whole simulated deployment — an
omniscient observer, not a client — and reports :class:`Violation`\\ s.
``when`` says which phases the oracle runs in: ``"tick"`` oracles run
continuously after every simulated tick (so a violation is caught at the
tick that introduced it, which keeps shrunk schedules small); ``"final"``
oracles run once after the heal phase, when the system has been given every
chance to converge.

Oracles must be deterministic: no wall-clock, no unseeded randomness —
the ``repro.analysis`` linter's REP6xx checker enforces both, plus that
every concrete oracle is registered via :func:`register_oracle` so the
seed-sweep explorer cannot silently drop one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.durability.journal import (
    JournalCorruptError,
    JournalRecord,
    verify_chain,
)
from repro.faults import PortalError, ResourceNotFoundError

_BUDGET_EPSILON = 1e-9


@dataclass
class Violation:
    """One observed invariant break, with enough context to debug it."""

    oracle: str
    message: str
    t: float
    detail: dict = field(default_factory=dict)
    #: the most recent trace spans at violation time — the observability
    #: layer's contribution to the repro report
    spans: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "message": self.message,
            "t": self.t,
            "detail": {key: self.detail[key] for key in sorted(self.detail)},
            "spans": list(self.spans),
        }


class Oracle:
    """Base class: subclass, set ``name``/``when``, implement ``check``."""

    name = "oracle"
    description = ""
    #: phases this oracle participates in: "tick", "final", or both
    when: tuple = ("tick", "final")

    def check(self, world) -> list[Violation]:
        raise NotImplementedError

    def violation(self, world, message: str, **detail) -> Violation:
        return Violation(
            oracle=self.name,
            message=message,
            t=world.clock.now,
            detail={key: str(value) for key, value in detail.items()},
            spans=world.spans_near(),
        )


_ORACLES: list[type] = []


def register_oracle(cls: type) -> type:
    """Class decorator adding an oracle to the sweep's standard battery."""
    if cls not in _ORACLES:
        _ORACLES.append(cls)
    return cls


def registered_oracles() -> list[Oracle]:
    """Fresh instances of every registered oracle, in registration order."""
    return [cls() for cls in _ORACLES]


# ---------------------------------------------------------------------------
# the standard battery
# ---------------------------------------------------------------------------


@register_oracle
class NoLostAckedWritesOracle(Oracle):
    """No acknowledged write may ever vanish.

    A batch id the globusrun service returned to a client must stay
    pollable forever — across crash/restart, disk pressure, partitions.  A
    context seq acknowledged by the quorum coordinator must stay inside its
    durable op log.  This is the invariant the write-ahead journal exists
    to uphold; an ack-before-fsync bug breaks it within a few events.
    """

    name = "no-lost-acked-writes"
    description = "every acknowledged write survives any fault schedule"
    when = ("tick", "final")

    def check(self, world):
        violations = []
        service = world.deployment.globusrun
        for batch in sorted(world.acked_batches):
            try:
                service.poll(batch)
            except ResourceNotFoundError:
                violations.append(self.violation(
                    world,
                    f"acked batch {batch!r} is gone after "
                    f"{world.restarts} restart(s)",
                    batch=batch,
                    restarts=world.restarts,
                ))
            except PortalError:
                pass  # degraded (e.g. disk full) is fine; *lost* is not
        store = world.context_store
        if store is not None and world.acked_context:
            highest = max(world.acked_context)
            if store.seq < highest:
                violations.append(self.violation(
                    world,
                    f"context op log ends at seq {store.seq} but seq "
                    f"{highest} was acked to a client",
                    oplog_seq=store.seq,
                    acked_seq=highest,
                ))
        return violations


@register_oracle
class JournalChainOracle(Oracle):
    """Every journal's CRC chain verifies, on every disk, at every tick.

    Restart recovery replays these logs; a chain break means recovery
    would either stop short (silent data loss) or resurrect corrupt state.
    """

    name = "journal-chain"
    description = "all on-disk journal CRC chains verify end to end"
    when = ("tick", "final")

    def check(self, world):
        violations = []
        for disk in world.network.disks():
            for log_name in disk.log_names():
                records = disk.log(log_name)
                if not records or not isinstance(records[0], JournalRecord):
                    continue  # not a journal-managed log
                label = f"{disk.host}:{log_name}"
                try:
                    verify_chain(list(records), name=label)
                except JournalCorruptError as exc:
                    violations.append(self.violation(
                        world,
                        f"journal {label} chain broken: {exc}",
                        journal=label,
                        records=len(records),
                    ))
        return violations


@register_oracle
class DeadlineBudgetOracle(Oracle):
    """Deadline budgets decrease monotonically across SOAP hops.

    Every dispatched hop reports ``(enclosing_at, inbound_at)`` through the
    resilience layer's hop listener; a nested hop whose absolute deadline
    lands *after* its enclosing one has manufactured budget — retries
    would outlive the caller and work would be done for nobody.
    """

    name = "deadline-budget"
    description = "no SOAP hop carries more budget than its caller"
    when = ("tick", "final")

    def check(self, world):
        violations = []
        for record in world.new_hop_records():
            enclosing = record.get("enclosing_at")
            inbound = record.get("inbound_at")
            if enclosing is None or inbound is None:
                continue
            if inbound > enclosing + _BUDGET_EPSILON:
                violations.append(self.violation(
                    world,
                    f"hop {record.get('service')}/{record.get('method')} "
                    f"deadline {inbound:.6f} exceeds enclosing "
                    f"{enclosing:.6f}",
                    service=record.get("service", ""),
                    method=record.get("method", ""),
                    inbound_at=inbound,
                    enclosing_at=enclosing,
                ))
        return violations


@register_oracle
class AdmissionBreakerSanityOracle(Oracle):
    """Load-shedding bookkeeping stays coherent under churn.

    Admission controllers: in-flight counts stay within ``[0,
    max_concurrent]`` and every arrival is either admitted or shed —
    nothing leaks.  Circuit breakers: the state machine never leaves its
    three legal states and never records negative failure streaks.
    """

    name = "admission-breaker-sanity"
    description = "admission counters balance; breaker states stay legal"
    when = ("tick", "final")

    _BREAKER_STATES = ("closed", "half-open", "open")

    def check(self, world):
        violations = []
        load = world.deployment.load
        controllers = load.controllers if load is not None else {}
        for name in sorted(controllers):
            ctrl = controllers[name]
            if not 0 <= ctrl.in_flight <= ctrl.max_concurrent:
                violations.append(self.violation(
                    world,
                    f"admission {name!r} in_flight {ctrl.in_flight} outside "
                    f"[0, {ctrl.max_concurrent}]",
                    controller=name,
                    in_flight=ctrl.in_flight,
                    max_concurrent=ctrl.max_concurrent,
                ))
            if ctrl.admitted + ctrl.shed > ctrl.arrived:
                violations.append(self.violation(
                    world,
                    f"admission {name!r} accounts for more requests than "
                    f"arrived ({ctrl.admitted}+{ctrl.shed} > {ctrl.arrived})",
                    controller=name,
                    arrived=ctrl.arrived,
                    admitted=ctrl.admitted,
                    shed=ctrl.shed,
                ))
        for client in world.clients():
            breakers = getattr(client.http, "breakers", {})
            for host in sorted(breakers):
                breaker = breakers[host]
                if breaker.state not in self._BREAKER_STATES:
                    violations.append(self.violation(
                        world,
                        f"breaker for {host!r} in unknown state "
                        f"{breaker.state!r}",
                        host=host,
                        state=breaker.state,
                    ))
                if breaker.consecutive_failures < 0:
                    violations.append(self.violation(
                        world,
                        f"breaker for {host!r} counts "
                        f"{breaker.consecutive_failures} failures",
                        host=host,
                        failures=breaker.consecutive_failures,
                    ))
        return violations


@register_oracle
class ReplicationConvergenceOracle(Oracle):
    """After the heal phase, every region holds the same state.

    Registry stores must be byte-identical, no hinted-handoff backlog may
    remain, and every context replica must sit at the coordinator's op-log
    watermark.  A convergence failure after healing means anti-entropy or
    hint replay silently dropped something.
    """

    name = "replication-convergence"
    description = "healed regions converge: registries, hints, context seqs"
    when = ("final",)

    def check(self, world):
        replication = world.deployment.replication
        if replication is None:
            return []
        violations = []
        if not replication.converged():
            violations.append(self.violation(
                world,
                "registry replicas disagree after heal + anti-entropy",
            ))
        store = world.context_store
        if store is not None:
            backlog = store.hint_backlog()
            stuck = {name: n for name, n in sorted(backlog.items()) if n != 0}
            if stuck:
                violations.append(self.violation(
                    world,
                    f"hinted handoff backlog remains after heal: {stuck}",
                    **{f"backlog_{name}": n for name, n in stuck.items()},
                ))
            for name, snap in sorted(store.snapshots().items()):
                if int(snap.get("seq", -1)) != store.seq:
                    violations.append(self.violation(
                        world,
                        f"context replica {name!r} at seq {snap.get('seq')} "
                        f"!= coordinator log seq {store.seq}",
                        region=name,
                        replica_seq=snap.get("seq"),
                        oplog_seq=store.seq,
                    ))
        return violations


@register_oracle
class SpanTreeOracle(Oracle):
    """The trace forest stays well-formed over the whole run.

    Single root per trace, children nest within parents, no host's span
    clock runs backwards — :func:`repro.observability.check_spans` over
    everything the collector saw.  Fault injection must degrade the
    *system*, never the telemetry describing it.
    """

    name = "span-tree"
    description = "collected trace spans form well-nested single-root trees"
    when = ("final",)

    def check(self, world):
        collector = world.collector
        if collector is None:
            return []
        from repro.observability.report import check_spans

        problems = check_spans(collector.spans(), "simtest")
        return [
            self.violation(world, problem)
            for problem in problems
        ]


@register_oracle
class SloBurnOracle(Oracle):
    """Burn-rate alerting stays honest across the whole fault schedule.

    After every tick's evaluation: the set of active alerts must match a
    recomputation of every SLO's firing pair from the stored window
    buckets (the alert state machine may never drift from the window
    math), every active alert's recorded burn rates must actually exceed
    its own factor, and an alert fired this tick must link exemplar
    traces whenever the collector holds matching evidence — the tail
    sampler never drops errors, so an evidence-free availability page is
    a sampling regression, not bad luck.  After heal the windows are
    drained; an alert still firing then is stuck.
    """

    name = "slo-burn"
    description = "SLO alerts match window math, carry exemplars, clear"
    when = ("tick", "final")

    def check(self, world):
        engine = getattr(world, "slo_engine", None)
        if engine is None or not engine.slos():
            return []
        violations = []
        now = world.clock.now
        for slo in engine.slos():
            firing = engine.firing_pair(slo.name)
            held = engine.active.get(slo.name)
            if firing is not None and held is None:
                pair, slow_burn, fast_burn = firing
                violations.append(self.violation(
                    world,
                    f"SLO {slo.name!r} burns {slow_burn:.3f}/{fast_burn:.3f}"
                    f"x (factor {pair.factor:g}) but no alert is active",
                    slo=slo.name,
                    slow_burn=round(slow_burn, 6),
                    fast_burn=round(fast_burn, 6),
                ))
            elif firing is None and held is not None:
                violations.append(self.violation(
                    world,
                    f"alert for SLO {slo.name!r} is active but its burn "
                    f"rates no longer exceed any pair",
                    slo=slo.name,
                    since=held["since"],
                ))
            if held is None:
                continue
            if min(held["slow_burn"], held["fast_burn"]) < held["factor"]:
                violations.append(self.violation(
                    world,
                    f"alert for SLO {slo.name!r} records burn rates "
                    f"{held['slow_burn']}/{held['fast_burn']} below its own "
                    f"factor {held['factor']}",
                    slo=slo.name,
                    slow_burn=held["slow_burn"],
                    fast_burn=held["fast_burn"],
                    factor=held["factor"],
                ))
            newly_fired = held["since"] == now
            if newly_fired and not held["exemplars"]:
                if engine.exemplars_for(slo.name):
                    violations.append(self.violation(
                        world,
                        f"alert for SLO {slo.name!r} fired without exemplar "
                        f"links although the collector holds matching traces",
                        slo=slo.name,
                    ))
        if world.phase == "final" and engine.active:
            stuck = ", ".join(sorted(engine.active))
            violations.append(self.violation(
                world,
                f"alerts still firing after heal and window drain: {stuck}",
                stuck=stuck,
            ))
        return violations


@register_oracle
class WorkflowProvenanceOracle(Oracle):
    """Workflow provenance is immutable and acked stage outputs survive.

    Every provenance store the workload created must verify end to end —
    each blob and record hashes to its address, and every input, output,
    and parent link resolves — at every tick and after heal.  And every
    stage completion the executor acknowledged (sealed record address
    returned in a :class:`~repro.shell.executor.WorkflowResult`) must
    still resolve, with all its output blobs present: a crash-resumed
    executor re-drives *unfinished* stages, never un-writes finished
    ones.
    """

    name = "workflow-provenance"
    description = "provenance chains verify; no acked stage output is lost"
    when = ("tick", "final")

    def check(self, world):
        violations = []
        for index, store in enumerate(getattr(world, "workflow_stores", [])):
            for problem in store.verify():
                violations.append(self.violation(
                    world,
                    f"workflow store {index} provenance broken: {problem}",
                    store=index,
                ))
        for store, address in getattr(world, "acked_stage_records", []):
            if not store.has_record(address):
                violations.append(self.violation(
                    world,
                    f"acked stage record {address} vanished from its store",
                    record=address,
                ))
                continue
            record = store.record(address)
            for port in sorted(record.get("outputs", {})):
                blob = record["outputs"][port]
                if not store.has_blob(blob):
                    violations.append(self.violation(
                        world,
                        f"stage {record.get('stage')!r} acked output "
                        f"{port!r} blob {blob} is gone",
                        record=address,
                        port=port,
                        blob=blob,
                    ))
        return violations
