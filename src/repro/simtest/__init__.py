"""Deterministic simulation testing for the whole portal stack.

The FoundationDB/Jepsen idea, scaled to this codebase: compose *nemeses*
(:mod:`repro.simtest.nemesis`) into seeded fault schedules, drive a full
:class:`~repro.portal.uiserver.PortalDeployment` workload under them
(:mod:`repro.simtest.harness`), check system-wide invariant *oracles*
continuously (:mod:`repro.simtest.oracles`), sweep seeds from the command
line (``python -m repro.simtest --seeds 200``), and delta-debug any
failing schedule down to a minimal, byte-identically re-runnable repro
(:mod:`repro.simtest.shrink`).
"""

from repro.simtest.explorer import REPORT_SCHEMA, report_json, run_seed, sweep
from repro.simtest.harness import (
    CANARIES,
    DEFAULT_TICKS,
    RESULT_SCHEMA,
    RunResult,
    SimulationRun,
    SimWorld,
    default_composition,
)
from repro.simtest.nemesis import (
    SCHEDULE_SCHEMA,
    BreakerFlapNemesis,
    ClockStallNemesis,
    Composition,
    CrashNemesis,
    DiskFullNemesis,
    FlapNemesis,
    LatencySpikeNemesis,
    MidWriteCrashNemesis,
    Nemesis,
    NemesisEvent,
    NemesisSchedule,
    PartitionNemesis,
    compose,
)
from repro.simtest.oracles import (
    Oracle,
    Violation,
    register_oracle,
    registered_oracles,
)
from repro.simtest.shrink import ShrinkResult, shrink_schedule

__all__ = [
    "BreakerFlapNemesis",
    "CANARIES",
    "ClockStallNemesis",
    "Composition",
    "CrashNemesis",
    "DEFAULT_TICKS",
    "DiskFullNemesis",
    "FlapNemesis",
    "LatencySpikeNemesis",
    "MidWriteCrashNemesis",
    "Nemesis",
    "NemesisEvent",
    "NemesisSchedule",
    "Oracle",
    "PartitionNemesis",
    "REPORT_SCHEMA",
    "RESULT_SCHEMA",
    "RunResult",
    "SCHEDULE_SCHEMA",
    "ShrinkResult",
    "SimWorld",
    "SimulationRun",
    "Violation",
    "compose",
    "default_composition",
    "register_oracle",
    "registered_oracles",
    "report_json",
    "run_seed",
    "shrink_schedule",
    "sweep",
]
