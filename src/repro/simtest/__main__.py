"""``python -m repro.simtest`` — the seed-sweep command line.

Examples::

    python -m repro.simtest --seeds 200
    python -m repro.simtest --seed 17 --ticks 40
    python -m repro.simtest --seeds 50 --canary ack-before-fsync \\
        --out report.json --artifacts artifacts/
    python -m repro.simtest --seed 17 --schedule shrunk.json

Exit status 0 when every seed passed every oracle, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.simtest.explorer import report_json, sweep
from repro.simtest.harness import CANARIES, DEFAULT_TICKS, SimulationRun
from repro.simtest.nemesis import NemesisSchedule


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.simtest",
        description=(
            "Deterministic simulation sweep: seeded nemesis schedules, "
            "system-wide invariant oracles, failing-seed shrinking."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=0, metavar="N",
        help="sweep seeds 0..N-1",
    )
    parser.add_argument(
        "--seed", action="append", default=[], metavar="S",
        help="run one specific seed (repeatable)",
    )
    parser.add_argument(
        "--ticks", type=int, default=DEFAULT_TICKS,
        help=f"virtual ticks per run (default {DEFAULT_TICKS})",
    )
    parser.add_argument(
        "--schedule", metavar="FILE",
        help="replay an explicit schedule JSON instead of generating one "
             "(requires exactly one --seed)",
    )
    parser.add_argument(
        "--canary", default="", choices=[""] + sorted(CANARIES),
        help="re-introduce a known bug class the oracles must catch",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging failing schedules",
    )
    parser.add_argument(
        "--max-probes", type=int, default=200,
        help="re-run budget per shrink (default 200)",
    )
    parser.add_argument(
        "--out", metavar="FILE",
        help="write the report JSON here (default: stdout)",
    )
    parser.add_argument(
        "--artifacts", metavar="DIR",
        help="write each failing seed's shrunk schedule JSON into DIR",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-seed progress lines on stderr",
    )
    return parser


def main(argv=None) -> int:
    args = _parser().parse_args(argv)
    seeds: list = list(args.seed)
    if args.seeds:
        seeds.extend(range(args.seeds))
    if not seeds:
        seeds = list(range(20))

    schedule = None
    if args.schedule:
        if len(seeds) != 1:
            print(
                "--schedule replays one run; give exactly one --seed",
                file=sys.stderr,
            )
            return 2
        schedule = NemesisSchedule.from_json(
            Path(args.schedule).read_text()
        )

    progress = None
    if not args.quiet:
        progress = lambda line: print(line, file=sys.stderr)  # noqa: E731

    if schedule is not None:
        result = SimulationRun(
            seeds[0], ticks=args.ticks, schedule=schedule,
            canary=args.canary,
        ).run()
        report = {
            "schema": "repro.simtest.report/v1",
            "ticks": args.ticks,
            "canary": args.canary,
            "seeds": 1,
            "failures": 0 if result.passed else 1,
            "verdict": "pass" if result.passed else "fail",
            "results": [result.to_dict()],
        }
    else:
        report = sweep(
            seeds,
            ticks=args.ticks,
            canary=args.canary,
            shrink=not args.no_shrink,
            max_probes=args.max_probes,
            progress=progress,
        )

    text = report_json(report)
    if args.out:
        Path(args.out).write_text(text)
    else:
        sys.stdout.write(text)

    if args.artifacts:
        artifacts = Path(args.artifacts)
        artifacts.mkdir(parents=True, exist_ok=True)
        for entry in report["results"]:
            shrunk = entry.get("shrunk_schedule")
            if shrunk is not None:
                path = artifacts / f"seed-{entry['seed']}-shrunk.json"
                path.write_text(
                    json.dumps(shrunk, sort_keys=True, indent=2) + "\n"
                )

    return 0 if report["verdict"] == "pass" else 1


if __name__ == "__main__":
    sys.exit(main())
