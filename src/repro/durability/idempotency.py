"""Client-supplied idempotency keys.

PR 1's retry loops re-issue calls that failed with a retryable error — which
is safe for reads but double-submits jobs: the first attempt may have been
accepted even though the response was lost in flight.  The fix is the same
one the deadline header uses: the *client* stamps each logical call with a
key; every layer that creates durable state (the SOAP dispatch cache, the
GRAM gatekeeper) remembers the key alongside the result, and a replayed key
returns the original result instead of running the work again.

The key rides in a SOAP header entry (``urn:gce:durability Idempotency-Key``)
so it crosses provider boundaries exactly like the deadline does.
"""

from __future__ import annotations

from repro.durability.journal import Journal
from repro.headers import register_header
from repro.xmlutil.element import XmlElement
from repro.xmlutil.qname import QName

DURABILITY_NS = "urn:gce:durability"

#: the SOAP header entry carrying the caller's idempotency key
IDEMPOTENCY_HEADER = QName(DURABILITY_NS, "IdempotencyKey")
register_header(
    IDEMPOTENCY_HEADER,
    description="client-chosen key deduplicating retried submissions",
    module=__name__,
)


def idempotency_header(key: str) -> XmlElement:
    """Encode a key as the SOAP header entry servers look for."""
    return XmlElement(IDEMPOTENCY_HEADER, text=key)


def key_from_headers(headers: list[XmlElement]) -> str:
    """Decode the idempotency-key header if present (missing/empty -> '')."""
    for entry in headers:
        if entry.tag == IDEMPOTENCY_HEADER:
            return entry.text.strip()
    return ""


# The dispatch context: the SOAP server sets the inbound request's key here
# while the service method runs, so deep layers (the globusrun batch path,
# the gatekeeper) can derive per-job keys without every exposed method
# signature growing a key parameter.  The simulation is single-threaded per
# request, so a module-level slot is sufficient.
_current_key = ""


def set_current_key(key: str) -> None:
    """Install the inbound request's idempotency key for the dispatch."""
    global _current_key
    _current_key = key


def current_key() -> str:
    """The idempotency key of the request currently being dispatched."""
    return _current_key


class IdempotencyIndex:
    """A journal-backed key -> result map.

    Appends one ``idem`` record per first-seen key; a fresh instance over
    the same journal replays them, so deduplication survives a crash-restart
    of the owning service.
    """

    RECORD_KIND = "idem"

    def __init__(self, journal: Journal | None = None):
        self.journal = journal
        self._seen: dict[str, str] = {}
        self.duplicates_served = 0
        if journal is not None:
            for record in journal.by_kind(self.RECORD_KIND):
                self._seen[record.data["key"]] = record.data["result"]

    def get(self, key: str) -> str | None:
        """The recorded result for *key*, or ``None`` if unseen."""
        if not key:
            return None
        result = self._seen.get(key)
        if result is not None:
            self.duplicates_served += 1
        return result

    def put(self, key: str, result: str) -> None:
        """Durably record *key* -> *result* (first writer wins)."""
        if not key or key in self._seen:
            return
        self._seen[key] = result
        if self.journal is not None:
            self.journal.append(self.RECORD_KIND, key=key, result=result)

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, key: str) -> bool:
        return key in self._seen
