"""The ``Recoverable`` service protocol.

A stateful portal service is *recoverable* when a fresh instance, attached
to the journal its previous incarnation wrote, can rebuild the state that
matters: a scheduler rebuilds its queue, the context manager its tree, the
SRB its catalog.  ``snapshot`` exists so tests (and the reconciler) can
assert that a replayed instance converged to the same observable state as
the original.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.durability.journal import Journal


@runtime_checkable
class Recoverable(Protocol):
    """What a journaling service must offer."""

    def snapshot(self) -> dict[str, Any]:
        """A comparable summary of the durable state (for convergence
        assertions — two instances with equal snapshots are interchangeable)."""
        ...

    def replay(self, journal: Journal) -> int:
        """Rebuild state from a journal written by a previous incarnation;
        returns the number of records applied."""
        ...


def recover(service: Recoverable, journal: Journal) -> int:
    """Verify the journal's integrity, then replay it into *service*."""
    journal.verify()
    return service.replay(journal)
