"""Durable service state: write-ahead journals, recovery, idempotency.

The paper's integrated architecture (§6) treats the portal as a distributed
operating system whose stateful core — job queues, session contexts, SRB
replicas, application lifecycle — must survive individual host failures.
This package supplies the machinery:

- :mod:`repro.durability.journal` — an append-only, checksum-chained
  write-ahead :class:`Journal` stored on a host's
  :class:`~repro.transport.network.HostDisk` (which survives
  ``take_down``/``bring_up`` while process state does not).
- :mod:`repro.durability.recovery` — the :class:`Recoverable` protocol
  (``snapshot``/``replay``) stateful services implement.
- :mod:`repro.durability.idempotency` — client-supplied idempotency keys
  carried as a SOAP header (mirroring the resilience deadline header) so a
  retried or failed-over submit returns the original result instead of
  double-running.
- :mod:`repro.durability.reconciler` — scans journals after a restart for
  orphaned work (accepted but unresolved) and re-drives it to a terminal
  state, reporting through the monitoring service's event stream.
- :mod:`repro.durability.check` — the journal-invariant checker CI runs
  over every journal the test suite produces
  (``python -m repro.durability.check <dir>``).
"""

from repro.durability.idempotency import (
    IDEMPOTENCY_HEADER,
    IdempotencyIndex,
    current_key,
    idempotency_header,
    key_from_headers,
)
from repro.durability.journal import (
    Journal,
    JournalCorruptError,
    JournalRecord,
    created_journals,
)
from repro.durability.reconciler import (
    ORPHAN,
    RECONCILE_FAILED,
    RECONCILED,
    RECOVERED,
    ReconcilerService,
    deploy_reconciler,
    find_orphans,
    record_recovery,
)
from repro.durability.recovery import Recoverable, recover

__all__ = [
    "IDEMPOTENCY_HEADER",
    "IdempotencyIndex",
    "Journal",
    "JournalCorruptError",
    "JournalRecord",
    "ORPHAN",
    "RECONCILED",
    "RECONCILE_FAILED",
    "RECOVERED",
    "Recoverable",
    "ReconcilerService",
    "created_journals",
    "current_key",
    "deploy_reconciler",
    "find_orphans",
    "idempotency_header",
    "key_from_headers",
    "record_recovery",
    "recover",
]
