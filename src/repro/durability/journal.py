"""The append-only write-ahead journal.

A :class:`Journal` is a process-side handle over a named log on a host's
:class:`~repro.transport.network.HostDisk`.  The disk — and therefore every
record ever appended — survives ``take_down``/``bring_up``; the handle (and
the service state it protected) does not.  A restarted service opens a new
handle over the same log and replays it.

Records are checksum-chained: each record's ``crc`` covers its own content
*and* the previous record's ``crc``, so truncation, reordering, or editing
anywhere in the log is detectable by :meth:`Journal.verify` and by the CI
invariant checker (:mod:`repro.durability.check`).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field

from repro.transport.clock import SimClock
from repro.transport.network import HostDisk

#: the chain seed for the first record
GENESIS_CRC = "00000000"

#: every Journal ever constructed, in order (the test suite's export hook —
#: see tests/durability/conftest.py and repro.durability.check)
_CREATED: list["Journal"] = []


def created_journals() -> list["Journal"]:
    """All journals constructed so far (oldest first)."""
    return list(_CREATED)


#: single-slot observer notified on every append/replay; the observability
#: layer installs one so journal activity shows up as span events
_LISTENER = None


def set_journal_listener(listener) -> None:
    """Install (or clear, with ``None``) the journal activity listener.

    ``listener(event, journal, detail)`` is called with event ``"append"``
    (detail: the :class:`JournalRecord` written) and ``"replay"`` (detail:
    the record count replayed).  Listener exceptions propagate — installers
    must not raise.
    """
    global _LISTENER
    _LISTENER = listener


def notify_replay(journal: "Journal", records: int) -> None:
    """Tell the listener a service replayed *records* from *journal*."""
    if _LISTENER is not None:
        _LISTENER("replay", journal, records)


class JournalCorruptError(ValueError):
    """The journal's checksum chain or sequence numbering is broken."""


@dataclass(frozen=True)
class JournalRecord:
    """One immutable journal entry."""

    seq: int
    kind: str
    data: dict = field(default_factory=dict)
    t: float = 0.0
    crc: str = GENESIS_CRC

    def payload(self, prev_crc: str) -> str:
        """The canonical byte string the checksum covers."""
        return json.dumps(
            [self.seq, self.kind, self.data, f"{self.t:.9f}", prev_crc],
            sort_keys=True,
            separators=(",", ":"),
        )

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "data": self.data,
            "t": self.t,
            "crc": self.crc,
        }

    @staticmethod
    def from_dict(raw: dict) -> "JournalRecord":
        return JournalRecord(
            seq=int(raw["seq"]),
            kind=str(raw["kind"]),
            data=dict(raw.get("data", {})),
            t=float(raw.get("t", 0.0)),
            crc=str(raw.get("crc", GENESIS_CRC)),
        )


def _crc(payload: str) -> str:
    return f"{zlib.crc32(payload.encode('utf-8')) & 0xFFFFFFFF:08x}"


class Journal:
    """An append-only log handle bound to one ``HostDisk`` log.

    Two handles over the same ``(disk, name)`` pair see the same records —
    that is exactly what crash recovery relies on: the pre-crash process
    appended, the post-crash process replays.
    """

    def __init__(self, disk: HostDisk, name: str, *, clock: SimClock | None = None):
        self.disk = disk
        self.name = name
        self.clock = clock
        self._log: list[JournalRecord] = disk.log(name)
        _CREATED.append(self)

    # -- writing ------------------------------------------------------------

    def append(self, kind: str, **data) -> JournalRecord:
        """Durably append one record; returns it.

        A full disk refuses the append with the taxonomy's retryable
        ``Portal.ResourceExhausted`` *before* anything is written — callers
        following the write-ahead discipline therefore never acknowledge
        work the journal could not hold.
        """
        if getattr(self.disk, "full", False):
            from repro.faults import ResourceExhaustedError

            raise ResourceExhaustedError(
                f"disk on {self.disk.host!r} is full; "
                f"cannot append to journal {self.name!r}",
                {"host": self.disk.host, "journal": self.name},
            )
        prev_crc = self._log[-1].crc if self._log else GENESIS_CRC
        record = JournalRecord(
            seq=len(self._log) + 1,
            kind=kind,
            data=data,
            t=self.clock.now if self.clock is not None else 0.0,
        )
        record = JournalRecord(
            seq=record.seq,
            kind=record.kind,
            data=record.data,
            t=record.t,
            crc=_crc(record.payload(prev_crc)),
        )
        self._log.append(record)
        if _LISTENER is not None:
            _LISTENER("append", self, record)
        return record

    # -- reading ------------------------------------------------------------

    def records(self) -> tuple[JournalRecord, ...]:
        return tuple(self._log)

    def by_kind(self, kind: str) -> list[JournalRecord]:
        return [r for r in self._log if r.kind == kind]

    def last(self) -> JournalRecord | None:
        return self._log[-1] if self._log else None

    def __len__(self) -> int:
        return len(self._log)

    def __iter__(self):
        return iter(tuple(self._log))

    # -- integrity ----------------------------------------------------------

    def verify(self) -> None:
        """Raise :class:`JournalCorruptError` if the chain is broken."""
        verify_chain(self._log, name=f"{self.disk.host}:{self.name}")

    # -- serialization (for the CI invariant checker) -----------------------

    def dump(self) -> str:
        """The whole journal as JSON lines (one record per line)."""
        return "\n".join(
            json.dumps(r.to_dict(), sort_keys=True) for r in self._log
        )

    @staticmethod
    def load_records(text: str, *, name: str = "journal") -> list[JournalRecord]:
        """Parse a :meth:`dump` back into verified records."""
        records = [
            JournalRecord.from_dict(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]
        verify_chain(records, name=name)
        return records


def verify_chain(records: list[JournalRecord], *, name: str = "journal") -> None:
    """Check sequence contiguity and the checksum chain of a record list."""
    prev_crc = GENESIS_CRC
    for index, record in enumerate(records):
        if record.seq != index + 1:
            raise JournalCorruptError(
                f"{name}: record {index} has seq {record.seq}, expected {index + 1}"
            )
        expected = _crc(record.payload(prev_crc))
        if record.crc != expected:
            raise JournalCorruptError(
                f"{name}: record {record.seq} checksum {record.crc} != {expected}"
            )
        prev_crc = record.crc
