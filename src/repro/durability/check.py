"""The journal-invariant checker (``python -m repro.durability.check DIR``).

CI runs the test suite with ``REPRO_JOURNAL_DIR`` set, which makes the suite
export every journal any test produced as a ``.jsonl`` file (see
``tests/durability/conftest.py``); this module then re-verifies each file
offline:

- the checksum chain and sequence numbering are intact (any truncation,
  reordering, or edit anywhere in the log is detected);
- lifecycle records reference work that was journaled first — a ``job-start``
  / ``job-finish`` / ``job-cancel`` without a prior ``job-submit``, or a
  ``batch-resolve`` without a prior ``batch-accept``, means some code path
  mutated state without writing ahead;
- no job finishes twice, no batch is accepted twice, and no idempotency key
  maps to two different results.

Exit status 0 means every journal passed; 1 means at least one violation
(listed on stdout).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.durability.journal import Journal, JournalCorruptError, JournalRecord


def check_records(records: list[JournalRecord], name: str) -> list[str]:
    """Semantic invariants over one verified record list."""
    problems: list[str] = []
    submitted: set[str] = set()
    finished: set[str] = set()
    accepted: set[str] = set()
    resolved: set[str] = set()
    idem: dict[str, str] = {}
    for record in records:
        data = record.data
        if record.kind == "job-submit":
            job = str(data.get("job", ""))
            if job in submitted:
                problems.append(f"{name}: job {job} submitted twice")
            submitted.add(job)
        elif record.kind in ("job-start", "job-finish", "job-cancel"):
            job = str(data.get("job", ""))
            if job not in submitted:
                problems.append(
                    f"{name}: {record.kind} for {job} without a prior job-submit"
                )
            if record.kind == "job-finish":
                if job in finished:
                    problems.append(f"{name}: job {job} finished twice")
                finished.add(job)
        elif record.kind == "batch-accept":
            batch = str(data.get("batch", ""))
            if batch in accepted:
                problems.append(f"{name}: batch {batch} accepted twice")
            accepted.add(batch)
        elif record.kind == "batch-resolve":
            batch = str(data.get("batch", ""))
            if batch not in accepted:
                problems.append(
                    f"{name}: batch-resolve for {batch} without a prior accept"
                )
            if batch in resolved:
                problems.append(f"{name}: batch {batch} resolved twice")
            resolved.add(batch)
        elif record.kind == "idem":
            key = str(data.get("key", ""))
            result = str(data.get("result", ""))
            if key in idem and idem[key] != result:
                problems.append(
                    f"{name}: idempotency key {key!r} maps to two results"
                )
            idem.setdefault(key, result)
    return problems


def check_file(path: Path) -> list[str]:
    """Verify one exported journal file; returns its problems."""
    try:
        records = Journal.load_records(
            path.read_text(encoding="utf-8"), name=path.name
        )
    except JournalCorruptError as exc:
        return [str(exc)]
    except (OSError, ValueError, KeyError) as exc:
        return [f"{path.name}: unreadable ({exc})"]
    return check_records(records, path.name)


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.durability.check <journal-dir>")
        return 2
    root = Path(argv[0])
    if not root.is_dir():
        print(f"no such directory: {root}")
        return 2
    files = sorted(root.glob("*.jsonl"))
    total_problems: list[str] = []
    total_records = 0
    for path in files:
        problems = check_file(path)
        if not problems:
            n = sum(1 for line in path.read_text().splitlines() if line.strip())
            total_records += n
            print(f"ok   {path.name} ({n} records)")
        else:
            total_problems.extend(problems)
            print(f"FAIL {path.name}")
            for problem in problems:
                print(f"     {problem}")
    print(
        f"{len(files)} journals, {total_records} records, "
        f"{len(total_problems)} violations"
    )
    return 1 if total_problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
