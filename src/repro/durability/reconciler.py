"""Post-restart reconciliation of orphaned work.

A write-ahead journal makes the *gap* between acceptance and completion
visible: a ``batch-accept`` record with no matching ``batch-resolve`` means
the service crashed while a client's accepted work was in flight.  The
:class:`ReconcilerService` watches those journals, finds the orphans after a
restart, and re-drives each one to a terminal state by calling the (now
restarted) owning service's idempotent ``result`` method — completed jobs
are never re-run because every per-job submission carries a deterministic
idempotency key the gatekeeper deduplicates on.

Progress is reported as ``Durability.*`` events on the portal's resilience
log, which the monitoring service already relays to portlets.

Imports here are deliberately minimal at module level (journal + event
codes); the SOAP machinery is pulled in lazily so this module can sit in the
``repro.durability`` package without creating import cycles with the layers
that journal.
"""

from __future__ import annotations

from typing import Any

from repro.durability.journal import Journal

RECONCILER_NAMESPACE = "urn:gce:reconciler"

#: a batch was accepted but never resolved (found during a scan)
ORPHAN = "Durability.Orphan"
#: an orphaned batch was re-driven to a terminal state
RECONCILED = "Durability.Reconciled"
#: re-driving an orphan failed (it remains an orphan)
RECONCILE_FAILED = "Durability.ReconcileFailed"
#: a service instance rebuilt its state from a journal
RECOVERED = "Durability.Recovered"


def find_orphans(journal: Journal) -> list[dict[str, Any]]:
    """Accepted-but-unresolved batches in a globusrun-style journal."""
    resolved = {r.data["batch"] for r in journal.by_kind("batch-resolve")}
    return [
        dict(r.data)
        for r in journal.by_kind("batch-accept")
        if r.data["batch"] not in resolved
    ]


def record_recovery(log, service: str, host: str, applied: int) -> None:
    """Note on the resilience log that *service* replayed its journal."""
    if log is None:
        return
    log.record(
        RECOVERED,
        f"{service} on {host} rebuilt from journal ({applied} records)",
        service=service,
        operation="replay",
        detail={"host": host, "applied": str(applied)},
    )


class ReconcilerService:
    """Scans watched journals for orphans and re-drives them.

    ``watch`` registers one journal to scan (the host whose disk holds it,
    the log name, and the SOAP endpoint + namespace of the service that can
    finish the work).  ``scan`` is read-only discovery; ``reconcile`` calls
    ``result(batch)`` on the owning service for every orphan, which is safe
    to repeat: the service's journal replay makes ``result`` idempotent.
    """

    def __init__(
        self,
        network,
        *,
        resilience_log=None,
        source: str = "reconciler.gridportal.org",
    ):
        self.network = network
        self.log = resilience_log
        self.source = source
        self._targets: list[dict[str, str]] = []
        self._reported: set[tuple[str, str]] = set()
        self.orphans_found = 0
        self.orphans_reconciled = 0

    # -- configuration ------------------------------------------------------

    def watch(
        self, host: str, journal_name: str, endpoint: str, namespace: str
    ) -> bool:
        """Register a journal (and the service that can drain it)."""
        target = {
            "host": host,
            "journal": journal_name,
            "endpoint": endpoint,
            "namespace": namespace,
        }
        if target not in self._targets:
            self._targets.append(target)
        return True

    def watched(self) -> list[str]:
        return [f"{t['host']}:{t['journal']}" for t in self._targets]

    # -- discovery ----------------------------------------------------------

    def _open(self, target: dict[str, str]) -> Journal:
        return Journal(
            self.network.disk(target["host"]),
            target["journal"],
            clock=self.network.clock,
        )

    def scan(self) -> list[dict[str, str]]:
        """Find every orphan across the watched journals."""
        rows: list[dict[str, str]] = []
        for target in self._targets:
            for orphan in find_orphans(self._open(target)):
                batch = str(orphan["batch"])
                rows.append(
                    {"host": target["host"], "batch": batch,
                     "key": str(orphan.get("key", ""))}
                )
                mark = (target["host"], batch)
                if self.log is not None and mark not in self._reported:
                    self._reported.add(mark)
                    self.orphans_found += 1
                    self.log.record(
                        ORPHAN,
                        f"batch {batch} accepted on {target['host']} "
                        "but never resolved",
                        service="reconciler",
                        operation="scan",
                        detail={"host": target["host"], "batch": batch},
                    )
        return rows

    # -- repair -------------------------------------------------------------

    def reconcile(self) -> list[dict[str, str]]:
        """Re-drive every orphan to a terminal state; returns one row per
        orphan with its outcome."""
        from repro.faults import PortalError
        from repro.soap.client import SoapClient
        from repro.transport.network import TransportError

        rows: list[dict[str, str]] = []
        for target in self._targets:
            client: SoapClient | None = None
            for orphan in find_orphans(self._open(target)):
                batch = str(orphan["batch"])
                if client is None:
                    client = SoapClient(
                        self.network,
                        target["endpoint"],
                        target["namespace"],
                        source=self.source,
                    )
                try:
                    client.call("result", batch)
                except (PortalError, TransportError) as exc:
                    rows.append(
                        {"host": target["host"], "batch": batch,
                         "status": "failed"}
                    )
                    if self.log is not None:
                        self.log.record(
                            RECONCILE_FAILED,
                            f"could not re-drive batch {batch}: {exc}",
                            service="reconciler",
                            operation="reconcile",
                            detail={"host": target["host"], "batch": batch},
                        )
                    continue
                rows.append(
                    {"host": target["host"], "batch": batch,
                     "status": "reconciled"}
                )
                self.orphans_reconciled += 1
                if self.log is not None:
                    self.log.record(
                        RECONCILED,
                        f"batch {batch} re-driven to a terminal state",
                        service="reconciler",
                        operation="reconcile",
                        detail={"host": target["host"], "batch": batch},
                    )
        return rows


def deploy_reconciler(
    network,
    host: str = "reconciler.gridportal.org",
    *,
    resilience_log=None,
) -> tuple[ReconcilerService, str]:
    """Stand up the reconciler as a SOAP service; returns (impl, endpoint)."""
    from repro.soap.server import SoapService
    from repro.transport.server import HttpServer

    impl = ReconcilerService(network, resilience_log=resilience_log, source=host)
    server = HttpServer(host, network)
    soap = SoapService("Reconciler", RECONCILER_NAMESPACE)
    soap.expose(impl.watch)
    soap.expose(impl.scan)
    soap.expose(impl.reconcile)
    soap.expose(impl.watched)
    return impl, soap.mount(server, "/reconciler")
