"""Per-endpoint circuit breakers.

A dead provider must not absorb a connect-latency round trip per request:
after ``failure_threshold`` consecutive transport failures the breaker
*opens* and requests to that host fail locally, instantly.  After a
clock-driven ``cooldown`` it moves to *half-open* and lets a limited number
of probe requests through; one success closes it, one failure re-opens it.

The breaker lives at the transport layer (:class:`repro.transport.client.
HttpClient` consults it per host), so every SOAP proxy sharing an HTTP
client also shares breaker state — exactly what a portal's UI server wants
when hundreds of user sessions fan out to the same provider.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.transport.clock import SimClock
from repro.transport.network import TransportError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class BreakerOpenError(TransportError):
    """Raised locally (no wire traffic) when a host's breaker is open.

    Subclasses :class:`TransportError` so existing transport-failure
    handling — retry classification, failover rotation — applies unchanged.
    """

    def __init__(self, host: str, retry_at: float):
        super().__init__(
            f"circuit open for host {host!r} (next probe at t={retry_at:.3f})"
        )
        self.host = host
        self.retry_at = retry_at


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """Knobs for one breaker (shared by all breakers of one client)."""

    failure_threshold: int = 3
    cooldown: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")


# Called on state transitions with (host, old_state, new_state).
TripListener = Callable[[str, str, str], None]


class CircuitBreaker:
    """One host's breaker: closed / open / half-open, clock-driven cooldown."""

    def __init__(
        self,
        host: str,
        clock: SimClock,
        policy: CircuitBreakerPolicy | None = None,
        *,
        on_transition: TripListener | None = None,
    ):
        self.host = host
        self.clock = clock
        self.policy = policy or CircuitBreakerPolicy()
        self.on_transition = on_transition
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.trips = 0  # times the breaker opened
        self._probes_in_flight = 0

    # -- state machine -------------------------------------------------------

    def _transition(self, new_state: str) -> None:
        if new_state == self.state:
            return
        old = self.state
        self.state = new_state
        if new_state == OPEN:
            self.trips += 1
            self.opened_at = self.clock.now
        if new_state in (CLOSED, HALF_OPEN):
            self._probes_in_flight = 0
        if self.on_transition is not None:
            self.on_transition(self.host, old, new_state)

    def allow(self) -> bool:
        """Whether a request may go to the wire right now.

        In the open state the cooldown is checked against the clock; once it
        has elapsed the breaker moves to half-open and admits up to
        ``half_open_probes`` concurrent probe requests.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.clock.now - self.opened_at >= self.policy.cooldown:
                self._transition(HALF_OPEN)
            else:
                return False
        # half-open: admit a bounded number of probes
        if self._probes_in_flight < self.policy.half_open_probes:
            self._probes_in_flight += 1
            return True
        return False

    def check(self) -> None:
        """Raise :class:`BreakerOpenError` unless :meth:`allow` admits."""
        if not self.allow():
            raise BreakerOpenError(
                self.host, self.opened_at + self.policy.cooldown
            )

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            self._transition(OPEN)
        elif (
            self.state == CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self._transition(OPEN)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(host={self.host!r}, state={self.state},"
            f" failures={self.consecutive_failures}, trips={self.trips})"
        )
