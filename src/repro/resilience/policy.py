"""Retry policies and call deadlines.

The paper's interoperability story (one WSDL interface, many providers) only
pays off for *availability* if clients know when and how to try again.  This
module supplies the two time-domain primitives everything else builds on:

- :class:`RetryPolicy` — bounded exponential backoff with deterministic
  jitter.  Backoff advances the shared :class:`~repro.transport.clock.SimClock`
  instead of sleeping, so resilience behaviour is measured in virtual seconds
  and is exactly reproducible.
- :class:`Deadline` — an absolute point in virtual time by which the caller
  needs an answer.  It rides on every SOAP request as a header entry so
  servers can shed work whose caller has already given up (§3's common
  error vocabulary gives the shed a standard code: ``Portal.DeadlineExceeded``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults import PortalError
from repro.headers import register_header
from repro.transport.clock import SimClock
from repro.transport.network import TransportError
from repro.xmlutil.element import XmlElement
from repro.xmlutil.qname import QName

RESILIENCE_NS = "urn:gce:resilience"

#: the SOAP header entry carrying the caller's absolute deadline
DEADLINE_HEADER = QName(RESILIENCE_NS, "Deadline")
register_header(
    DEADLINE_HEADER,
    description="absolute virtual-time deadline for the whole call chain",
    module=__name__,
)


def is_retryable(exc: BaseException) -> bool:
    """Classify an exception under the common vocabulary.

    Transport-level failures (host down, injected fault, partition, open
    breaker) are always retryable — possibly against another provider.
    Portal errors carry their own classification (``PortalError.retryable``);
    everything else (programming errors, SOAP faults without a portal code)
    is terminal.
    """
    if isinstance(exc, TransportError):
        return True
    if isinstance(exc, PortalError):
        return exc.retryable
    return False


@dataclass(frozen=True)
class Deadline:
    """An absolute virtual-time deadline."""

    at: float

    @staticmethod
    def after(clock: SimClock, timeout: float) -> "Deadline":
        """The deadline *timeout* virtual seconds from now."""
        return Deadline(clock.now + float(timeout))

    def remaining(self, clock: SimClock) -> float:
        return self.at - clock.now

    def expired(self, clock: SimClock) -> bool:
        return clock.now >= self.at

    def to_header(self) -> XmlElement:
        """Encode as the SOAP header entry servers look for."""
        return XmlElement(DEADLINE_HEADER, text=repr(self.at))

    @staticmethod
    def from_headers(headers: list[XmlElement]) -> "Deadline | None":
        """Decode the deadline header if present (malformed values are
        ignored — resilience headers must never break a call)."""
        for entry in headers:
            if entry.tag == DEADLINE_HEADER:
                try:
                    return Deadline(float(entry.text))
                except (TypeError, ValueError):
                    return None
        return None


# -- the inbound-budget stack ------------------------------------------------
#
# While a SOAP server dispatches a request that carried a deadline header,
# that deadline is the *enclosing budget* for every nested call the handler
# makes.  The server pushes it here around dispatch (see
# repro.soap.server.SoapService); nested clients inherit it when the caller
# gave them no explicit timeout, and every deeper hop is checked against it:
# an inbound deadline *later* than the enclosing one means a stale budget
# was propagated, which raises the terminal ``Portal.BudgetViolation``.

_INBOUND_DEADLINES: list[Deadline] = []

#: single-slot observer of every checked hop; the simtest deadline-budget
#: oracle installs one.  ``listener(record)`` receives a dict with the
#: service/method and the enclosing/inbound absolute deadlines.
_HOP_LISTENER = None

#: tolerance for float round-trips through the header encoding
_BUDGET_EPSILON = 1e-9


def set_hop_listener(listener) -> None:
    """Install (or clear, with ``None``) the deadline-hop observer."""
    global _HOP_LISTENER
    _HOP_LISTENER = listener


def push_inbound_deadline(deadline: Deadline) -> None:
    """Enter a dispatch whose request carried *deadline*."""
    _INBOUND_DEADLINES.append(deadline)


def pop_inbound_deadline() -> None:
    """Leave the innermost deadline-carrying dispatch."""
    if _INBOUND_DEADLINES:
        _INBOUND_DEADLINES.pop()


def current_inbound_deadline() -> Deadline | None:
    """The innermost in-flight request deadline, if any (the budget every
    nested call made by the current handler must fit inside)."""
    return _INBOUND_DEADLINES[-1] if _INBOUND_DEADLINES else None


def check_hop_budget(
    inbound: Deadline, *, clock: SimClock, service: str = "", method: str = ""
) -> None:
    """Enforce the monotone-budget invariant for one inbound hop.

    Inside an enclosing dispatch, the nested request's absolute deadline
    may only be earlier than (or equal to) the enclosing one — wire time
    already makes the *remaining* budget strictly decrease.  A later
    deadline is a stale/forged budget: raise the classified, terminal
    ``Portal.BudgetViolation`` instead of silently working past the point
    the original caller gave up.
    """
    enclosing = current_inbound_deadline()
    if _HOP_LISTENER is not None:
        _HOP_LISTENER({
            "service": service,
            "method": method,
            "enclosing_at": enclosing.at if enclosing is not None else None,
            "inbound_at": inbound.at,
            "now": clock.now,
        })
    if enclosing is None:
        return
    if inbound.at > enclosing.at + _BUDGET_EPSILON:
        from repro.faults import BudgetViolationError

        raise BudgetViolationError(
            f"hop {method!r} arrived with deadline {inbound.at!r} later than "
            f"its enclosing budget {enclosing.at!r}: stale budget propagated",
            {
                "method": method,
                "service": service,
                "inbound": repr(inbound.at),
                "enclosing": repr(enclosing.at),
            },
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means at most
    two retries.  The delay before retry *n* (0-based) is
    ``min(max_delay, base_delay * multiplier**n)`` scaled by ``1 ± U(0,
    jitter)`` drawn from the caller's seeded PRNG, so two runs with the same
    seed back off identically.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff(self, retry: int, rng: random.Random | None = None) -> float:
        """The delay (virtual seconds) before 0-based retry number *retry*."""
        delay = min(self.max_delay, self.base_delay * self.multiplier**retry)
        if self.jitter and rng is not None:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(0.0, delay)

    def retries_remaining(self, attempts_made: int) -> bool:
        return attempts_made < self.max_attempts


#: a policy that never retries — the seed behaviour, for opting out
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)
