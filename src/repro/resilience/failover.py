"""Discovery-driven failover across interoperable providers.

The point of the paper's common WSDL interfaces (§3.4: the IU and SDSC
batch-script generators) is that *any* provider's implementation can stand
in for another.  :class:`FailoverClient` exploits that for availability: it
resolves every provider of a service interface — from the UDDI registry,
from WSIL inspection documents, or from the container-hierarchy discovery
service — and rotates across them when one fails.  Terminal errors
(``Portal.InvalidRequest`` and friends) are provider-independent and
propagate immediately; retryable errors and transport failures rotate to
the next provider.  A shared per-host circuit breaker keeps a dead
provider from charging wire latency on every rotation.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence

from repro.faults import DiscoveryError, PortalError, ServiceUnavailableError
from repro.resilience.breaker import CircuitBreakerPolicy
from repro.resilience.events import FAILOVER, GIVE_UP
from repro.resilience.policy import Deadline, RetryPolicy, is_retryable
from repro.soap.client import SoapClient
from repro.transport.client import HttpClient
from repro.transport.network import VirtualNetwork


class FailoverClient:
    """A dynamic RPC proxy bound to *all* providers of one interface.

    - ``sticky=True`` (default): after a success the winning provider stays
      preferred, so a dead provider stops seeing traffic entirely once the
      first failover lands.
    - ``sticky=False``: round-robin across providers per call (load
      spreading); the circuit breaker then caps traffic to a dead provider
      at its half-open probe rate.
    - ``rounds``: how many full rotations across all providers to attempt
      before giving up with ``Portal.ServiceUnavailable``.
    - ``retry_policy`` applies *between* rounds (a full rotation that failed
      everywhere backs off before trying again); within a round, rotation
      itself is the retry.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        endpoints: Sequence[str],
        namespace: str,
        *,
        source: str = "client",
        sticky: bool = True,
        rounds: int = 2,
        retry_policy: RetryPolicy | None = None,
        breaker_policy: CircuitBreakerPolicy | None = None,
        timeout: float | None = None,
        resilience_log=None,
        service_name: str = "",
        retry_seed: int = 0,
        traced: bool = True,
    ):
        if not endpoints:
            raise DiscoveryError("failover client needs at least one endpoint")
        if rounds < 1:
            raise ValueError("rounds must be at least 1")
        self.network = network
        self.clock = network.clock
        self.namespace = namespace
        self.source = source
        self.traced = traced
        self.endpoints = list(dict.fromkeys(endpoints))  # dedupe, keep order
        self.sticky = sticky
        self.rounds = rounds
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=rounds, base_delay=0.05
        )
        self.default_timeout = timeout
        self.log = resilience_log
        self.service_name = service_name or namespace
        # one HTTP client for all providers: breakers are per host and shared
        self.http = HttpClient(
            network, source, breaker_policy=breaker_policy or CircuitBreakerPolicy()
        )
        self.clients = [
            SoapClient(
                network,
                endpoint,
                namespace,
                http_client=self.http,
                resilience_log=resilience_log,
                service_name=self.service_name,
                retry_seed=retry_seed + index,
                traced=traced,
            )
            for index, endpoint in enumerate(self.endpoints)
        ]
        self.calls_made = 0
        self.failovers_performed = 0
        self._preferred = 0
        self._rotor = 0
        self._rng = random.Random(retry_seed)

    # -- provider resolution ---------------------------------------------------

    @classmethod
    def from_uddi(
        cls,
        network: VirtualNetwork,
        uddi_endpoint: str,
        interface_tmodel: str,
        namespace: str,
        *,
        source: str = "client",
        **kwargs: Any,
    ) -> "FailoverClient":
        """Resolve providers from a UDDI registry by interface tModel name.

        This is the paper's cross-group query — "list services supported by
        each group and search for services that support particular queuing
        systems" — turned into an availability mechanism: every binding that
        implements the common interface becomes a failover target.
        """
        from repro.uddi.service import UddiClient

        uddi = UddiClient(network, uddi_endpoint, source=source)
        tmodels = uddi.find_tmodel(interface_tmodel)
        if not tmodels:
            raise DiscoveryError(
                f"no tModel matching {interface_tmodel!r} in the registry",
                {"tModel": interface_tmodel},
            )
        endpoints: list[str] = []
        for tmodel in tmodels:
            for service in uddi.services_implementing(tmodel.key):
                for binding in service.bindings:
                    if tmodel.key in binding.tmodel_keys and binding.access_point:
                        endpoints.append(binding.access_point)
        if not endpoints:
            raise DiscoveryError(
                f"no bindings implement {interface_tmodel!r}",
                {"tModel": interface_tmodel},
            )
        return cls(network, endpoints, namespace, source=source, **kwargs)

    @classmethod
    def from_wsil(
        cls,
        network: VirtualNetwork,
        inspection_urls: str | Sequence[str],
        namespace: str,
        *,
        source: str = "client",
        name_contains: str = "",
        **kwargs: Any,
    ) -> "FailoverClient":
        """Resolve providers by crawling WSIL inspection documents.

        Each advertised service's WSDL is fetched to learn its concrete
        endpoint; services whose WSDL is unreachable are skipped (WSIL is
        the decentralized option — partial answers are expected).
        """
        from repro.discovery.wsil import inspect
        from repro.transport.network import TransportError
        from repro.wsdl.proxy import fetch_wsdl

        urls = (
            [inspection_urls]
            if isinstance(inspection_urls, str)
            else list(inspection_urls)
        )
        endpoints: list[str] = []
        for url in urls:
            for entry in inspect(network, url, source=source):
                if name_contains and name_contains.lower() not in entry.name.lower():
                    continue
                if not entry.wsdl_location:
                    continue
                try:
                    document = fetch_wsdl(network, entry.wsdl_location, source=source)
                except (TransportError, ConnectionError, ValueError):
                    continue
                if document.target_namespace == namespace and document.endpoint:
                    endpoints.append(document.endpoint)
        if not endpoints:
            raise DiscoveryError(
                f"no WSIL services advertise namespace {namespace!r}",
                {"namespace": namespace},
            )
        return cls(network, endpoints, namespace, source=source, **kwargs)

    @classmethod
    def from_discovery(
        cls,
        network: VirtualNetwork,
        discovery_endpoint: str,
        where: dict[str, str],
        namespace: str,
        *,
        source: str = "client",
        scope: str = "",
        **kwargs: Any,
    ) -> "FailoverClient":
        """Resolve providers from the container-hierarchy discovery service
        (every matching entry's ``endpoint`` metadatum becomes a target)."""
        from repro.discovery.registry import DiscoveryClient

        discovery = DiscoveryClient(network, discovery_endpoint, source=source)
        endpoints: list[str] = []
        for match in discovery.query(where, scope):
            value = match.get("metadata", {}).get("endpoint")
            if isinstance(value, list):
                endpoints.extend(v for v in value if v)
            elif value:
                endpoints.append(value)
        if not endpoints:
            raise DiscoveryError(
                f"no discovery entries matching {where!r} carry an endpoint",
                {"where": ",".join(f"{k}={v}" for k, v in where.items())},
            )
        return cls(network, endpoints, namespace, source=source, **kwargs)

    # -- calls -----------------------------------------------------------------

    def breaker_state(self, endpoint: str) -> str:
        """The breaker state for one endpoint's host (for tests/portlets)."""
        from repro.transport.http import parse_url

        breaker = self.http.breaker_for(parse_url(endpoint).host)
        return breaker.state if breaker is not None else "closed"

    def _start_index(self) -> int:
        if self.sticky:
            return self._preferred
        index = self._rotor
        self._rotor = (self._rotor + 1) % len(self.clients)
        return index

    def call(self, method: str, *params: Any, timeout: float | None = None) -> Any:
        """Invoke ``method(*params)`` on whichever provider answers.

        With observability installed, the whole rotation is one client span
        (``failover <method>``) — the per-provider attempts become child
        spans through the inner :class:`SoapClient`s, and each failover
        event lands on this span via the resilience-log bridge.
        """
        obs = (
            getattr(self.network, "observability", None) if self.traced else None
        )
        if obs is None:
            return self._call_rotation(method, params, timeout)
        with obs.tracer.span(
            f"failover {method}",
            kind="client",
            service=self.service_name,
            host=self.source,
            attributes={"providers": len(self.clients)},
        ):
            return self._call_rotation(method, params, timeout)

    def _call_rotation(
        self, method: str, params: tuple[Any, ...], timeout: float | None
    ) -> Any:
        budget = timeout if timeout is not None else self.default_timeout
        deadline = Deadline.after(self.clock, budget) if budget is not None else None
        self.calls_made += 1
        count = len(self.clients)
        start = self._start_index()
        last_error: BaseException | None = None
        attempts = 0
        for round_number in range(self.rounds):
            for offset in range(count):
                index = (start + offset) % count
                client = self.clients[index]
                if deadline is not None and deadline.expired(self.clock):
                    from repro.faults import DeadlineExceededError

                    raise DeadlineExceededError(
                        f"deadline passed during failover of {method!r}",
                        {"method": method, "deadline": repr(deadline.at)},
                    )
                try:
                    if deadline is not None:
                        result = client.call(
                            method, *params,
                            timeout=deadline.remaining(self.clock),
                        )
                    else:
                        result = client.call(method, *params)
                except PortalError as err:
                    if not err.retryable:
                        raise  # provider-independent: every provider would refuse
                    last_error = err
                except Exception as exc:  # noqa: BLE001 - rotation boundary
                    if not is_retryable(exc):
                        raise
                    last_error = exc
                else:
                    if self.sticky:
                        self._preferred = index
                    return result
                attempts += 1
                self._record_failover(
                    method, client.endpoint,
                    self.clients[(index + 1) % count].endpoint, last_error,
                )
                self.failovers_performed += 1
            if round_number + 1 < self.rounds:
                delay = self.retry_policy.backoff(round_number, self._rng)
                if deadline is not None and self.clock.now + delay >= deadline.at:
                    break
                self.clock.advance(delay)
        if self.log is not None:
            self.log.record(
                GIVE_UP,
                f"all {count} providers failed for {method!r}",
                service=self.service_name,
                operation=method,
                detail={"attempts": str(attempts)},
            )
        raise ServiceUnavailableError(
            f"all {count} providers of {self.namespace} failed for {method!r}",
            {
                "method": method,
                "endpoints": ",".join(self.endpoints),
                "lastError": type(last_error).__name__ if last_error else "",
            },
        )

    def _record_failover(
        self,
        method: str,
        from_endpoint: str,
        to_endpoint: str,
        error: BaseException | None,
    ) -> None:
        if self.log is None:
            return
        code = error.code if isinstance(error, PortalError) else type(error).__name__
        self.log.record(
            FAILOVER,
            f"{method!r} failed on {from_endpoint}; rotating to {to_endpoint}",
            service=self.service_name,
            operation=method,
            detail={"from": from_endpoint, "to": to_endpoint, "error": code},
        )

    def __getattr__(self, name: str) -> Callable[..., Any]:
        if name.startswith("_"):
            raise AttributeError(name)

        def invoke(*params: Any) -> Any:
            return self.call(name, *params)

        invoke.__name__ = name
        return invoke
