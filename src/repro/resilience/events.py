"""The resilience event log.

Every retry, breaker transition, failover rotation, and deadline shed is
recorded as an :class:`repro.faults.ErrorReport` — the paper's normalized
error record — with a ``Resilience.*`` code, so the monitoring service can
relay the stream to portlets exactly like service-side errors.  The stream
is also the determinism witness for the chaos harness: two runs with the
same seed must produce identical logs.
"""

from __future__ import annotations

from typing import Callable

from repro.faults import ErrorReport

RETRY = "Resilience.Retry"
BREAKER = "Resilience.Breaker"
FAILOVER = "Resilience.Failover"
DEADLINE = "Resilience.Deadline"
GIVE_UP = "Resilience.GiveUp"
SUBSCRIBER_ERROR = "Resilience.SubscriberError"
# load-management stream (emitted by repro.loadmgmt and the SOAP server)
SHED = "Load.Shed"
BUSY = "Load.Busy"
QUEUE_WAIT = "Load.QueueWait"
PLACEMENT = "Load.Placement"
# multi-region replication stream (emitted by repro.replication)
STALE_READ = "Replication.StaleRead"
HINT = "Replication.Hint"
HANDOFF = "Replication.Handoff"
SYNC = "Replication.Sync"
SYNC_FAILED = "Replication.SyncFailed"


class ResilienceLog:
    """An append-only, observable stream of resilience events.

    Subscribers are isolated: a raising subscriber never aborts delivery to
    later subscribers and never poisons the caller that recorded the event.
    The failure itself is surfaced as a :data:`SUBSCRIBER_ERROR` event (which
    is *not* redelivered to subscribers, so a persistently-broken subscriber
    cannot recurse).
    """

    def __init__(self):
        self.events: list[ErrorReport] = []
        self._subscribers: list[Callable[[ErrorReport], None]] = []

    def subscribe(self, callback: Callable[[ErrorReport], None]) -> None:
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[ErrorReport], None]) -> None:
        """Remove *callback*; silently ignores unknown callbacks."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def record(
        self,
        code: str,
        message: str,
        *,
        service: str = "",
        operation: str = "",
        detail: dict[str, str] | None = None,
    ) -> ErrorReport:
        report = ErrorReport(
            code=code,
            message=message,
            service=service,
            operation=operation,
            detail={k: str(v) for k, v in (detail or {}).items()},
        )
        self.events.append(report)
        for callback in list(self._subscribers):
            try:
                callback(report)
            except Exception as exc:
                self.events.append(ErrorReport(
                    code=SUBSCRIBER_ERROR,
                    message=f"subscriber raised {type(exc).__name__}: {exc}",
                    service=report.service,
                    operation=report.operation,
                    detail={"event": report.code},
                ))
        return report

    def by_code(self, code: str) -> list[ErrorReport]:
        return [e for e in self.events if e.code == code]

    def to_dicts(self) -> list[dict]:
        """The full stream in comparable/serializable form."""
        return [e.to_dict() for e in self.events]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
