"""Client-side resilience for interoperable portal services.

The paper makes provider substitution *possible* (common WSDL interfaces,
common error vocabulary); this package makes it *useful* under failure:

- :mod:`repro.resilience.policy` — retry policies with clock-advancing
  backoff, call deadlines propagated as SOAP headers, and the
  retryable/terminal classification over :mod:`repro.faults`.
- :mod:`repro.resilience.breaker` — per-endpoint circuit breakers
  (closed/open/half-open) inside :class:`repro.transport.client.HttpClient`.
- :mod:`repro.resilience.failover` — :class:`FailoverClient`, which resolves
  every provider of an interface from UDDI/WSIL/container discovery and
  rotates across them on failure.
- :mod:`repro.resilience.chaos` — a seeded, deterministic chaos harness
  driving fault schedules into the virtual network.
- :mod:`repro.resilience.events` — every retry/trip/failover/shed recorded
  as an :class:`repro.faults.ErrorReport` for the monitoring portlet.
"""

from repro.resilience.breaker import (
    BreakerOpenError,
    CircuitBreaker,
    CircuitBreakerPolicy,
)
from repro.resilience.chaos import (
    ChaosConfig,
    ChaosHarness,
    ChaosMonkey,
    ChaosReport,
)
from repro.resilience.events import ResilienceLog
from repro.resilience.failover import FailoverClient
from repro.resilience.policy import (
    NO_RETRY,
    Deadline,
    RetryPolicy,
    is_retryable,
)

__all__ = [
    "BreakerOpenError",
    "ChaosConfig",
    "ChaosHarness",
    "ChaosMonkey",
    "ChaosReport",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "Deadline",
    "FailoverClient",
    "NO_RETRY",
    "ResilienceLog",
    "RetryPolicy",
    "is_retryable",
]
