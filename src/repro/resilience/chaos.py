"""A seeded chaos harness over the virtual network.

The ROADMAP asks for a portal that gracefully handles "as many scenarios as
you can imagine"; this module imagines them on a schedule.  A
:class:`ChaosMonkey` drives random fault injection — hosts taken down and
repaired, transport-failure bursts, latency spikes, flapping — from a
seeded PRNG against the :class:`~repro.transport.network.VirtualNetwork`,
and a :class:`ChaosHarness` interleaves those faults with a workload.
Everything runs on the virtual clock, so a chaos run with a fixed seed is
*fully deterministic*: two runs produce identical
:class:`~repro.faults.ErrorReport` streams, which is what makes resilience
regressions diffable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults import PortalError
from repro.resilience.events import ResilienceLog
from repro.transport.network import TransportError, VirtualNetwork

TAKE_DOWN = "Chaos.TakeDown"
REPAIR = "Chaos.Repair"
RESTART = "Chaos.Restart"
FAULT_BURST = "Chaos.FaultBurst"
LATENCY_SPIKE = "Chaos.LatencySpike"
FLAP = "Chaos.Flap"
PARTITION = "Chaos.Partition"
PARTITION_HEAL = "Chaos.PartitionHeal"


@dataclass(frozen=True)
class ChaosConfig:
    """Per-step, per-host fault probabilities and magnitudes.

    The ``p_partition`` family only applies when the monkey was built with
    ``regions`` (named host groups): each step may then cut a pair of
    regions apart — fully, one-way, or partially (per-attempt loss) — and
    heal the cut after a drawn duration.  Defaults keep partitions off so
    existing seeded schedules replay unchanged.
    """

    p_take_down: float = 0.04
    down_duration: tuple[float, float] = (2.0, 15.0)
    p_fault_burst: float = 0.08
    burst_size: tuple[int, int] = (1, 3)
    p_latency_spike: float = 0.06
    spike_magnitude: tuple[float, float] = (0.5, 3.0)
    p_flap: float = 0.02
    flap_phases: tuple[float, float] = (1.0, 4.0)
    p_partition: float = 0.0
    partition_duration: tuple[float, float] = (2.0, 10.0)
    #: split-brain shapes to draw from (see VirtualNetwork.partition*)
    partition_modes: tuple[str, ...] = ("full", "oneway", "partial")
    partition_loss: float = 0.75


class ChaosMonkey:
    """Injects a random-but-reproducible fault schedule into the network.

    Call :meth:`step` between workload iterations: due repairs are applied
    first (a downed host comes back when its outage expires on the virtual
    clock), then each target host independently draws one fault — or none —
    for this step.  Hosts in ``protected`` are never touched (take the
    registry down and nothing can discover the way around the outage).
    """

    def __init__(
        self,
        network: VirtualNetwork,
        hosts: list[str],
        *,
        seed: int = 0,
        config: ChaosConfig | None = None,
        log: ResilienceLog | None = None,
        protected: tuple[str, ...] = (),
        rebuilders: dict[str, Callable[[], Any]] | None = None,
        regions: dict[str, tuple[str, ...]] | None = None,
    ):
        self.network = network
        self.clock = network.clock
        self.hosts = sorted(set(hosts) - set(protected))
        self.config = config or ChaosConfig()
        # not `log or ...`: an empty ResilienceLog has len 0 and is falsy
        self.log = log if log is not None else ResilienceLog()
        self.faults_injected = 0
        #: host -> callable that re-deploys the host's services after a
        #: repair (the crash-restart path: process state is gone, the host
        #: disk survived, so a durable rebuilder replays its journals)
        self.rebuilders = dict(rebuilders or {})
        self.restarts_performed = 0
        #: region name -> the hosts (and client sources) living in it; when
        #: set, ``config.p_partition`` cuts pairs of regions apart
        self.regions = {
            name: tuple(members) for name, members in (regions or {}).items()
        }
        self.partitions_injected = 0
        self._rng = random.Random(seed)
        self._repairs: list[tuple[float, str]] = []  # (due time, host)
        self._down: set[str] = set()
        #: (heal due time, network partition id, "a|b" label)
        self._partition_heals: list[tuple[float, int, str]] = []

    def _record(self, code: str, message: str, host: str, **detail: Any) -> None:
        self.log.record(
            code,
            message,
            service="chaos",
            detail={"host": host, "t": f"{self.clock.now:.6f}",
                    **{k: str(v) for k, v in detail.items()}},
        )

    def step(self) -> None:
        """Apply due repairs and partition heals, then draw this step's
        faults."""
        now = self.clock.now
        still_pending: list[tuple[float, str]] = []
        for due, host in self._repairs:
            if due <= now:
                self.network.bring_up(host)
                self._down.discard(host)
                self._record(REPAIR, f"{host} repaired", host)
                self._restart(host)
            else:
                still_pending.append((due, host))
        self._repairs = still_pending
        self._apply_due_partition_heals(now)

        config = self.config
        if self.regions and config.p_partition > 0:
            self._maybe_partition(now)
        for host in self.hosts:
            if host in self._down:
                continue
            draw = self._rng.random()
            if draw < config.p_take_down:
                duration = self._rng.uniform(*config.down_duration)
                self.network.take_down(host)
                self._down.add(host)
                self._repairs.append((now + duration, host))
                self.faults_injected += 1
                self._record(
                    TAKE_DOWN, f"{host} down for {duration:.3f}s", host,
                    duration=f"{duration:.6f}",
                )
            elif draw < config.p_take_down + config.p_fault_burst:
                size = self._rng.randint(*config.burst_size)
                # don't stack bursts on a host that hasn't consumed the last
                # one: a circuit breaker diverts traffic away from a faulty
                # host, and unconsumed charges would otherwise pile up into
                # a permanent outage no probe can ever clear
                if self.network.pending_failures(host) == 0:
                    self.network.fail_next(host, times=size)
                    self.faults_injected += 1
                    self._record(
                        FAULT_BURST, f"{size} injected failures at {host}",
                        host, size=size,
                    )
            elif draw < (
                config.p_take_down + config.p_fault_burst + config.p_latency_spike
            ):
                magnitude = self._rng.uniform(*config.spike_magnitude)
                self.network.set_latency_spike(host, 1.0, magnitude)
                self.faults_injected += 1
                self._record(
                    LATENCY_SPIKE, f"+{magnitude:.3f}s latency at {host}", host,
                    magnitude=f"{magnitude:.6f}",
                )
            else:
                # clear any lingering spike so they don't accumulate forever
                self.network.set_latency_spike(host, 0.0, 0.0)
                threshold = (
                    config.p_take_down
                    + config.p_fault_burst
                    + config.p_latency_spike
                    + config.p_flap
                )
                if draw < threshold:
                    up_for, down_for = config.flap_phases
                    self.network.set_flapping(host, up_for, down_for)
                    self._down.add(host)  # treat as faulted until repaired
                    duration = self._rng.uniform(*config.down_duration)
                    self._repairs.append((now + duration, host))
                    self.faults_injected += 1
                    self._record(
                        FLAP,
                        f"{host} flapping {up_for}/{down_for}s for {duration:.3f}s",
                        host,
                        duration=f"{duration:.6f}",
                    )

    def _apply_due_partition_heals(self, now: float) -> None:
        still_cut: list[tuple[float, int, str]] = []
        for due, partition_id, label in self._partition_heals:
            if due <= now:
                self.network.heal_partition(partition_id)
                self._record(
                    PARTITION_HEAL, f"partition {label} healed", label,
                    partition=partition_id,
                )
            else:
                still_cut.append((due, partition_id, label))
        self._partition_heals = still_cut

    def _maybe_partition(self, now: float) -> None:
        """One seeded draw per step: maybe cut a pair of regions apart."""
        config = self.config
        if self._rng.random() >= config.p_partition:
            return
        if self._partition_heals:
            return  # one split-brain at a time keeps schedules analysable
        names = sorted(self.regions)
        if len(names) < 2:
            return
        region_a, region_b = self._rng.sample(names, 2)
        side_a = set(self.regions[region_a])
        side_b = set(self.regions[region_b])
        mode = config.partition_modes[
            self._rng.randrange(len(config.partition_modes))
        ]
        if mode == "oneway":
            partition_id = self.network.partition_oneway(side_a, side_b)
        elif mode == "partial":
            partition_id = self.network.partition_partial(
                side_a, side_b, config.partition_loss
            )
        else:
            partition_id = self.network.partition(side_a, side_b)
        duration = self._rng.uniform(*config.partition_duration)
        label = f"{region_a}|{region_b}"
        self._partition_heals.append((now + duration, partition_id, label))
        self.faults_injected += 1
        self.partitions_injected += 1
        self._record(
            PARTITION,
            f"{mode} partition {label} for {duration:.3f}s",
            label,
            mode=mode,
            duration=f"{duration:.6f}",
            partition=partition_id,
        )

    def _restart(self, host: str) -> None:
        """Re-deploy a repaired host's services from its surviving disk."""
        rebuilder = self.rebuilders.get(host)
        if rebuilder is None:
            return
        rebuilder()
        self.restarts_performed += 1
        self._record(RESTART, f"{host} services rebuilt from journal", host)

    def heal_all(self) -> None:
        """Repair everything immediately (end-of-run cleanup)."""
        repaired = {host for _, host in self._repairs} | set(self._down)
        for _, host in self._repairs:
            self.network.bring_up(host)
        self._repairs.clear()
        for host in list(self._down):
            self.network.bring_up(host)
        self._down.clear()
        for _, partition_id, label in self._partition_heals:
            self.network.heal_partition(partition_id)
            self._record(
                PARTITION_HEAL, f"partition {label} healed", label,
                partition=partition_id,
            )
        self._partition_heals.clear()
        for host in sorted(repaired):
            self._restart(host)
        for host in self.hosts:
            self.network.set_latency_spike(host, 0.0, 0.0)
            self.network.clear_failures(host)


@dataclass
class ChaosReport:
    """Outcome of one harness run."""

    iterations: int = 0
    successes: int = 0
    client_errors: list[str] = field(default_factory=list)
    faults_injected: int = 0
    events: list[dict] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.successes / self.iterations if self.iterations else 0.0


class ChaosHarness:
    """Runs a workload under a chaos monkey, collecting the event stream.

    The workload is any callable taking the iteration index; client-visible
    errors (portal errors and transport failures that escape the workload's
    own resilience) are recorded, not raised — the report says how well the
    resilience layer absorbed the schedule.
    """

    def __init__(self, network: VirtualNetwork, monkey: ChaosMonkey):
        self.network = network
        self.monkey = monkey
        self.log = monkey.log

    def run(
        self, workload: Callable[[int], Any], iterations: int
    ) -> ChaosReport:
        report = ChaosReport(iterations=iterations)
        for index in range(iterations):
            self.monkey.step()
            try:
                workload(index)
            except (PortalError, TransportError) as err:
                code = (
                    err.code if isinstance(err, PortalError)
                    else type(err).__name__
                )
                report.client_errors.append(code)
                self.log.record(
                    "Chaos.ClientError",
                    f"workload iteration {index} failed: {code}",
                    service="chaos",
                    operation=f"iteration-{index}",
                    detail={"error": code},
                )
            else:
                report.successes += 1
        self.monkey.heal_all()
        report.faults_injected = self.monkey.faults_injected
        report.events = self.log.to_dicts()
        return report
