"""A seeded chaos harness over the virtual network.

The ROADMAP asks for a portal that gracefully handles "as many scenarios as
you can imagine"; this module imagines them on a schedule.  A
:class:`ChaosMonkey` drives random fault injection — hosts taken down and
repaired, transport-failure bursts, latency spikes, flapping — from a
seeded PRNG against the :class:`~repro.transport.network.VirtualNetwork`,
and a :class:`ChaosHarness` interleaves those faults with a workload.
Everything runs on the virtual clock, so a chaos run with a fixed seed is
*fully deterministic*: two runs produce identical
:class:`~repro.faults.ErrorReport` streams, which is what makes resilience
regressions diffable.

The fault *primitives* (``inject_take_down``, ``inject_fault_burst``,
``inject_latency_spike``, ``inject_flap``, ``inject_partition``) are public:
the seeded :meth:`ChaosMonkey.step` draw uses them, and so does the
simulation-testing rig (:mod:`repro.simtest`), which composes them into
explicit nemesis schedules instead of probabilistic draws.  Deferred
effects (repairs, partition heals) live in one pending-event queue ordered
by ``(due time, event id)`` — event ids are assigned in scheduling order
from a single counter, so two events due at the same virtual tick always
apply in the same total order and same-seed schedules are byte-identical.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults import PortalError
from repro.resilience.events import ResilienceLog
from repro.transport.network import TransportError, VirtualNetwork

TAKE_DOWN = "Chaos.TakeDown"
REPAIR = "Chaos.Repair"
RESTART = "Chaos.Restart"
FAULT_BURST = "Chaos.FaultBurst"
LATENCY_SPIKE = "Chaos.LatencySpike"
FLAP = "Chaos.Flap"
PARTITION = "Chaos.Partition"
PARTITION_HEAL = "Chaos.PartitionHeal"


@dataclass(frozen=True)
class ChaosConfig:
    """Per-step, per-host fault probabilities and magnitudes.

    The ``p_partition`` family only applies when the monkey was built with
    ``regions`` (named host groups): each step may then cut a pair of
    regions apart — fully, one-way, or partially (per-attempt loss) — and
    heal the cut after a drawn duration.  Defaults keep partitions off so
    existing seeded schedules replay unchanged.
    """

    p_take_down: float = 0.04
    down_duration: tuple[float, float] = (2.0, 15.0)
    p_fault_burst: float = 0.08
    burst_size: tuple[int, int] = (1, 3)
    p_latency_spike: float = 0.06
    spike_magnitude: tuple[float, float] = (0.5, 3.0)
    p_flap: float = 0.02
    flap_phases: tuple[float, float] = (1.0, 4.0)
    p_partition: float = 0.0
    partition_duration: tuple[float, float] = (2.0, 10.0)
    #: split-brain shapes to draw from (see VirtualNetwork.partition*)
    partition_modes: tuple[str, ...] = ("full", "oneway", "partial")
    partition_loss: float = 0.75


#: a config with every probability zero — the simtest rig uses it to drive
#: the primitives from an explicit schedule with no random draws at all
SCHEDULED_ONLY = ChaosConfig(
    p_take_down=0.0, p_fault_burst=0.0, p_latency_spike=0.0, p_flap=0.0,
    p_partition=0.0,
)


class ChaosMonkey:
    """Injects a random-but-reproducible fault schedule into the network.

    Call :meth:`step` between workload iterations: due repairs and partition
    heals are applied first in ``(due, event id)`` order, then each target
    host independently draws one fault — or none — for this step.  Hosts in
    ``protected`` are never touched (take the registry down and nothing can
    discover the way around the outage).
    """

    def __init__(
        self,
        network: VirtualNetwork,
        hosts: list[str],
        *,
        seed: int = 0,
        config: ChaosConfig | None = None,
        log: ResilienceLog | None = None,
        protected: tuple[str, ...] = (),
        rebuilders: dict[str, Callable[[], Any]] | None = None,
        regions: dict[str, tuple[str, ...]] | None = None,
    ):
        self.network = network
        self.clock = network.clock
        self.hosts = sorted(set(hosts) - set(protected))
        self.config = config or ChaosConfig()
        # not `log or ...`: an empty ResilienceLog has len 0 and is falsy
        self.log = log if log is not None else ResilienceLog()
        self.faults_injected = 0
        #: host -> callable that re-deploys the host's services after a
        #: repair (the crash-restart path: process state is gone, the host
        #: disk survived, so a durable rebuilder replays its journals)
        self.rebuilders = dict(rebuilders or {})
        self.restarts_performed = 0
        #: region name -> the hosts (and client sources) living in it; when
        #: set, ``config.p_partition`` cuts pairs of regions apart
        self.regions = {
            name: tuple(members) for name, members in (regions or {}).items()
        }
        self.partitions_injected = 0
        self._rng = random.Random(seed)
        self._down: set[str] = set()
        #: the unified deferred-effect queue: (due time, event id, action,
        #: payload).  Event ids come from one counter in scheduling order,
        #: so sorting by (due, id) gives every pending effect — repair or
        #: partition heal — one deterministic total order even when several
        #: fall due at the same virtual tick.
        self._pending: list[tuple[float, int, str, Any]] = []
        self._event_ids = itertools.count(1)

    def _record(self, code: str, message: str, host: str, **detail: Any) -> None:
        self.log.record(
            code,
            message,
            service="chaos",
            detail={"host": host, "t": f"{self.clock.now:.6f}",
                    **{k: str(v) for k, v in detail.items()}},
        )

    def _schedule(self, due: float, action: str, payload: Any) -> None:
        self._pending.append((due, next(self._event_ids), action, payload))

    def pending_events(self) -> list[tuple[float, int, str, Any]]:
        """The deferred repairs/heals still queued, in application order."""
        return sorted(self._pending)

    def has_active_partition(self) -> bool:
        """Whether a monkey-injected partition is still waiting to heal."""
        return any(action == "heal-partition" for _, _, action, _ in self._pending)

    # -- the fault primitives (public: simtest nemeses call these) ----------

    def inject_take_down(self, host: str, duration: float) -> None:
        """Kill *host* now; schedule its repair (and durable rebuild)."""
        self.network.take_down(host)
        self._down.add(host)
        self._schedule(self.clock.now + duration, "repair", host)
        self.faults_injected += 1
        self._record(
            TAKE_DOWN, f"{host} down for {duration:.3f}s", host,
            duration=f"{duration:.6f}",
        )

    def inject_fault_burst(self, host: str, size: int) -> bool:
        """Arm *size* transport failures at *host*; returns whether armed.

        Bursts never stack on unconsumed charges: a circuit breaker diverts
        traffic away from a faulty host, and piled-up charges would turn a
        blip into a permanent outage no probe can ever clear.
        """
        if self.network.pending_failures(host) != 0:
            return False
        self.network.fail_next(host, times=size)
        self.faults_injected += 1
        self._record(
            FAULT_BURST, f"{size} injected failures at {host}", host, size=size,
        )
        return True

    def inject_latency_spike(
        self, host: str, magnitude: float, probability: float = 1.0
    ) -> None:
        """Add *magnitude* virtual seconds to requests hitting *host*."""
        self.network.set_latency_spike(host, probability, magnitude)
        self.faults_injected += 1
        self._record(
            LATENCY_SPIKE, f"+{magnitude:.3f}s latency at {host}", host,
            magnitude=f"{magnitude:.6f}",
        )

    def inject_flap(
        self, host: str, up_for: float, down_for: float, duration: float
    ) -> None:
        """Make *host* flap up/down until a repair ends the episode."""
        self.network.set_flapping(host, up_for, down_for)
        self._down.add(host)  # treat as faulted until repaired
        self._schedule(self.clock.now + duration, "repair", host)
        self.faults_injected += 1
        self._record(
            FLAP,
            f"{host} flapping {up_for}/{down_for}s for {duration:.3f}s",
            host,
            duration=f"{duration:.6f}",
        )

    def inject_partition(
        self,
        region_a: str,
        region_b: str,
        mode: str,
        duration: float,
        *,
        loss: float | None = None,
    ) -> int:
        """Cut regions *region_a* and *region_b* apart; schedule the heal.

        ``mode`` is one of ``full`` / ``oneway`` / ``partial`` (see
        :class:`~repro.transport.network.PartitionSpec`); *loss* overrides
        the config's per-attempt drop probability for partial cuts.
        Returns the network partition id.
        """
        side_a = set(self.regions[region_a])
        side_b = set(self.regions[region_b])
        if mode == "oneway":
            partition_id = self.network.partition_oneway(side_a, side_b)
        elif mode == "partial":
            partition_id = self.network.partition_partial(
                side_a, side_b,
                self.config.partition_loss if loss is None else loss,
            )
        else:
            partition_id = self.network.partition(side_a, side_b)
        label = f"{region_a}|{region_b}"
        self._schedule(
            self.clock.now + duration, "heal-partition", (partition_id, label)
        )
        self.faults_injected += 1
        self.partitions_injected += 1
        self._record(
            PARTITION,
            f"{mode} partition {label} for {duration:.3f}s",
            label,
            mode=mode,
            duration=f"{duration:.6f}",
            partition=partition_id,
        )
        return partition_id

    # -- applying deferred effects -------------------------------------------

    def apply_due(self, now: float | None = None) -> None:
        """Apply every repair/heal due by *now* in ``(due, id)`` order."""
        if now is None:
            now = self.clock.now
        due = sorted(event for event in self._pending if event[0] <= now)
        self._pending = [event for event in self._pending if event[0] > now]
        for _due, _event_id, action, payload in due:
            if action == "repair":
                host = payload
                self.network.bring_up(host)
                self._down.discard(host)
                self._record(REPAIR, f"{host} repaired", host)
                self._restart(host)
            elif action == "heal-partition":
                partition_id, label = payload
                self.network.heal_partition(partition_id)
                self._record(
                    PARTITION_HEAL, f"partition {label} healed", label,
                    partition=partition_id,
                )

    def step(self) -> None:
        """Apply due repairs and partition heals, then draw this step's
        faults."""
        now = self.clock.now
        self.apply_due(now)

        config = self.config
        if self.regions and config.p_partition > 0:
            self._maybe_partition()
        for host in self.hosts:
            if host in self._down:
                continue
            draw = self._rng.random()
            if draw < config.p_take_down:
                duration = self._rng.uniform(*config.down_duration)
                self.inject_take_down(host, duration)
            elif draw < config.p_take_down + config.p_fault_burst:
                size = self._rng.randint(*config.burst_size)
                self.inject_fault_burst(host, size)
            elif draw < (
                config.p_take_down + config.p_fault_burst + config.p_latency_spike
            ):
                magnitude = self._rng.uniform(*config.spike_magnitude)
                self.inject_latency_spike(host, magnitude)
            else:
                # clear any lingering spike so they don't accumulate forever
                self.network.set_latency_spike(host, 0.0, 0.0)
                threshold = (
                    config.p_take_down
                    + config.p_fault_burst
                    + config.p_latency_spike
                    + config.p_flap
                )
                if draw < threshold:
                    up_for, down_for = config.flap_phases
                    duration = self._rng.uniform(*config.down_duration)
                    self.inject_flap(host, up_for, down_for, duration)

    def _maybe_partition(self) -> None:
        """One seeded draw per step: maybe cut a pair of regions apart."""
        config = self.config
        if self._rng.random() >= config.p_partition:
            return
        if self.has_active_partition():
            return  # one split-brain at a time keeps schedules analysable
        names = sorted(self.regions)
        if len(names) < 2:
            return
        region_a, region_b = self._rng.sample(names, 2)
        mode = config.partition_modes[
            self._rng.randrange(len(config.partition_modes))
        ]
        duration = self._rng.uniform(*config.partition_duration)
        self.inject_partition(region_a, region_b, mode, duration)

    def _restart(self, host: str) -> None:
        """Re-deploy a repaired host's services from its surviving disk."""
        rebuilder = self.rebuilders.get(host)
        if rebuilder is None:
            return
        rebuilder()
        self.restarts_performed += 1
        self._record(RESTART, f"{host} services rebuilt from journal", host)

    def heal_all(self) -> None:
        """Repair everything immediately (end-of-run cleanup)."""
        repaired = {
            payload for _, _, action, payload in self._pending
            if action == "repair"
        } | set(self._down)
        for _due, _event_id, action, payload in sorted(self._pending):
            if action == "repair":
                self.network.bring_up(payload)
            elif action == "heal-partition":
                partition_id, label = payload
                self.network.heal_partition(partition_id)
                self._record(
                    PARTITION_HEAL, f"partition {label} healed", label,
                    partition=partition_id,
                )
        self._pending.clear()
        for host in list(self._down):
            self.network.bring_up(host)
        self._down.clear()
        for host in sorted(repaired):
            self._restart(host)
        for host in self.hosts:
            self.network.set_latency_spike(host, 0.0, 0.0)
            self.network.clear_failures(host)


@dataclass
class ChaosReport:
    """Outcome of one harness run."""

    iterations: int = 0
    successes: int = 0
    client_errors: list[str] = field(default_factory=list)
    faults_injected: int = 0
    events: list[dict] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.successes / self.iterations if self.iterations else 0.0


class ChaosHarness:
    """Runs a workload under a chaos monkey, collecting the event stream.

    The workload is any callable taking the iteration index; client-visible
    errors (portal errors and transport failures that escape the workload's
    own resilience) are recorded, not raised — the report says how well the
    resilience layer absorbed the schedule.
    """

    def __init__(self, network: VirtualNetwork, monkey: ChaosMonkey):
        self.network = network
        self.monkey = monkey
        self.log = monkey.log

    def run(
        self, workload: Callable[[int], Any], iterations: int
    ) -> ChaosReport:
        report = ChaosReport(iterations=iterations)
        for index in range(iterations):
            self.monkey.step()
            try:
                workload(index)
            except (PortalError, TransportError) as err:
                code = (
                    err.code if isinstance(err, PortalError)
                    else type(err).__name__
                )
                report.client_errors.append(code)
                self.log.record(
                    "Chaos.ClientError",
                    f"workload iteration {index} failed: {code}",
                    service="chaos",
                    operation=f"iteration-{index}",
                    detail={"error": code},
                )
            else:
                report.successes += 1
        self.monkey.heal_all()
        report.faults_injected = self.monkey.faults_injected
        report.events = self.log.to_dicts()
        return report
