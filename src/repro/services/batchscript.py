"""The interoperable batch script generation service (§3.4).

"SDSC and IU each converted legacy batch script generation tools into SOAP
services ... we agreed to a common service interface, implemented it
separately with support for different queuing systems, entered information
into a UDDI repository and developed clients that could list services
supported by each group and search for services that support particular
queuing systems.  Scripts could then be created through either service."

This module provides:

- the agreed common interface (:data:`BSG_NAMESPACE`,
  :func:`bsg_interface_wsdl`), with the shared string-map data model;
- two independent implementations — :class:`IuBatchScriptGenerator`
  (Gateway-derived: PBS and GRD) and :class:`SdscBatchScriptGenerator`
  (HotPage-derived: LSF and NQS) — which deliberately *do not share code*
  beyond the scheduler dialects themselves;
- two client styles standing in for the paper's Java and Python clients:
  :class:`JavaStyleBsgClient` sends typed SOAP parameters,
  :class:`PythonStyleBsgClient` sends everything as strings.  Experiment C6
  checks all four client x server pairs interoperate;
- the legacy IU variant that was "tightly integrated with the context
  manager" and needs a placeholder context per stateless call
  (:class:`IuLegacyBatchScriptGenerator`, experiment C4).
"""

from __future__ import annotations

from typing import Any

from repro.faults import InvalidRequestError
from repro.grid.jobs import JobSpec
from repro.grid.queuing import make_dialect
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer
from repro.wsdl.model import WsdlDocument, WsdlOperation, WsdlPart

BSG_NAMESPACE = "urn:gce:batch-script-generator"

# The common data model: the string-keyed job parameter map every
# implementation accepts.  (The paper: "SOAP and WSDL were adequate for the
# service's simple interface"; the params stay simple strings.)
JOB_PARAM_KEYS = (
    "jobName",
    "executable",
    "arguments",
    "queue",
    "cpus",
    "wallTime",      # seconds
    "memoryMb",
    "stdout",
    "stderr",
    "directory",
    "account",
)


def bsg_interface_wsdl(service_name: str, endpoint: str) -> WsdlDocument:
    """The agreed common WSDL interface, parameterized only by endpoint."""
    return WsdlDocument(
        service_name=service_name,
        target_namespace=BSG_NAMESPACE,
        endpoint=endpoint,
        documentation=(
            "GCE common batch script generation interface: generate batch "
            "scripts for named queuing systems from a string job-parameter map."
        ),
        operations=[
            WsdlOperation(
                "listSchedulers",
                "Queuing systems this implementation supports.",
                [],
                WsdlPart("return", "xsd:anyType"),
            ),
            WsdlOperation(
                "supportsScheduler",
                "Whether the named queuing system is supported.",
                [WsdlPart("scheduler", "xsd:string")],
                WsdlPart("return", "xsd:boolean"),
            ),
            WsdlOperation(
                "generateScript",
                "Render a batch script for the scheduler from job parameters.",
                [WsdlPart("scheduler", "xsd:string"), WsdlPart("params", "xsd:anyType")],
                WsdlPart("return", "xsd:string"),
            ),
            WsdlOperation(
                "validateScript",
                "Parse a script and report problems (empty list = valid).",
                [WsdlPart("scheduler", "xsd:string"), WsdlPart("script", "xsd:string")],
                WsdlPart("return", "xsd:anyType"),
            ),
        ],
    )


def params_to_spec(params: dict[str, Any]) -> JobSpec:
    """Decode the common string-map data model into a job spec.

    Values may arrive typed (Java-style clients) or as strings
    (Python-style clients); both decode identically — this coercion is what
    makes the cross-language interoperability work.
    """
    unknown = set(params) - set(JOB_PARAM_KEYS)
    if unknown:
        raise InvalidRequestError(
            f"unknown job parameters: {sorted(unknown)}",
            {"unknown": ",".join(sorted(unknown))},
        )

    def text(key: str, default: str = "") -> str:
        value = params.get(key, default)
        return default if value is None else str(value)

    def number(key: str, default: float) -> float:
        value = params.get(key)
        if value in (None, ""):
            return default
        try:
            return float(value)
        except (TypeError, ValueError):
            raise InvalidRequestError(
                f"parameter {key!r} is not numeric: {value!r}"
            ) from None

    spec = JobSpec(
        name=text("jobName", "job") or "job",
        executable=text("executable"),
        arguments=text("arguments").split(),
        queue=text("queue"),
        cpus=int(number("cpus", 1)),
        wallclock_limit=number("wallTime", 3600.0),
        memory_mb=int(number("memoryMb", 0)),
        stdout_path=text("stdout"),
        stderr_path=text("stderr"),
        directory=text("directory"),
        account=text("account"),
    )
    if not spec.executable:
        raise InvalidRequestError("job parameter 'executable' is required")
    problems = spec.validate()
    if problems:
        raise InvalidRequestError("; ".join(problems))
    return spec


class BatchScriptGenerator:
    """Shared behaviour of both implementations of the common interface."""

    #: queuing systems this implementation supports; set by subclasses
    SCHEDULERS: tuple[str, ...] = ()
    provider = "generic"

    def __init__(self):
        self._dialects = {name: make_dialect(name) for name in self.SCHEDULERS}
        self.scripts_generated = 0

    # -- the agreed interface ---------------------------------------------------

    def listSchedulers(self) -> list[str]:
        """Queuing systems this implementation supports."""
        return list(self.SCHEDULERS)

    def supportsScheduler(self, scheduler: str) -> bool:
        """Whether the named queuing system is supported."""
        return str(scheduler).upper() in self._dialects

    def generateScript(self, scheduler: str, params: dict[str, Any]) -> str:
        """Render a batch script for *scheduler* from the job-parameter map."""
        dialect = self._dialects.get(str(scheduler).upper())
        if dialect is None:
            raise InvalidRequestError(
                f"{self.provider} generator does not support {scheduler!r}; "
                f"supported: {list(self.SCHEDULERS)}",
                {"scheduler": str(scheduler)},
            )
        self.scripts_generated += 1
        return dialect.generate(params_to_spec(params))

    def validateScript(self, scheduler: str, script: str) -> list[str]:
        """Parse a script in the scheduler's dialect; returns problems."""
        dialect = self._dialects.get(str(scheduler).upper())
        if dialect is None:
            raise InvalidRequestError(
                f"{self.provider} generator does not support {scheduler!r}"
            )
        try:
            spec = dialect.parse(script)
        except InvalidRequestError as err:
            return [err.message]
        return spec.validate()


class IuBatchScriptGenerator(BatchScriptGenerator):
    """The Gateway-derived implementation: PBS and GRD."""

    SCHEDULERS = ("PBS", "GRD")
    provider = "IU"


class SdscBatchScriptGenerator(BatchScriptGenerator):
    """The HotPage-derived implementation: LSF and NQS."""

    SCHEDULERS = ("LSF", "NQS")
    provider = "SDSC"


class IuLegacyBatchScriptGenerator(IuBatchScriptGenerator):
    """The pre-refactor Gateway generator, "initially tightly integrated with
    the context manager": every call must happen inside a session context,
    so stateless callers cost a placeholder context create + destroy
    ("introduced unnecessary overhead").  Experiment C4 measures it.
    """

    provider = "IU-legacy"

    def __init__(self, context_manager):
        super().__init__()
        self._cm = context_manager
        self.placeholders_created = 0

    def generateScript(  # repro: ignore[REP301] - the legacy context-coupled signature is the point of experiment C4
        self, scheduler: str, params: dict[str, Any], context: str = ""
    ) -> str:
        if context:
            script = super().generateScript(scheduler, params)
            self._cm.setSessionProperty(*context.split("/"), "lastScript", script)
            return script
        # the HotPage (stateless) path: manufacture an artificial session
        placeholder = self._cm.createPlaceholderContext()
        self.placeholders_created += 1
        try:
            script = super().generateScript(scheduler, params)
            self._cm.setSessionProperty(*placeholder.split("/"), "lastScript", script)
            return script
        finally:
            self._cm.removePlaceholder(placeholder)


def deploy_batch_script_generator(
    network: VirtualNetwork,
    impl: BatchScriptGenerator,
    host: str,
    *,
    path: str = "/bsg",
) -> tuple[str, WsdlDocument]:
    """Deploy an implementation of the common interface on *host*; returns
    (endpoint URL, its WSDL)."""
    server = HttpServer(host, network)
    soap = SoapService(f"{impl.provider}BatchScriptGenerator", BSG_NAMESPACE)
    soap.expose(impl.listSchedulers)
    soap.expose(impl.supportsScheduler)
    soap.expose(impl.generateScript)
    soap.expose(impl.validateScript)
    endpoint = soap.mount(server, path)
    wsdl = bsg_interface_wsdl(soap.name, endpoint)
    from repro.wsdl.proxy import publish_wsdl

    publish_wsdl(server, wsdl, f"{path}.wsdl")
    return endpoint, wsdl


class JavaStyleBsgClient:
    """A 'Java' client: sends typed parameters (ints stay ints)."""

    def __init__(self, network: VirtualNetwork, endpoint: str, *, source: str = "client"):
        self._soap = SoapClient(network, endpoint, BSG_NAMESPACE, source=source)

    def list_schedulers(self) -> list[str]:
        return self._soap.call("listSchedulers")

    def supports(self, scheduler: str) -> bool:
        return self._soap.call("supportsScheduler", scheduler)

    def generate(self, scheduler: str, spec: JobSpec) -> str:
        params: dict[str, Any] = {
            "jobName": spec.name,
            "executable": spec.executable,
            "arguments": " ".join(spec.arguments),
            "cpus": spec.cpus,                     # typed int
            "wallTime": spec.wallclock_limit,      # typed double
            "memoryMb": spec.memory_mb,            # typed int
        }
        for key, value in (
            ("queue", spec.queue),
            ("stdout", spec.stdout_path),
            ("stderr", spec.stderr_path),
            ("directory", spec.directory),
            ("account", spec.account),
        ):
            if value:
                params[key] = value
        return self._soap.call("generateScript", scheduler, params)

    def validate(self, scheduler: str, script: str) -> list[str]:
        return self._soap.call("validateScript", scheduler, script)


class PythonStyleBsgClient:
    """A 'Python' client: sends every parameter as a plain string."""

    def __init__(self, network: VirtualNetwork, endpoint: str, *, source: str = "client"):
        self._soap = SoapClient(network, endpoint, BSG_NAMESPACE, source=source)

    def list_schedulers(self) -> list[str]:
        return self._soap.call("listSchedulers")

    def supports(self, scheduler: str) -> bool:
        return self._soap.call("supportsScheduler", scheduler)

    def generate(self, scheduler: str, spec: JobSpec) -> str:
        params = {
            "jobName": spec.name,
            "executable": spec.executable,
            "arguments": " ".join(spec.arguments),
            "cpus": str(spec.cpus),
            "wallTime": str(spec.wallclock_limit),
            "memoryMb": str(spec.memory_mb),
        }
        for key, value in (
            ("queue", spec.queue),
            ("stdout", spec.stdout_path),
            ("stderr", spec.stderr_path),
            ("directory", spec.directory),
            ("account", spec.account),
        ):
            if value:
                params[key] = value
        return self._soap.call("generateScript", scheduler, params)

    def validate(self, scheduler: str, script: str) -> list[str]:
        return self._soap.call("validateScript", scheduler, script)
