"""Job submission web services (§3.1).

Three services, as in the paper:

- :class:`GlobusrunService` (SDSC): wraps the GRAM/globusrun layer.  "The
  Web Service exposes two different methods for job execution, one that
  accepts the parameters of a job as a set of plain strings and returns the
  results as a string, and one that accepts an XML definition of a job, and
  returns the results as an XML string.  The DTD for the latter mechanism
  was designed to allow multiple jobs to be included in a single XML string
  ... The Web Service executes the jobs sequentially."
- :class:`BatchJobService` (SDSC): "takes string arguments that define the
  host and batch scheduler commands to be run ... the batch job submission
  Web Service uses the Globusrun job submission service previously
  described" — a Web Service using another Web Service (experiment C7).
- :class:`WebFlowJobService` (IU): "a wrapper around a client for the
  'legacy' CORBA-based WebFlow system ... we used to bridge between SOAP
  and IIOP."
"""

from __future__ import annotations

from typing import Any

from repro.faults import InvalidRequestError, JobError
from repro.corba.orb import CorbaSystemException, CorbaUserException, Orb
from repro.grid.gram import GramClient, rsl_for
from repro.grid.jobs import JobSpec
from repro.grid.resources import ComputeResource
from repro.security.gsi import ProxyCertificate
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer
from repro.xmlutil.element import XmlElement, parse_xml

GLOBUSRUN_NAMESPACE = "urn:sdsc:globusrun"
BATCHJOB_NAMESPACE = "urn:sdsc:batch-job"
WEBFLOW_NAMESPACE = "urn:iu:webflow-job"


# ---------------------------------------------------------------------------
# The multi-job XML document format (the paper's DTD analogue)
# ---------------------------------------------------------------------------


def jobs_to_xml(specs: list[tuple[str, JobSpec]]) -> str:
    """Render [(contact, spec), ...] as a multi-job request document."""
    root = XmlElement("jobs")
    for contact, spec in specs:
        job = root.child("job")
        job.set("host", contact)
        job.child("name", text=spec.name)
        job.child("executable", text=spec.executable)
        for arg in spec.arguments:
            job.child("argument", text=arg)
        job.child("count", text=str(spec.cpus))
        if spec.queue:
            job.child("queue", text=spec.queue)
        job.child("maxWallTime", text=str(int(spec.wallclock_limit)))
    return root.serialize(declaration=True)


def jobs_from_xml(text: str) -> list[tuple[str, JobSpec]]:
    """Parse a multi-job request document."""
    root = parse_xml(text)
    if root.tag.local != "jobs":
        raise InvalidRequestError(f"expected <jobs> document, got <{root.tag.local}>")
    out: list[tuple[str, JobSpec]] = []
    for job in root.findall("job"):
        contact = job.get("host", "") or ""
        if not contact:
            raise InvalidRequestError("<job> element lacks a host attribute")
        spec = JobSpec(
            name=job.findtext("name", "job") or "job",
            executable=job.findtext("executable"),
            arguments=[arg.text for arg in job.findall("argument")],
            cpus=int(job.findtext("count", "1") or 1),
            queue=job.findtext("queue", "") or "",
            wallclock_limit=float(job.findtext("maxWallTime", "3600") or 3600),
        )
        if not spec.executable:
            raise InvalidRequestError("<job> element lacks an executable")
        out.append((contact, spec))
    return out


# ---------------------------------------------------------------------------
# Globusrun web service (SDSC)
# ---------------------------------------------------------------------------


class GlobusrunService:
    """The Globusrun web service implementation.

    Holds a delegated GSI proxy (the GSI-SOAP analogue) and a map of known
    gatekeeper contacts.  Jobs run to completion before the call returns,
    matching the paper's synchronous "returns the results as a string".
    """

    def __init__(
        self,
        network: VirtualNetwork,
        resources: dict[str, ComputeResource],
        proxy: ProxyCertificate,
        *,
        service_host: str = "globusrun.sdsc.edu",
    ):
        self.resources = resources
        self.gram = GramClient(network, proxy, source=service_host)
        self.jobs_run = 0

    def _resource(self, contact: str) -> ComputeResource:
        resource = self.resources.get(contact)
        if resource is None:
            raise JobError(f"unknown gatekeeper contact {contact!r}", {"host": contact})
        return resource

    def _run_one(self, contact: str, spec: JobSpec) -> tuple[str, str, int]:
        """Submit and wait; returns (job id, stdout, exit code)."""
        resource = self._resource(contact)
        job_id = self.gram.submit(contact, rsl_for(spec))
        record = resource.scheduler.wait_for(job_id)
        self.jobs_run += 1
        exit_code = record.exit_code if record.exit_code is not None else -1
        return job_id, record.stdout, exit_code

    # -- exposed methods -----------------------------------------------------

    def run(
        self,
        host: str,
        executable: str,
        arguments: str,
        count: int,
        queue: str,
        max_wall_time: int,
    ) -> str:
        """Plain-strings job execution; returns the job output as a string."""
        spec = JobSpec(
            name="globusrun",
            executable=executable,
            arguments=arguments.split() if arguments else [],
            cpus=int(count) if count else 1,
            queue=queue,
            wallclock_limit=float(max_wall_time) if max_wall_time else 3600.0,
        )
        _job_id, stdout, exit_code = self._run_one(host, spec)
        if exit_code != 0:
            raise JobError(
                f"job exited with code {exit_code}",
                {"host": host, "exit_code": str(exit_code)},
            )
        return stdout

    def run_xml(self, jobs_xml: str) -> str:
        """XML multi-job execution: one request, sequential runs, XML results.

        Failures do not abort the batch; each <result> carries its own
        status, preserving the common error vocabulary in-band.
        """
        requests = jobs_from_xml(jobs_xml)
        results = XmlElement("results")
        for contact, spec in requests:
            node = results.child("result")
            node.set("host", contact)
            node.set("name", spec.name)
            try:
                job_id, stdout, exit_code = self._run_one(contact, spec)
            except JobError as err:
                node.set("status", "error")
                node.child("error", text=err.message)
                continue
            node.set("status", "ok" if exit_code == 0 else "failed")
            node.set("jobId", job_id)
            node.child("exitCode", text=str(exit_code))
            node.child("output", text=stdout)
        return results.serialize(declaration=True)

    def list_contacts(self) -> list[str]:
        """The gatekeeper contacts this deployment can reach."""
        return sorted(self.resources)


def deploy_globusrun(
    network: VirtualNetwork,
    resources: dict[str, ComputeResource],
    proxy: ProxyCertificate,
    host: str = "globusrun.sdsc.edu",
) -> tuple[GlobusrunService, str]:
    """Stand up the Globusrun web service; returns (impl, endpoint URL)."""
    impl = GlobusrunService(network, resources, proxy, service_host=host)
    server = HttpServer(host, network)
    soap = SoapService("Globusrun", GLOBUSRUN_NAMESPACE)
    soap.expose(impl.run)
    soap.expose(impl.run_xml)
    soap.expose(impl.list_contacts)
    return impl, soap.mount(server, "/globusrun")


# ---------------------------------------------------------------------------
# Batch job web service (SDSC) — composes the Globusrun web service
# ---------------------------------------------------------------------------


class BatchJobService:
    """Submits batch scheduler command strings via the Globusrun service.

    The string format is ``<host> <executable> [args...]`` plus optional
    ``key=value`` settings (count=, queue=, walltime=), parsed exactly as
    the paper describes: "these string arguments are parsed, and the batch
    job submission Web Service uses the Globusrun job submission service".
    """

    def __init__(
        self,
        network: VirtualNetwork,
        globusrun_endpoint: str,
        *,
        service_host: str = "batchjob.sdsc.edu",
    ):
        self._globusrun = SoapClient(
            network, globusrun_endpoint, GLOBUSRUN_NAMESPACE, source=service_host
        )
        self.requests_handled = 0

    def submit_batch(self, host: str, command: str) -> str:
        """Parse the command string and run it on *host* via Globusrun."""
        if not command.strip():
            raise InvalidRequestError("empty batch command")
        settings = {"count": "1", "queue": "", "walltime": "3600"}
        words: list[str] = []
        for token in command.split():
            key, eq, value = token.partition("=")
            if eq and key in settings:
                settings[key] = value
            else:
                words.append(token)
        if not words:
            raise InvalidRequestError(f"no executable in command {command!r}")
        self.requests_handled += 1
        return self._globusrun.call(
            "run",
            host,
            words[0],
            " ".join(words[1:]),
            int(settings["count"]),
            settings["queue"],
            int(settings["walltime"]),
        )


def deploy_batchjob(
    network: VirtualNetwork,
    globusrun_endpoint: str,
    host: str = "batchjob.sdsc.edu",
) -> tuple[BatchJobService, str]:
    impl = BatchJobService(network, globusrun_endpoint, service_host=host)
    server = HttpServer(host, network)
    soap = SoapService("BatchJob", BATCHJOB_NAMESPACE)
    soap.expose(impl.submit_batch)
    return impl, soap.mount(server, "/batchjob")


# ---------------------------------------------------------------------------
# WebFlow bridge service (IU) — SOAP to IIOP
# ---------------------------------------------------------------------------


class WebFlowJobService:
    """The IU job submission service: SOAP methods wrapping a WebFlow CORBA
    client, including the "utility methods for initializing the client ORB"."""

    def __init__(self, network: VirtualNetwork, webflow_ior: str, *, service_host: str):
        self._network = network
        self._ior = webflow_ior
        self._service_host = service_host
        self._orb: Orb | None = None
        self._stub = None
        self.bridged_calls = 0

    # -- the ORB utility methods the paper mentions ---------------------------

    def init_orb(self) -> bool:
        """Initialize the client ORB and resolve the WebFlow object."""
        self._orb = Orb(self._network, host=self._service_host)
        self._stub = self._orb.string_to_object(self._ior)
        return True

    def orb_initialized(self) -> bool:
        return self._stub is not None

    def _webflow(self):
        if self._stub is None:
            self.init_orb()
        return self._stub

    def _bridge(self, operation: str, *args: Any) -> Any:
        try:
            result = getattr(self._webflow(), operation)(*args)
        except CorbaUserException as exc:
            raise JobError(
                f"WebFlow rejected {operation}: {exc.exc_message}",
                {"operation": operation, "corba_exception": exc.exc_type},
            ) from exc
        except CorbaSystemException as exc:
            raise JobError(
                f"ORB failure during {operation}: {exc}", {"operation": operation}
            ) from exc
        self.bridged_calls += 1
        return result

    # -- exposed methods (the wrapped WebFlow methods) --------------------------------

    def add_context(self, context: str) -> str:
        return self._bridge("addContext", context)

    def submit_job(self, context: str, host: str, script: str) -> str:
        return self._bridge("submitJob", context, host, script)

    def get_job_status(self, handle: str) -> str:
        return self._bridge("getJobStatus", handle)

    def get_job_output(self, handle: str) -> str:
        return self._bridge("getJobOutput", handle)

    def cancel_job(self, handle: str) -> bool:
        return self._bridge("cancelJob", handle)

    def list_jobs(self, context: str) -> list[str]:
        return self._bridge("listJobs", context)

    def backend_hosts(self) -> list[str]:
        return self._bridge("backendHosts")


def deploy_webflow_bridge(
    network: VirtualNetwork,
    webflow_ior: str,
    host: str = "gateway.iu.edu",
) -> tuple[WebFlowJobService, str]:
    impl = WebFlowJobService(network, webflow_ior, service_host=host)
    server = HttpServer(host, network)
    soap = SoapService("WebFlowJob", WEBFLOW_NAMESPACE)
    soap.expose(impl.add_context)
    soap.expose(impl.submit_job)
    soap.expose(impl.get_job_status)
    soap.expose(impl.get_job_output)
    soap.expose(impl.cancel_job)
    soap.expose(impl.list_jobs)
    soap.expose(impl.backend_hosts)
    return impl, soap.mount(server, "/webflow")
