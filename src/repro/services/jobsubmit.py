"""Job submission web services (§3.1).

Three services, as in the paper:

- :class:`GlobusrunService` (SDSC): wraps the GRAM/globusrun layer.  "The
  Web Service exposes two different methods for job execution, one that
  accepts the parameters of a job as a set of plain strings and returns the
  results as a string, and one that accepts an XML definition of a job, and
  returns the results as an XML string.  The DTD for the latter mechanism
  was designed to allow multiple jobs to be included in a single XML string
  ... The Web Service executes the jobs sequentially."
- :class:`BatchJobService` (SDSC): "takes string arguments that define the
  host and batch scheduler commands to be run ... the batch job submission
  Web Service uses the Globusrun job submission service previously
  described" — a Web Service using another Web Service (experiment C7).
- :class:`WebFlowJobService` (IU): "a wrapper around a client for the
  'legacy' CORBA-based WebFlow system ... we used to bridge between SOAP
  and IIOP."
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.corba.orb import CorbaSystemException, CorbaUserException, Orb
from repro.durability.idempotency import current_key
from repro.durability.journal import Journal
from repro.faults import InvalidRequestError, JobError, ResourceNotFoundError
from repro.grid.gram import GramClient, rsl_for
from repro.grid.jobs import JobSpec
from repro.grid.resources import ComputeResource
from repro.security.gsi import ProxyCertificate
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import ServiceCrash, VirtualNetwork
from repro.transport.server import HttpServer
from repro.xmlutil.element import XmlElement, parse_xml

GLOBUSRUN_NAMESPACE = "urn:sdsc:globusrun"
BATCHJOB_NAMESPACE = "urn:sdsc:batch-job"
WEBFLOW_NAMESPACE = "urn:iu:webflow-job"


# ---------------------------------------------------------------------------
# The multi-job XML document format (the paper's DTD analogue)
# ---------------------------------------------------------------------------


def jobs_to_xml(specs: list[tuple[str, JobSpec]]) -> str:
    """Render [(contact, spec), ...] as a multi-job request document."""
    root = XmlElement("jobs")
    for contact, spec in specs:
        job = root.child("job")
        job.set("host", contact)
        job.child("name", text=spec.name)
        job.child("executable", text=spec.executable)
        for arg in spec.arguments:
            job.child("argument", text=arg)
        job.child("count", text=str(spec.cpus))
        if spec.queue:
            job.child("queue", text=spec.queue)
        job.child("maxWallTime", text=str(int(spec.wallclock_limit)))
    return root.serialize(declaration=True)


def jobs_from_xml(
    text: str, *, require_host: bool = True
) -> list[tuple[str, JobSpec]]:
    """Parse a multi-job request document.

    With ``require_host=False`` a ``<job>`` may omit its host attribute
    and parses with an empty contact — the MetaScheduler accepts such
    unplaced documents and fills the hosts in; execution services keep the
    strict default.
    """
    try:
        root = parse_xml(text)
    except ValueError as err:
        raise InvalidRequestError(f"malformed job document: {err}") from None
    if root.tag.local != "jobs":
        raise InvalidRequestError(f"expected <jobs> document, got <{root.tag.local}>")
    out: list[tuple[str, JobSpec]] = []
    for job in root.findall("job"):
        contact = job.get("host", "") or ""
        if not contact and require_host:
            raise InvalidRequestError("<job> element lacks a host attribute")
        try:
            cpus = int(job.findtext("count", "1") or 1)
            wallclock = float(job.findtext("maxWallTime", "3600") or 3600)
        except (TypeError, ValueError):
            raise InvalidRequestError(
                "<job> count/maxWallTime must be numeric"
            ) from None
        spec = JobSpec(
            name=job.findtext("name", "job") or "job",
            executable=job.findtext("executable"),
            # an empty <argument/> is a legitimate empty-string argument,
            # never None — generators emit one for args like ""
            arguments=[arg.text or "" for arg in job.findall("argument")],
            cpus=cpus,
            queue=job.findtext("queue", "") or "",
            wallclock_limit=wallclock,
        )
        if not spec.executable:
            raise InvalidRequestError("<job> element lacks an executable")
        out.append((contact, spec))
    return out


# ---------------------------------------------------------------------------
# Globusrun web service (SDSC)
# ---------------------------------------------------------------------------


class GlobusrunService:
    """The Globusrun web service implementation.

    Holds a delegated GSI proxy (the GSI-SOAP analogue) and a map of known
    gatekeeper contacts.  Jobs run to completion before the call returns,
    matching the paper's synchronous "returns the results as a string".
    """

    def __init__(
        self,
        network: VirtualNetwork,
        resources: dict[str, ComputeResource],
        proxy: ProxyCertificate,
        *,
        service_host: str = "globusrun.sdsc.edu",
        journal: Journal | None = None,
    ):
        self.resources = resources
        self.service_host = service_host
        self.gram = GramClient(network, proxy, source=service_host)
        self.jobs_run = 0
        #: write-ahead journal for batch acceptance/resolution; attaching a
        #: journal with prior records rebuilds the previous incarnation's
        #: batch state (crash recovery)
        self.journal = journal
        self._replaying = False
        self._accepted: dict[str, str] = {}  # batch id -> request xml
        self._results: dict[str, str] = {}   # batch id -> results xml
        self._keys: dict[str, str] = {}      # idempotency key -> batch id
        self._batch_ids = itertools.count(1)
        self.batches_redriven = 0
        #: chaos knob: die (ServiceCrash) after this many jobs of the
        #: current batch have completed; one-shot, cleared when it fires
        self.crash_after_jobs: int | None = None
        if journal is not None and len(journal):
            self.replay(journal)

    def _resource(self, contact: str) -> ComputeResource:
        resource = self.resources.get(contact)
        if resource is None:
            raise JobError(f"unknown gatekeeper contact {contact!r}", {"host": contact})
        return resource

    def _run_one(
        self, contact: str, spec: JobSpec, key: str = ""
    ) -> tuple[str, str, int]:
        """Submit and wait; returns (job id, stdout, exit code).

        *key* is forwarded to the gatekeeper as the submission's idempotency
        key: re-running an interrupted batch re-submits with the same keys,
        and jobs that already ran return their original ids and output.
        """
        resource = self._resource(contact)
        job_id = self.gram.submit(contact, rsl_for(spec), key)
        record = resource.scheduler.wait_for(job_id)
        self.jobs_run += 1
        exit_code = record.exit_code if record.exit_code is not None else -1
        return job_id, record.stdout, exit_code

    # -- durable batch state (the Recoverable protocol) -----------------------

    def _journal(self, kind: str, **data) -> None:
        if self.journal is not None and not self._replaying:
            self.journal.append(kind, **data)

    def snapshot(self) -> dict:
        return {
            "host": self.service_host,
            "accepted": sorted(self._accepted),
            "resolved": sorted(self._results),
        }

    def replay(self, journal: Journal) -> int:
        """Rebuild accepted/resolved batch state from a prior incarnation's
        journal; returns the number of records applied."""
        self.journal = journal
        self._replaying = True
        applied = 0
        try:
            max_id = 0
            for record in journal.records():
                if record.kind == "batch-accept":
                    batch = record.data["batch"]
                    self._accepted[batch] = record.data["xml"]
                    key = record.data.get("key", "")
                    if key:
                        self._keys[key] = batch
                    suffix = batch.rsplit("-", 1)[-1]
                    if suffix.isdigit():
                        max_id = max(max_id, int(suffix))
                    applied += 1
                elif record.kind == "batch-resolve":
                    self._results[record.data["batch"]] = record.data["results"]
                    applied += 1
            self._batch_ids = itertools.count(max_id + 1)
        finally:
            self._replaying = False
        from repro.durability.journal import notify_replay

        notify_replay(journal, applied)
        return applied

    def _accept(self, jobs_xml: str, key: str) -> str:
        """Durably accept a batch (write-ahead: journaled before any job
        runs).  A repeated key returns the originally assigned batch id."""
        jobs_from_xml(jobs_xml)  # validate before accepting anything
        if key and key in self._keys:
            return self._keys[key]
        batch = f"batch-{next(self._batch_ids):06d}"
        # write-ahead: the journal append happens before any in-memory
        # registration, so a refused append (disk full) leaves no state
        # behind — a retry of the same key re-runs acceptance cleanly
        # instead of being served a batch id that was never made durable
        self._journal("batch-accept", batch=batch, xml=jobs_xml, key=key)
        self._accepted[batch] = jobs_xml
        if key:
            self._keys[key] = batch
        return batch

    def _resolve(self, batch: str) -> str:
        """Run an accepted batch to completion (idempotent: an already
        resolved batch returns its recorded results without re-running)."""
        done = self._results.get(batch)
        if done is not None:
            return done
        jobs_xml = self._accepted.get(batch)
        if jobs_xml is None:
            raise ResourceNotFoundError(
                f"no batch {batch!r}", {"batch": batch}
            )
        requests = jobs_from_xml(jobs_xml)
        results = XmlElement("results")
        completed = 0
        for index, (contact, spec) in enumerate(requests):
            node = results.child("result")
            node.set("host", contact)
            node.set("name", spec.name)
            try:
                job_id, stdout, exit_code = self._run_one(
                    contact, spec, key=f"{self.service_host}:{batch}:{index}"
                )
            except JobError as err:
                node.set("status", "error")
                node.child("error", text=err.message)
            else:
                node.set("status", "ok" if exit_code == 0 else "failed")
                node.set("jobId", job_id)
                node.child("exitCode", text=str(exit_code))
                node.child("output", text=stdout)
            completed += 1
            if (
                self.crash_after_jobs is not None
                and completed >= self.crash_after_jobs
            ):
                self.crash_after_jobs = None
                raise ServiceCrash(
                    f"globusrun process on {self.service_host} died "
                    f"mid-batch {batch} ({completed}/{len(requests)} jobs)"
                )
        serialized = results.serialize(declaration=True)
        self._results[batch] = serialized
        self._journal("batch-resolve", batch=batch, results=serialized)
        return serialized

    # -- exposed methods -----------------------------------------------------

    def run(
        self,
        host: str,
        executable: str,
        arguments: str,
        count: int,
        queue: str,
        max_wall_time: int,
    ) -> str:
        """Plain-strings job execution; returns the job output as a string."""
        try:
            cpus = int(count) if count else 1
            wallclock = float(max_wall_time) if max_wall_time else 3600.0
        except (TypeError, ValueError):
            raise InvalidRequestError(
                "count/max_wall_time must be numeric",
                {"count": str(count), "max_wall_time": str(max_wall_time)},
            ) from None
        spec = JobSpec(
            name="globusrun",
            executable=executable,
            arguments=arguments.split() if arguments else [],
            cpus=cpus,
            queue=queue,
            wallclock_limit=wallclock,
        )
        _job_id, stdout, exit_code = self._run_one(host, spec, key=current_key())
        if exit_code != 0:
            raise JobError(
                f"job exited with code {exit_code}",
                {"host": host, "exit_code": str(exit_code)},
            )
        return stdout

    def run_xml(self, jobs_xml: str) -> str:
        """XML multi-job execution: one request, sequential runs, XML results.

        Failures do not abort the batch; each <result> carries its own
        status, preserving the common error vocabulary in-band.  The batch
        is journaled as accepted before the first job runs, so a crash
        mid-batch leaves a recoverable orphan rather than silently losing
        the accepted work.
        """
        batch = self._accept(jobs_xml, current_key())
        return self._resolve(batch)

    def submit_async(self, jobs_xml: str) -> str:
        """Accept a batch durably and return its id without running it.

        The caller follows up with :meth:`poll` / :meth:`result`; because
        acceptance is journaled, the batch survives a service crash between
        submission and resolution.
        """
        return self._accept(jobs_xml, current_key())

    def poll(self, batch: str) -> str:
        """The batch's state: ``accepted`` (not yet run) or ``done``."""
        if batch in self._results:
            return "done"
        if batch in self._accepted:
            return "accepted"
        raise ResourceNotFoundError(f"no batch {batch!r}", {"batch": batch})

    def result(self, batch: str) -> str:
        """The batch's results XML, running it first if still unresolved.

        Safe to call repeatedly and from anyone (the submitting client, a
        failover substitute, the reconciler): resolved batches return the
        recorded results; unresolved ones are driven to completion with
        per-job idempotency keys, so nothing runs twice.
        """
        if batch not in self._results and batch in self._accepted:
            self.batches_redriven += 1
        return self._resolve(batch)

    def list_contacts(self) -> list[str]:
        """The gatekeeper contacts this deployment can reach."""
        return sorted(self.resources)


def deploy_globusrun(
    network: VirtualNetwork,
    resources: dict[str, ComputeResource],
    proxy: ProxyCertificate,
    host: str = "globusrun.sdsc.edu",
    *,
    durable: bool = False,
    admission=None,
    resilience_log=None,
) -> tuple[GlobusrunService, str]:
    """Stand up the Globusrun web service; returns (impl, endpoint URL).

    With ``durable=True`` the service journals batch state to the host's
    disk and the SOAP endpoint caches keyed responses durably.  Calling
    this again after a crash (``take_down``/``bring_up``) *is* the restart
    path: the fresh instance attaches to the surviving disk and replays.

    *admission* (an :class:`~repro.loadmgmt.admission.AdmissionController`)
    puts the endpoint behind the load-management gates; overload then
    sheds with retryable ``Portal.ServerBusy`` faults instead of queuing
    without bound.  *resilience_log* receives the endpoint's shed events.
    """
    journal = None
    if durable:
        disk = network.disk(host)
        journal = Journal(disk, "globusrun", clock=network.clock)
    impl = GlobusrunService(
        network, resources, proxy, service_host=host, journal=journal
    )
    server = HttpServer(host, network)
    soap = SoapService("Globusrun", GLOBUSRUN_NAMESPACE)
    soap.expose(impl.run)
    soap.expose(impl.run_xml)
    soap.expose(impl.submit_async)
    soap.expose(impl.poll)
    soap.expose(impl.result)
    soap.expose(impl.list_contacts)
    if durable:
        soap.enable_replay(Journal(disk, "soap-replay", clock=network.clock))
    if admission is not None:
        soap.enable_admission(admission, resilience_log)
    return impl, soap.mount(server, "/globusrun")


# ---------------------------------------------------------------------------
# Batch job web service (SDSC) — composes the Globusrun web service
# ---------------------------------------------------------------------------


class BatchJobService:
    """Submits batch scheduler command strings via the Globusrun service.

    The string format is ``<host> <executable> [args...]`` plus optional
    ``key=value`` settings (count=, queue=, walltime=), parsed exactly as
    the paper describes: "these string arguments are parsed, and the batch
    job submission Web Service uses the Globusrun job submission service".
    """

    def __init__(
        self,
        network: VirtualNetwork,
        globusrun_endpoint: str,
        *,
        service_host: str = "batchjob.sdsc.edu",
    ):
        self._globusrun = SoapClient(
            network, globusrun_endpoint, GLOBUSRUN_NAMESPACE, source=service_host
        )
        self.requests_handled = 0

    def submit_batch(self, host: str, command: str) -> str:
        """Parse the command string and run it on *host* via Globusrun."""
        if not command.strip():
            raise InvalidRequestError("empty batch command")
        settings = {"count": "1", "queue": "", "walltime": "3600"}
        words: list[str] = []
        for token in command.split():
            key, eq, value = token.partition("=")
            if eq and key in settings:
                settings[key] = value
            else:
                words.append(token)
        if not words:
            raise InvalidRequestError(f"no executable in command {command!r}")
        try:
            count = int(settings["count"])
            walltime = int(settings["walltime"])
        except ValueError:
            raise InvalidRequestError(
                f"malformed numeric setting in {command!r} "
                f"(count={settings['count']!r}, walltime={settings['walltime']!r})"
            ) from None
        result = self._globusrun.call(
            "run",
            host,
            words[0],
            " ".join(words[1:]),
            count,
            settings["queue"],
            walltime,
        )
        # counted only after the downstream call succeeds: a request that
        # faulted was not "handled"
        self.requests_handled += 1
        return result


def deploy_batchjob(
    network: VirtualNetwork,
    globusrun_endpoint: str,
    host: str = "batchjob.sdsc.edu",
) -> tuple[BatchJobService, str]:
    impl = BatchJobService(network, globusrun_endpoint, service_host=host)
    server = HttpServer(host, network)
    soap = SoapService("BatchJob", BATCHJOB_NAMESPACE)
    soap.expose(impl.submit_batch)
    return impl, soap.mount(server, "/batchjob")


# ---------------------------------------------------------------------------
# WebFlow bridge service (IU) — SOAP to IIOP
# ---------------------------------------------------------------------------


class WebFlowJobService:
    """The IU job submission service: SOAP methods wrapping a WebFlow CORBA
    client, including the "utility methods for initializing the client ORB"."""

    def __init__(self, network: VirtualNetwork, webflow_ior: str, *, service_host: str):
        self._network = network
        self._ior = webflow_ior
        self._service_host = service_host
        self._orb: Orb | None = None
        self._stub = None
        self.bridged_calls = 0

    # -- the ORB utility methods the paper mentions ---------------------------

    def init_orb(self) -> bool:
        """Initialize the client ORB and resolve the WebFlow object."""
        self._orb = Orb(self._network, host=self._service_host)
        self._stub = self._orb.string_to_object(self._ior)
        return True

    def orb_initialized(self) -> bool:
        return self._stub is not None

    def _webflow(self):
        if self._stub is None:
            self.init_orb()
        return self._stub

    def _bridge(self, operation: str, *args: Any) -> Any:
        try:
            result = getattr(self._webflow(), operation)(*args)
        except CorbaUserException as exc:
            raise JobError(
                f"WebFlow rejected {operation}: {exc.exc_message}",
                {"operation": operation, "corba_exception": exc.exc_type},
            ) from exc
        except CorbaSystemException as exc:
            raise JobError(
                f"ORB failure during {operation}: {exc}", {"operation": operation}
            ) from exc
        self.bridged_calls += 1
        return result

    # -- exposed methods (the wrapped WebFlow methods) --------------------------------

    def add_context(self, context: str) -> str:
        return self._bridge("addContext", context)

    def submit_job(self, context: str, host: str, script: str) -> str:
        return self._bridge("submitJob", context, host, script)

    def get_job_status(self, handle: str) -> str:
        return self._bridge("getJobStatus", handle)

    def get_job_output(self, handle: str) -> str:
        return self._bridge("getJobOutput", handle)

    def cancel_job(self, handle: str) -> bool:
        return self._bridge("cancelJob", handle)

    def list_jobs(self, context: str) -> list[str]:
        return self._bridge("listJobs", context)

    def backend_hosts(self) -> list[str]:
        return self._bridge("backendHosts")


def deploy_webflow_bridge(
    network: VirtualNetwork,
    webflow_ior: str,
    host: str = "gateway.iu.edu",
) -> tuple[WebFlowJobService, str]:
    impl = WebFlowJobService(network, webflow_ior, service_host=host)
    server = HttpServer(host, network)
    soap = SoapService("WebFlowJob", WEBFLOW_NAMESPACE)
    soap.expose(impl.add_context)
    soap.expose(impl.submit_job)
    soap.expose(impl.get_job_status)
    soap.expose(impl.get_job_output)
    soap.expose(impl.cancel_job)
    soap.expose(impl.list_jobs)
    soap.expose(impl.backend_hosts)
    return impl, soap.mount(server, "/webflow")
