"""The core portal web services (§3 of the paper).

Each module deploys one of the basic services the paper identifies as
"some of the basic portal Web Services":

- :mod:`repro.services.jobsubmit` — the SDSC Globusrun web service (plain
  strings and XML multi-job forms), the batch-job service that composes it,
  and the IU SOAP→IIOP WebFlow bridge.
- :mod:`repro.services.datamgmt` — the SRB web services (``ls``, ``cat``,
  ``get``, ``put``, ``xml_call``) plus the out-of-band transfer extension.
- :mod:`repro.services.context` — the Gateway context manager, both as the
  60-method monolith the paper criticises and as the decomposed services it
  recommends.
- :mod:`repro.services.batchscript` — the interoperable batch script
  generator: one agreed WSDL interface, two independent implementations
  (IU: PBS+GRD, SDSC: LSF+NQS), and two client styles.
"""

from repro.services.jobsubmit import (
    BatchJobService,
    GlobusrunService,
    WebFlowJobService,
    deploy_globusrun,
    deploy_batchjob,
    deploy_webflow_bridge,
)
from repro.services.datamgmt import SrbWebService, deploy_srb_service
from repro.services.context import (
    ContextManagerService,
    PropertyService,
    SessionArchiveService,
    UserContextService,
    deploy_context_manager,
    deploy_decomposed_context_services,
)
from repro.services.batchscript import (
    BSG_NAMESPACE,
    BatchScriptGenerator,
    IuBatchScriptGenerator,
    SdscBatchScriptGenerator,
    JavaStyleBsgClient,
    PythonStyleBsgClient,
    bsg_interface_wsdl,
    deploy_batch_script_generator,
)

__all__ = [
    "BatchJobService",
    "GlobusrunService",
    "WebFlowJobService",
    "deploy_globusrun",
    "deploy_batchjob",
    "deploy_webflow_bridge",
    "SrbWebService",
    "deploy_srb_service",
    "ContextManagerService",
    "PropertyService",
    "SessionArchiveService",
    "UserContextService",
    "deploy_context_manager",
    "deploy_decomposed_context_services",
    "BSG_NAMESPACE",
    "BatchScriptGenerator",
    "IuBatchScriptGenerator",
    "SdscBatchScriptGenerator",
    "JavaStyleBsgClient",
    "PythonStyleBsgClient",
    "bsg_interface_wsdl",
    "deploy_batch_script_generator",
]
