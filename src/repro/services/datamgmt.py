"""Data management web services over the SRB (§3.2).

"The methods exposed in the SRB Web Services are ls, cat, get, put, and
xml_call. ... The get and put methods transfer a file between an SRB
collection and the client by simply streaming the file as a string.  This
transfer mechanism does not scale well, and was only used as a proof of
concept.  The xml_call method allows the client to create a single request
string consisting of multiple SRB commands expressed in XML and sent to the
Web Service using a single connection."

Experiments C1 (string-streaming scaling) and C2 (xml_call batching) run
against this module.  As the "future work" extension, :meth:`transfer_url`
provides out-of-band transfer: the bytes travel a plain HTTP endpoint with
no SOAP envelope or base64 amplification.
"""

from __future__ import annotations

import base64
import itertools
from typing import Any

from repro.faults import InvalidRequestError, PortalError
from repro.srb.commands import Scommands
from repro.soap.server import SoapService
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer
from repro.xmlutil.element import XmlElement, parse_xml

SRBWS_NAMESPACE = "urn:sdsc:srb-web-service"


class SrbWebService:
    """The SOAP face over an authenticated Scommand toolchain."""

    def __init__(self, scommands: Scommands):
        self.scommands = scommands
        self._tokens: dict[str, str] = {}  # transfer token -> SRB path
        self._token_ids = itertools.count(1)
        self.commands_executed = 0

    # -- the five paper methods -------------------------------------------------

    def ls(self, collection: str, directory: str) -> list[str]:
        """Directory listing of ``<collection>/<directory>`` as a string array."""
        path = f"{collection.rstrip('/')}/{directory.strip('/')}" if directory else collection
        self.commands_executed += 1
        return self.scommands.Sls(path)

    def cat(self, path: str) -> str:
        """File contents as a string."""
        self.commands_executed += 1
        return self.scommands.Scat(path)

    def get(self, path: str) -> str:
        """Stream a file to the client as a (base64) string — the paper's
        proof-of-concept mechanism that "does not scale well"."""
        self.commands_executed += 1
        return base64.b64encode(self.scommands.Sget(path)).decode("ascii")

    def put(self, path: str, data: str) -> int:
        """Stream a (base64) string from the client into the SRB."""
        self.commands_executed += 1
        try:
            payload = base64.b64decode(data.encode("ascii"), validate=True)
        except Exception as exc:
            raise InvalidRequestError(f"put payload is not base64: {exc}") from exc
        return self.scommands.Sput(path, payload)

    def xml_call(self, request_xml: str) -> str:
        """Execute multiple SRB commands from one XML request string.

        Commands run sequentially; each result carries its own status so one
        failure doesn't poison the batch.
        """
        try:
            root = parse_xml(request_xml)
        except ValueError as exc:
            raise InvalidRequestError(f"malformed xml_call request: {exc}") from exc
        if root.tag.local != "srbRequest":
            raise InvalidRequestError(
                f"expected <srbRequest>, got <{root.tag.local}>"
            )
        results = XmlElement("srbResults")
        for command in root.findall("command"):
            name = command.get("name", "") or ""
            args = [arg.text for arg in command.findall("arg")]
            node = results.child("result")
            node.set("command", name)
            try:
                value = self._dispatch(name, args)
            except PortalError as err:
                node.set("status", "error")
                node.child("error", text=f"{err.code}: {err.message}")
                continue
            node.set("status", "ok")
            if isinstance(value, list):
                for item in value:
                    node.child("item", text=str(item))
            elif value is not None:
                node.child("value", text=str(value))
        return results.serialize(declaration=True)

    def _dispatch(self, name: str, args: list[str]) -> Any:
        def need(count: int) -> list[str]:
            if len(args) != count:
                raise InvalidRequestError(
                    f"srb command {name!r} takes {count} arg(s), got {len(args)}"
                )
            return args

        self.commands_executed += 1
        if name == "ls":
            return self.scommands.Sls(need(1)[0])
        if name == "cat":
            return self.scommands.Scat(need(1)[0])
        if name == "get":
            return base64.b64encode(self.scommands.Sget(need(1)[0])).decode("ascii")
        if name == "put":
            path, data = need(2)
            return self.scommands.Sput(path, base64.b64decode(data))
        if name == "mkdir":
            self.scommands.Smkdir(need(1)[0])
            return "created"
        if name == "rm":
            self.scommands.Srm(need(1)[0])
            return "removed"
        if name == "replicate":
            path, resource = need(2)
            return self.scommands.Sreplicate(path, resource)
        raise InvalidRequestError(f"unknown srb command {name!r}")

    # -- out-of-band transfer extension -----------------------------------------------

    def transfer_url(self, path: str) -> str:
        """Issue a one-time token for out-of-band download of *path*; the
        returned URL path is served raw by :meth:`handle_transfer`."""
        # fail fast if unreadable, so the SOAP call carries the error
        self.scommands.Sget(path)
        token = f"t{next(self._token_ids):08d}"
        self._tokens[token] = path
        return f"/transfer/{token}"

    def handle_transfer(self, request: HttpRequest) -> HttpResponse:
        token = request.url.path.rsplit("/", 1)[-1]
        path = self._tokens.pop(token, None)
        if path is None:
            return HttpResponse(404, body="unknown or used transfer token")
        data = self.scommands.Sget(path)
        # latin-1 maps bytes 1:1 onto the str-typed simulated wire
        return HttpResponse(
            200,
            {"Content-Type": "application/octet-stream"},
            data.decode("latin-1"),
        )


def make_request_xml(commands: list[tuple[str, list[str]]]) -> str:
    """Client-side helper: build an xml_call request document."""
    root = XmlElement("srbRequest")
    for name, args in commands:
        node = root.child("command")
        node.set("name", name)
        for arg in args:
            node.child("arg", text=arg)
    return root.serialize(declaration=True)


def parse_results_xml(text: str) -> list[dict[str, Any]]:
    """Client-side helper: decode an xml_call results document."""
    root = parse_xml(text)
    out: list[dict[str, Any]] = []
    for node in root.findall("result"):
        entry: dict[str, Any] = {
            "command": node.get("command", ""),
            "status": node.get("status", ""),
        }
        items = node.findall("item")
        if items:
            entry["items"] = [item.text for item in items]
        value = node.find("value")
        if value is not None:
            entry["value"] = value.text
        error = node.find("error")
        if error is not None:
            entry["error"] = error.text
        out.append(entry)
    return out


def deploy_srb_service(
    network: VirtualNetwork,
    scommands: Scommands,
    host: str = "srbws.sdsc.edu",
) -> tuple[SrbWebService, str]:
    """Stand up the SRB web service; returns (impl, SOAP endpoint URL)."""
    impl = SrbWebService(scommands)
    server = HttpServer(host, network)
    soap = SoapService("SrbWebService", SRBWS_NAMESPACE)
    soap.expose(impl.ls)
    soap.expose(impl.cat)
    soap.expose(impl.get)
    soap.expose(impl.put)
    soap.expose(impl.xml_call)
    soap.expose(impl.transfer_url)
    server.mount("/transfer", impl.handle_transfer)
    return impl, soap.mount(server, "/srb")
